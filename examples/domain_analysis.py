"""Domain analysis: which social network finds experts for which topic?

Replays the paper's Table-4 question on the synthetic dataset: for each
of the seven expertise domains, score every network × distance
configuration and report the winner — Twitter for technical domains,
Facebook for entertainment, LinkedIn only for career-described skills
at distance 0.

    python examples/domain_analysis.py           # TINY, fast
    REPRO_SCALE=small python examples/domain_analysis.py
"""

from repro.core.config import FinderConfig
from repro.experiments.context import ExperimentContext, scale_from_env
from repro.socialgraph.metamodel import Platform
from repro.synthetic.dataset import DatasetScale
from repro.synthetic.vocab import DOMAIN_LABELS, DOMAINS


def main() -> None:
    context = ExperimentContext.create(scale_from_env(default=DatasetScale.TINY))
    networks = [
        (Platform.FACEBOOK, "FB"),
        (Platform.TWITTER, "TW"),
        (Platform.LINKEDIN, "LI"),
    ]

    print(f"{'domain':<24} {'best net @d1':>14} {'best net @d2':>14} {'LI@d0 MAP':>10}")
    for domain in DOMAINS:
        queries = [q for q in context.dataset.queries if q.domain == domain]
        row = {}
        for platform, label in networks:
            for distance in (0, 1, 2):
                result = context.runner.run(
                    platform, FinderConfig(max_distance=distance), queries=queries
                )
                row[(label, distance)] = result.summary().map
        best_d1 = max(networks, key=lambda n: row[(n[1], 1)])[1]
        best_d2 = max(networks, key=lambda n: row[(n[1], 2)])[1]
        print(
            f"{DOMAIN_LABELS[domain]:<24} {best_d1:>14} {best_d2:>14}"
            f" {row[('LI', 0)]:>10.3f}"
        )

    print(
        "\nreading: the paper found TW leading computer engineering /"
        "\nscience / sport / technology at distance 2, FB strong on"
        "\nentertainment, and LinkedIn valuable only through its career"
        "\nprofiles (distance 0) for work domains."
    )


if __name__ == "__main__":
    main()
