"""Talk to the expert finder over HTTP.

Everything the library does in process, ``repro.serve`` also does over
a socket. This script self-hosts a gateway on an ephemeral port
(``GatewayHarness`` — the same helper the tests and benchmarks use),
then walks the HTTP surface like a remote client would: readiness,
single and batched queries, a streamed observe, a crowd routing plan,
a hot reload, and the metrics document.

    python examples/http_client.py

Against a standalone server (``repro serve --snapshot dir``), the same
requests work with ``curl`` — see the README's gateway quickstart.
"""

from repro import DatasetScale, ExpertFinder, FinderConfig, build_dataset
from repro.serve import GatewayConfig, GatewayHarness
from repro.serve.reload import build_service


def main() -> None:
    dataset = build_dataset(DatasetScale.TINY, seed=7)

    def source():
        finder = ExpertFinder.build(
            dataset.merged_graph,
            dataset.candidates_for(None),
            dataset.analyzer,
            FinderConfig(),
            corpus=dataset.corpus,
        )
        return build_service(finder)

    question = "who is the best freestyle swimmer"
    with GatewayHarness(source, config=GatewayConfig(rate_limit=None)) as gw:
        print(f"gateway listening on {gw.base_url}\n")

        status, _, ready = gw.request("GET", "/readyz")
        print(f"GET /readyz -> {status} {ready}")

        status, _, body = gw.request(
            "POST", "/v1/query", {"need": question, "top_k": 3}
        )
        print(f"\nPOST /v1/query {question!r} -> {status}")
        for rank, expert in enumerate(body["experts"], start=1):
            print(
                f"  rank {rank}: {expert['candidate_id']} "
                f"(score {expert['score']:.1f}, "
                f"{expert['supporting_resources']} resources)"
            )

        needs = [question, "rock guitar chords", "homemade pasta recipe"]
        status, _, body = gw.request(
            "POST", "/v1/query/batch", {"needs": needs, "top_k": 1}
        )
        print(f"\nPOST /v1/query/batch ({len(needs)} needs) -> {status}")
        for need, experts in zip(needs, body["results"]):
            top = experts[0]["candidate_id"] if experts else "(nobody)"
            print(f"  {need!r}: {top}")

        status, _, body = gw.request(
            "POST",
            "/v1/observe",
            {
                "node_id": "live:tweet:1",
                "text": "new personal best in the 100m freestyle final",
                "supporters": [[dataset.person_ids[-1], 1]],
                "language": "en",
            },
        )
        print(f"\nPOST /v1/observe -> {status} indexed={body['indexed']}")

        status, _, plan = gw.request(
            "POST",
            "/v1/crowd/route",
            {"need": question, "strategy": "hybrid"},
        )
        print(
            f"POST /v1/crowd/route -> {status} "
            f"waves={plan['waves']} "
            f"answer_probability={plan['answer_probability']:.2f}"
        )

        status, _, body = gw.request("POST", "/admin/reload")
        print(
            f"POST /admin/reload -> {status} "
            f"now serving generation {body['generation']}"
        )

        status, _, metrics = gw.request("GET", "/v1/metrics")
        service, gateway = metrics["service"], metrics["gateway"]
        print(
            f"\nGET /v1/metrics -> {status}: "
            f"{gateway['requests_total']} requests, "
            f"{service['queries']} queries served by generation "
            f"{metrics['generation']} "
            f"(hit rate {service['hit_rate']:.0%}, "
            f"p95 {service['p95_latency_s'] * 1e3:.2f}ms)"
        )
    print("\ngateway stopped")


if __name__ == "__main__":
    main()
