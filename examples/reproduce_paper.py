"""Full paper reproduction: run every table and figure in one go.

Builds the dataset (SMALL by default, ~40 s; set ``REPRO_SCALE=tiny``
for a fast dry run or ``REPRO_SCALE=paper`` for full volume), executes
all experiment drivers, and prints the paper-style tables and series.
The same drivers power ``pytest benchmarks/ --benchmark-only``, which
additionally asserts the expected shapes.

    REPRO_SCALE=tiny python examples/reproduce_paper.py
"""

import time

from repro.experiments import (
    ablations,
    fig5_dataset,
    fig6_window,
    fig7_alpha,
    fig10_trust,
    fig11_delta,
    tab2_fig8_friends,
    tab3_fig9_networks,
    tab4_domains,
)
from repro.experiments.context import ExperimentContext

DRIVERS = [
    ("Fig. 5 (dataset)", fig5_dataset),
    ("Fig. 6 (window size)", fig6_window),
    ("Fig. 7 (alpha)", fig7_alpha),
    ("Table 2 + Fig. 8 (friends)", tab2_fig8_friends),
    ("Table 3 + Fig. 9 (networks x distance)", tab3_fig9_networks),
    ("Table 4 (domains)", tab4_domains),
    ("Fig. 10 (trustworthiness)", fig10_trust),
    ("Fig. 11 (retrieved-expert delta)", fig11_delta),
    ("Ablations", ablations),
]


def main() -> None:
    t0 = time.time()
    context = ExperimentContext.create()
    print(
        f"dataset built in {time.time() - t0:.1f}s "
        f"(scale={context.dataset.scale.value}, seed={context.dataset.seed})"
    )
    for title, driver in DRIVERS:
        start = time.time()
        result = driver.run(context)
        print(f"\n{'=' * 72}\n{title}   [{time.time() - start:.1f}s]\n{'=' * 72}")
        print(result.render())
    print(f"\ntotal: {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
