"""Streaming updates: the expert index follows the feed.

A deployed expert finder cannot rebuild its indexes every time someone
tweets. ``ExpertFinder.observe`` ingests new resources incrementally —
evidence lists grow, collection statistics are invalidated, and the
next query sees the new content. This script simulates a live day: a
previously invisible candidate starts posting about swimming and climbs
the ranking query by query.

    python examples/streaming_updates.py
"""

from repro import DatasetScale, ExpertFinder, FinderConfig, build_dataset

NEW_POSTS = [
    "just finished a freestyle swimming session at the pool great training",
    "the olympics freestyle relay was amazing what a gold medal race",
    "my backstroke and butterfly still need work but freestyle feels strong",
    "coach says my freestyle lap times are almost at championship level",
]


def main() -> None:
    dataset = build_dataset(DatasetScale.TINY, seed=7)
    finder = ExpertFinder.build(
        dataset.merged_graph,
        dataset.candidates_for(None),
        dataset.analyzer,
        FinderConfig(),
        corpus=dataset.corpus,
    )
    question = "Who is the best freestyle swimmer, is it Michael Phelps?"
    newcomer = dataset.person_ids[-1]
    names = {p.person_id: p.name for p in dataset.people}

    def position() -> str:
        ranked = finder.find_experts(question)
        for rank, expert in enumerate(ranked, start=1):
            if expert.candidate_id == newcomer:
                return f"rank {rank}/{len(ranked)} (score {expert.score:.1f})"
        return "not ranked"

    print(f"question: {question!r}")
    print(f"watching {names[newcomer]} ({newcomer}), initially: {position()}\n")

    for i, text in enumerate(NEW_POSTS):
        indexed = finder.observe(
            f"live:tweet:{i}", text, [(newcomer, 1)], language="en"
        )
        print(f"new post {i + 1} (indexed={indexed}): {text[:48]}...")
        print(f"  → {names[newcomer]} now at {position()}")

    print(
        f"\ntotal evidence for {names[newcomer]}:"
        f" {finder.evidence_count(newcomer)} items,"
        f" {finder.indexed_resources} resources indexed overall"
    )


if __name__ == "__main__":
    main()
