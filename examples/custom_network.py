"""Using the library on your own data — no synthetic dataset involved.

Builds the paper's Fig.-1 scenario by hand (Anna's friends on a
Twitter-like network), runs the full analysis pipeline over it, and
ranks the candidates for Anna's question. This is the integration path
a downstream user follows to plug in real exported social data.

    python examples/custom_network.py
"""

from repro import ExpertFinder, FinderConfig, Platform
from repro.entity.annotator import EntityAnnotator
from repro.index.analyzer import ResourceAnalyzer
from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import (
    RelationKind,
    Resource,
    SocialRelation,
    UserProfile,
)
from repro.synthetic.seeds import build_knowledge_base
from repro.textproc.pipeline import TextPipeline


def build_fig1_graph() -> SocialGraph:
    graph = SocialGraph(Platform.TWITTER)
    people = {
        "alice": "",
        "charlie": "",
        "bob": "hobby swimming",
        "chuck": "",
        "peggy": "pasta lover and weekend baker sharing recipes every day",
    }
    for pid, bio in people.items():
        graph.add_profile(
            UserProfile(
                profile_id=pid,
                platform=Platform.TWITTER,
                display_name=pid.title(),
                text=bio,
            )
        )
    graph.add_resource(
        Resource(
            resource_id="tweet:alice:0900",
            platform=Platform.TWITTER,
            text="MichaelPhelps is the best! Great freestyle gold medal",
            language="en",
        )
    )
    graph.add_resource(
        Resource(
            resource_id="post:charlie:0800",
            platform=Platform.TWITTER,
            text="Just finished 30min freestyle training at the swimming pool",
            language="en",
        )
    )
    graph.link_resource("alice", "tweet:alice:0900", RelationKind.CREATES)
    graph.link_resource("charlie", "post:charlie:0800", RelationKind.CREATES)
    graph.add_social_relation(SocialRelation("chuck", "bob", RelationKind.FOLLOWS))
    return graph


def main() -> None:
    graph = build_fig1_graph()

    # assemble the analysis stack: text pipeline + TAGME-style annotator
    analyzer = ResourceAnalyzer(TextPipeline(), EntityAnnotator(build_knowledge_base()))

    finder = ExpertFinder.build(
        graph,
        ["alice", "charlie", "bob", "chuck", "peggy"],
        analyzer,
        FinderConfig(window=None),  # tiny graph: no window needed
    )

    question = "best freestyle swimming"
    print(f"Anna asks: {question!r}\n")
    for rank, expert in enumerate(finder.find_experts(question), start=1):
        print(
            f"  {rank}. {expert.candidate_id:<8} score={expert.score:6.3f}"
            f" ({expert.supporting_resources} supporting resources)"
        )
    print("\nPeggy is absent: she has neither direct knowledge of the domain")
    print("nor close connections showing the requested expertise (paper Fig. 1).")


if __name__ == "__main__":
    main()
