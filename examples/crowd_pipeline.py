"""End-to-end crowd pipeline: find experts, form a team, pick a jury,
route the question.

Chains the paper's expert finder with the crowd-selection applications
its introduction and related work describe: the Expert Team Formation
problem (Lappas et al.), the Jury Selection Problem (Cao et al.), and
crowd-search question routing with availability models.

    python examples/crowd_pipeline.py
"""

import networkx as nx

from repro import DatasetScale, FinderConfig, Platform, build_dataset
from repro.crowd.jury import JurySelector
from repro.crowd.routing import QuestionRouter, default_contact_models
from repro.crowd.team_formation import TeamFormation
from repro.evaluation.runner import ExperimentRunner


def main() -> None:
    dataset = build_dataset(DatasetScale.TINY, seed=7)
    runner = ExperimentRunner(dataset)
    finder = runner.finder(None, FinderConfig())
    names = {p.person_id: p.name for p in dataset.people}

    # 1. expert finding — who knows what?
    question = "Which team has won the most Champions League titles, Real Madrid or AC Milan?"
    ranked = finder.find_experts(question, top_k=5)
    print(f"Q: {question}")
    print("top experts:", ", ".join(f"{names[e.candidate_id]}" for e in ranked))

    # 2. team formation — cover a multi-domain task with a tight team
    task_domains = ("sport", "computer_engineering", "music")
    skills: dict[str, set[str]] = {}
    for domain in task_domains:
        domain_query = next(q for q in dataset.queries if q.domain == domain)
        for expert in finder.find_experts(domain_query, top_k=5):
            skills.setdefault(expert.candidate_id, set()).add(domain)
    graph = nx.Graph()
    graph.add_nodes_from(skills)
    fb = dataset.graphs[Platform.FACEBOOK]
    fb_to_person = {
        profiles[Platform.FACEBOOK]: person
        for person, profiles in dataset.networks.profile_ids.items()
    }
    for fb_id, person in fb_to_person.items():
        for friend in fb.friends_of(fb_id):
            other = fb_to_person.get(friend)
            if other and person in skills and other in skills:
                graph.add_edge(person, other)
    formation = TeamFormation(skills, graph)
    team = formation.greedy_cover(task_domains)
    print(
        f"\ntask needs {task_domains}: team = "
        f"{{{', '.join(sorted(names[m] for m in team.members))}}}"
        f" (diameter {team.diameter_cost:.0f}, mst {team.mst_cost:.0f})"
    )

    # 3. jury selection — a sport decision by majority vote
    likert = {
        pid: dataset.ground_truth.likert(pid, "sport") for pid in dataset.person_ids
    }
    jury = JurySelector.from_expertise(likert).select(max_size=5)
    print(
        f"\nsport jury: {', '.join(names[m] for m in jury.members)}"
        f" → majority error rate {jury.jury_error_rate:.3f}"
    )

    # 4. question routing — whom to contact, and how
    router = QuestionRouter(default_contact_models(dataset.person_ids, seed=7))
    print("\nrouting strategies for the top experts:")
    for strategy, plan in router.compare(ranked, top_k=3).items():
        waves = " → ".join(
            "{" + ", ".join(names[c] for c in wave) + "}" for wave in plan.waves
        )
        latency = f"{plan.expected_latency:.1f}" if plan.expected_latency else "n/a"
        print(
            f"  {strategy.value:<10} P(answer)={plan.answer_probability:.2f}"
            f"  E[latency]={latency:<5} contacts={plan.contacts}  waves: {waves}"
        )


if __name__ == "__main__":
    main()
