"""Crowd-search question routing — the paper's motivating scenario.

Given a question, decide (a) WHO to ask — the top-k experts — and
(b) WHERE to reach them — which social platform gives the strongest
evidence for each chosen expert, the paper's "which is the best social
platform to contact them?" (Sec. 2.1).

    python examples/crowdsearch_routing.py
"""

from repro import DatasetScale, ExpertFinder, FinderConfig, Platform, build_dataset

QUESTIONS = [
    "Can you list some restaurants in Milan?",
    "Which PHP function can I use in order to obtain the length of a string?",
    "Is the new Nvidia gpu worth the upgrade for World of Warcraft raids?",
]


def main() -> None:
    dataset = build_dataset(DatasetScale.TINY, seed=7)
    config = FinderConfig()

    # one finder over all platforms (to pick the experts), one per
    # platform (to pick the contact channel)
    all_finder = ExpertFinder.build(
        dataset.merged_graph,
        dataset.candidates_for(None),
        dataset.analyzer,
        config,
        corpus=dataset.corpus,
    )
    platform_finders = {
        platform: ExpertFinder.build(
            dataset.graphs[platform],
            dataset.candidates_for(platform),
            dataset.analyzer,
            config,
            corpus=dataset.corpus,
        )
        for platform in Platform
    }

    for question in QUESTIONS:
        print(f"\nQ: {question}")
        top = all_finder.find_experts(question, top_k=3)
        if not top:
            print("  no candidate shows any matching expertise")
            continue
        for expert in top:
            # best channel = platform whose evidence scores highest for
            # this candidate on this question
            channel_scores = {}
            for platform, finder in platform_finders.items():
                ranked = finder.find_experts(question)
                for entry in ranked:
                    if entry.candidate_id == expert.candidate_id:
                        channel_scores[platform] = entry.score
                        break
            if channel_scores:
                best = max(channel_scores, key=channel_scores.get)
                channel = f"contact via {best.value}"
            else:
                channel = "evidence only cross-platform"
            person = next(
                p for p in dataset.people if p.person_id == expert.candidate_id
            )
            print(f"  ask {person.name:<10} (score {expert.score:7.2f}) — {channel}")


if __name__ == "__main__":
    main()
