"""Quickstart: build a dataset, build a finder, ask a question.

Runs on the TINY synthetic dataset (~1 s to build) and shows the core
API end to end: dataset → ExpertFinder → ranked experts for a natural
language expertise need.

    python examples/quickstart.py
"""

from repro import DatasetScale, ExpertFinder, FinderConfig, build_dataset


def main() -> None:
    print("building the TINY synthetic dataset (12 candidates)...")
    dataset = build_dataset(DatasetScale.TINY, seed=7)
    counts = dataset.merged_graph.counts()
    print(
        f"  {counts['profiles']} profiles, {counts['resources']} resources,"
        f" {counts['containers']} groups/pages across 3 platforms\n"
    )

    # the paper's final configuration: α = 0.6, window = 100, distance 2
    finder = ExpertFinder.build(
        dataset.merged_graph,
        dataset.candidates_for(None),  # None = use all three platforms
        dataset.analyzer,
        FinderConfig(),
        corpus=dataset.corpus,
    )

    question = "Who is the best freestyle swimmer, is it Michael Phelps?"
    print(f"expertise need: {question!r}\n")
    print(f"{'rank':<5} {'candidate':<12} {'score':>9} {'#resources':>11} {'true expert?':>13}")
    experts = dataset.ground_truth.experts("sport")
    for rank, expert in enumerate(finder.find_experts(question, top_k=8), start=1):
        marker = "yes" if expert.candidate_id in experts else ""
        print(
            f"{rank:<5} {expert.candidate_id:<12} {expert.score:>9.2f}"
            f" {expert.supporting_resources:>11} {marker:>13}"
        )

    print("\nmatching resources behind the ranking (top 3):")
    for match in finder.match_resources(question)[:3]:
        print(f"  {match.doc_id}  score={match.score:.2f}")


if __name__ == "__main__":
    main()
