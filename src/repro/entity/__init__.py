"""Entity recognition and disambiguation substrate (paper Sec. 2.3).

A self-contained reimplementation of the TAGME approach (Ferragina &
Scaiella, CIKM 2010) used by the paper: anchors are spotted in short
text, each spot's candidate entities are scored by combining the anchor's
*commonness* prior with link-based *relatedness* to the other spots'
candidates, and low-confidence annotations are pruned. Every annotation
carries a Wikipedia-style URI and a disambiguation confidence ``dScore``
that feeds the resource-relevance formula (paper Eq. 2).

The knowledge base is synthetic (built by :mod:`repro.synthetic.seeds`)
but structurally faithful: ambiguous anchors, commonness priors, a link
graph, and per-entity types and domains.
"""

from repro.entity.annotator import Annotation, EntityAnnotator
from repro.entity.disambiguator import Disambiguator
from repro.entity.knowledge_base import Entity, KnowledgeBase
from repro.entity.spotter import Spot, Spotter

__all__ = [
    "Annotation",
    "Disambiguator",
    "Entity",
    "EntityAnnotator",
    "KnowledgeBase",
    "Spot",
    "Spotter",
]
