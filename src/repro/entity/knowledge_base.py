"""Wikipedia-like knowledge base: entities, anchors, and a link graph.

The real system cross-links text to Wikipedia; here the KB is built from
synthetic seed data, but it exposes the same statistics the TAGME
algorithm needs:

* **anchors** — surface forms with a probability distribution over the
  entities they may denote (*commonness*, estimated on Wikipedia from
  anchor-text counts);
* **links** — an entity-to-entity graph from which semantic
  *relatedness* is computed with the Milne–Witten measure.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass


@dataclass(frozen=True)
class Entity:
    """One catalogued real-world entity."""

    uri: str
    name: str
    entity_type: str  # e.g. Person, City, SportsTeam, Software
    domain: str  # e.g. sport, music, technology — paper's "domain"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.uri:
            raise ValueError("Entity.uri must be non-empty")


@dataclass
class _AnchorEntry:
    entity_uri: str
    count: int


class KnowledgeBase:
    """Entity catalogue + anchor dictionary + link graph."""

    def __init__(self) -> None:
        self._entities: dict[str, Entity] = {}
        self._anchors: dict[tuple[str, ...], list[_AnchorEntry]] = {}
        self._outlinks: dict[str, set[str]] = {}
        self._inlinks: dict[str, set[str]] = {}
        self._max_anchor_len = 1

    # -- construction -----------------------------------------------------------

    def add_entity(self, entity: Entity) -> None:
        if entity.uri in self._entities:
            raise ValueError(f"entity {entity.uri!r} already in KB")
        self._entities[entity.uri] = entity
        self._outlinks.setdefault(entity.uri, set())
        self._inlinks.setdefault(entity.uri, set())

    def add_anchor(self, surface: str, entity_uri: str, count: int = 1) -> None:
        """Register that *surface* (a space-separated lowercase phrase) is
        used *count* times as anchor text for *entity_uri*."""
        self._require(entity_uri)
        if count <= 0:
            raise ValueError("anchor count must be positive")
        key = tuple(surface.lower().split())
        if not key:
            raise ValueError("anchor surface must be non-empty")
        entries = self._anchors.setdefault(key, [])
        for entry in entries:
            if entry.entity_uri == entity_uri:
                entry.count += count
                break
        else:
            entries.append(_AnchorEntry(entity_uri, count))
        self._max_anchor_len = max(self._max_anchor_len, len(key))

    def add_link(self, source_uri: str, target_uri: str) -> None:
        """Register a (directed) page link between two entities."""
        self._require(source_uri)
        self._require(target_uri)
        if source_uri == target_uri:
            return
        self._outlinks[source_uri].add(target_uri)
        self._inlinks[target_uri].add(source_uri)

    # -- queries ----------------------------------------------------------------

    def _require(self, uri: str) -> None:
        if uri not in self._entities:
            raise KeyError(f"unknown entity {uri!r}")

    def entity(self, uri: str) -> Entity:
        self._require(uri)
        return self._entities[uri]

    def has_entity(self, uri: str) -> bool:
        return uri in self._entities

    def entities(self) -> Iterable[Entity]:
        return self._entities.values()

    def __len__(self) -> int:
        return len(self._entities)

    @property
    def max_anchor_length(self) -> int:
        """Longest anchor, in tokens — bounds the spotter's n-gram scan."""
        return self._max_anchor_len

    def anchor_candidates(self, surface_tokens: tuple[str, ...]) -> list[tuple[str, float]]:
        """(entity_uri, commonness) for every entity the anchor may denote,
        sorted by decreasing commonness. Empty if the phrase is not an
        anchor."""
        entries = self._anchors.get(surface_tokens)
        if not entries:
            return []
        total = sum(e.count for e in entries)
        scored = [(e.entity_uri, e.count / total) for e in entries]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored

    def is_anchor(self, surface_tokens: tuple[str, ...]) -> bool:
        return surface_tokens in self._anchors

    def relatedness(self, uri_a: str, uri_b: str) -> float:
        """Milne–Witten semantic relatedness from shared in-links, in
        [0, 1]. Entities with no in-link overlap score 0."""
        if uri_a == uri_b:
            return 1.0
        links_a = self._inlinks.get(uri_a, set())
        links_b = self._inlinks.get(uri_b, set())
        shared = len(links_a & links_b)
        if shared == 0:
            return 0.0
        size_a, size_b = len(links_a), len(links_b)
        total = max(len(self._entities), 2)
        numerator = math.log(max(size_a, size_b)) - math.log(shared)
        denominator = math.log(total) - math.log(min(size_a, size_b))
        if denominator <= 0:
            return 1.0
        return max(0.0, 1.0 - numerator / denominator)
