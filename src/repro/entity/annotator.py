"""End-to-end entity annotation: text in, pruned annotations out.

``EntityAnnotator`` composes sanitization, tokenization, spotting, and
collective disambiguation, then prunes annotations whose confidence falls
below ``epsilon`` — TAGME's ρ-pruning — so that only entities "that have
a clear meaning in the context of the text" survive (paper Sec. 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.entity.disambiguator import Disambiguator
from repro.entity.knowledge_base import KnowledgeBase
from repro.entity.spotter import Spotter
from repro.textproc.sanitizer import sanitize
from repro.textproc.tokenizer import tokenize


@dataclass(frozen=True)
class Annotation:
    """One recognized and disambiguated entity mention."""

    entity_uri: str
    surface: str
    d_score: float
    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.d_score <= 1.0:
            raise ValueError(f"d_score must be in [0, 1], got {self.d_score}")


class EntityAnnotator:
    """Annotate short texts with KB entities and confidence scores.

    >>> from repro.synthetic.seeds import build_knowledge_base
    >>> annotator = EntityAnnotator(build_knowledge_base())
    >>> anns = annotator.annotate("Michael Phelps is the best freestyle swimmer")
    >>> any(a.entity_uri.endswith("Michael_Phelps") for a in anns)
    True
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        *,
        epsilon: float = 0.1,
        prior_weight: float = 0.5,
    ):
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self._kb = kb
        self._epsilon = epsilon
        self._spotter = Spotter(kb)
        self._disambiguator = Disambiguator(kb, prior_weight=prior_weight)

    @property
    def knowledge_base(self) -> KnowledgeBase:
        return self._kb

    def annotate_tokens(self, tokens: list[str] | tuple[str, ...]) -> list[Annotation]:
        """Annotate pre-tokenized text (tokens lowercase, unstemmed)."""
        spots = self._spotter.spot(list(tokens))
        chosen = self._disambiguator.disambiguate(spots)
        annotations = [
            Annotation(
                entity_uri=d.entity_uri,
                surface=" ".join(d.spot.surface),
                d_score=d.d_score,
                start=d.spot.start,
                end=d.spot.end,
            )
            for d in chosen
            if d.d_score >= self._epsilon
        ]
        return annotations

    def annotate(self, text: str) -> list[Annotation]:
        """Sanitize, tokenize, and annotate raw *text*."""
        return self.annotate_tokens(tokenize(sanitize(text)))
