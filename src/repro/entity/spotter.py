"""Anchor spotting: find knowledge-base anchors in tokenized text.

The spotter scans token n-grams (longest first, greedily, left to right)
against the KB anchor dictionary, so "new york city" is spotted as one
anchor rather than as "new york" + "city". Overlapping spots are resolved
in favour of the longer one, matching TAGME's parsing of short texts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.entity.knowledge_base import KnowledgeBase


@dataclass(frozen=True)
class Spot:
    """A candidate mention found in the text."""

    start: int  # token offset, inclusive
    end: int  # token offset, exclusive
    surface: tuple[str, ...]
    #: (entity_uri, commonness), best first
    candidates: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("Spot must span at least one token")
        if not self.candidates:
            raise ValueError("Spot must have at least one candidate")


class Spotter:
    """Greedy longest-match anchor spotter."""

    def __init__(self, kb: KnowledgeBase, *, max_anchor_length: int | None = None):
        self._kb = kb
        self._max_len = max_anchor_length or kb.max_anchor_length

    def spot(self, tokens: list[str] | tuple[str, ...]) -> list[Spot]:
        """Return the non-overlapping spots in *tokens*, left to right.

        Tokens are expected lowercase and unstemmed (anchors are surface
        forms, not stems).
        """
        spots: list[Spot] = []
        i = 0
        n = len(tokens)
        while i < n:
            matched = False
            for length in range(min(self._max_len, n - i), 0, -1):
                surface = tuple(tokens[i : i + length])
                candidates = self._kb.anchor_candidates(surface)
                if candidates:
                    spots.append(
                        Spot(
                            start=i,
                            end=i + length,
                            surface=surface,
                            candidates=tuple(candidates),
                        )
                    )
                    i += length
                    matched = True
                    break
            if not matched:
                i += 1
        return spots
