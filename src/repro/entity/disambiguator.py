"""Collective disambiguation of spotted mentions (TAGME voting scheme).

Each spot's candidate entities receive votes from every *other* spot:
a candidate's vote from spot *s* is the relatedness-weighted average of
*s*'s candidates' commonness. The winning candidate's normalized score —
blended with its own commonness prior — becomes the annotation's
``dScore`` (disambiguation confidence), the quantity paper Eq. 2 turns
into the entity weight ``we = 1 + dScore``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.entity.knowledge_base import KnowledgeBase
from repro.entity.spotter import Spot


@dataclass(frozen=True)
class Disambiguated:
    """The chosen entity for one spot, with its confidence."""

    spot: Spot
    entity_uri: str
    d_score: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.d_score <= 1.0:
            raise ValueError(f"d_score must be in [0, 1], got {self.d_score}")


class Disambiguator:
    """TAGME-style collective disambiguation.

    *prior_weight* balances the commonness prior against the context
    votes (TAGME's best setting is prior-leaning for very short texts).
    """

    def __init__(self, kb: KnowledgeBase, *, prior_weight: float = 0.5):
        if not 0.0 <= prior_weight <= 1.0:
            raise ValueError("prior_weight must be in [0, 1]")
        self._kb = kb
        self._prior_weight = prior_weight

    def _vote(self, candidate_uri: str, other: Spot) -> float:
        """The vote that spot *other* casts for *candidate_uri*."""
        total = 0.0
        for uri, commonness in other.candidates:
            total += self._kb.relatedness(candidate_uri, uri) * commonness
        return total / len(other.candidates)

    def disambiguate(self, spots: list[Spot]) -> list[Disambiguated]:
        """Choose one entity per spot and score the choice in [0, 1]."""
        results: list[Disambiguated] = []
        for idx, spot in enumerate(spots):
            others = [s for j, s in enumerate(spots) if j != idx]
            best_uri = ""
            best_score = -1.0
            for uri, commonness in spot.candidates:
                if others:
                    context = sum(self._vote(uri, o) for o in others) / len(others)
                else:
                    context = 0.0
                score = self._prior_weight * commonness + (1 - self._prior_weight) * context
                if score > best_score:
                    best_uri, best_score = uri, score
            # With no context the score is bounded by prior_weight; rescale
            # so an unambiguous single-spot mention can still reach 1.0.
            if not others:
                best_score = best_score / self._prior_weight if self._prior_weight else 0.0
            results.append(
                Disambiguated(
                    spot=spot,
                    entity_uri=best_uri,
                    d_score=min(1.0, max(0.0, best_score)),
                )
            )
        return results
