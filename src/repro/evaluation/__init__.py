"""Evaluation substrate (paper Sec. 3.2).

Implements the paper's four metric families — MAP, 11-point interpolated
average precision, MRR, and (N)DCG — plus the random baseline (10 runs
of 20 randomly selected users per query) and the experiment runner that
executes the 30 queries under a finder configuration and aggregates the
metrics.
"""

from repro.evaluation.baselines import random_baseline
from repro.evaluation.metrics import (
    average_precision,
    dcg,
    eleven_point_precision,
    f1_score,
    ndcg,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.evaluation.runner import (
    EvaluationResult,
    ExperimentRunner,
    MetricsSummary,
    QueryOutcome,
    evaluate_finder,
)
from repro.evaluation.significance import (
    SignificanceReport,
    compare_results,
    paired_permutation_test,
)

__all__ = [
    "EvaluationResult",
    "ExperimentRunner",
    "MetricsSummary",
    "QueryOutcome",
    "SignificanceReport",
    "average_precision",
    "compare_results",
    "dcg",
    "eleven_point_precision",
    "evaluate_finder",
    "f1_score",
    "ndcg",
    "paired_permutation_test",
    "precision_at_k",
    "random_baseline",
    "recall_at_k",
    "reciprocal_rank",
]
