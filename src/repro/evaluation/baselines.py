"""The random selection baseline (paper Sec. 3.1, last paragraph).

"Random figures have been calculated by averaging, for each query, the
results of 10 runs in which 20 users were randomly selected."
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.need import ExpertiseNeed
from repro.evaluation.metrics import (
    average_precision,
    mean,
    ndcg,
    reciprocal_rank,
)
from repro.evaluation.runner import MetricsSummary
from repro.synthetic.ground_truth import GroundTruth


def random_baseline(
    person_ids: Sequence[str],
    queries: Sequence[ExpertiseNeed],
    ground_truth: GroundTruth,
    *,
    runs: int = 10,
    sample_size: int = 20,
    seed: int = 0,
) -> MetricsSummary:
    """Average metrics of random top-20 selections over *runs* repeats.

    The sample size is capped at the population size, so tiny test
    datasets remain valid.
    """
    if runs <= 0 or sample_size <= 0:
        raise ValueError("runs and sample_size must be positive")
    rng = random.Random(seed)
    population = list(person_ids)
    k = min(sample_size, len(population))
    ap_values: list[float] = []
    rr_values: list[float] = []
    ndcg_values: list[float] = []
    ndcg10_values: list[float] = []
    for need in queries:
        relevant = ground_truth.experts(need.domain)
        gains = {pid: float(ground_truth.likert(pid, need.domain)) for pid in relevant}
        for _ in range(runs):
            ranking = rng.sample(population, k)
            ap_values.append(average_precision(ranking, relevant))
            rr_values.append(reciprocal_rank(ranking, relevant))
            ndcg_values.append(ndcg(ranking, gains))
            ndcg10_values.append(ndcg(ranking, gains, 10))
    return MetricsSummary(
        map=mean(ap_values),
        mrr=mean(rr_values),
        ndcg=mean(ndcg_values),
        ndcg_at_10=mean(ndcg10_values),
    )


def random_curves(
    person_ids: Sequence[str],
    queries: Sequence[ExpertiseNeed],
    ground_truth: GroundTruth,
    *,
    runs: int = 10,
    sample_size: int = 20,
    seed: int = 0,
    dcg_ks: Sequence[int] = (5, 10, 15, 20),
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Random-baseline 11-point precision and DCG curves (for the
    baseline series of Figs. 8 and 9)."""
    from repro.evaluation.metrics import dcg, eleven_point_precision

    rng = random.Random(seed)
    population = list(person_ids)
    k = min(sample_size, len(population))
    curves: list[tuple[float, ...]] = []
    dcg_rows: list[tuple[float, ...]] = []
    for need in queries:
        relevant = ground_truth.experts(need.domain)
        gains = {pid: float(ground_truth.likert(pid, need.domain)) for pid in relevant}
        for _ in range(runs):
            ranking = rng.sample(population, k)
            curves.append(eleven_point_precision(ranking, relevant))
            dcg_rows.append(tuple(dcg(ranking, gains, cut) for cut in dcg_ks))
    eleven = tuple(mean([c[i] for c in curves]) for i in range(11))
    dcg_curve = tuple(mean([row[i] for row in dcg_rows]) for i in range(len(dcg_ks)))
    return eleven, dcg_curve
