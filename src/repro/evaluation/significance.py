"""Paired significance testing between system configurations.

The paper compares configurations by their mean metrics alone; with 30
queries, a paired test tells whether a difference is more than seed
luck. ``paired_permutation_test`` implements the standard
Fisher/Pitman randomization test on per-query score differences (exact
for ≤ ``exact_limit`` queries, Monte-Carlo above), and
``compare_results`` applies it to two :class:`EvaluationResult`s on any
per-query metric.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.evaluation.runner import EvaluationResult


@dataclass(frozen=True)
class SignificanceReport:
    """Outcome of one paired comparison."""

    metric: str
    mean_a: float
    mean_b: float
    p_value: float

    @property
    def difference(self) -> float:
        return self.mean_a - self.mean_b

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def paired_permutation_test(
    a: Sequence[float],
    b: Sequence[float],
    *,
    rounds: int = 10000,
    seed: int = 0,
    exact_limit: int = 14,
) -> float:
    """Two-sided p-value for mean(a) ≠ mean(b) on paired samples.

    Under the null hypothesis each pair's difference is symmetric
    around 0, so its sign can be flipped freely; the p-value is the
    share of sign assignments whose |mean difference| reaches the
    observed one. Exact enumeration when there are at most
    *exact_limit* informative pairs, seeded Monte-Carlo otherwise.

    >>> paired_permutation_test([1.0, 1.0, 1.0], [1.0, 1.0, 1.0])
    1.0
    """
    if len(a) != len(b):
        raise ValueError(f"paired samples differ in length: {len(a)} != {len(b)}")
    if not a:
        raise ValueError("samples must be non-empty")
    diffs = [x - y for x, y in zip(a, b)]
    informative = [d for d in diffs if d != 0.0]
    if not informative:
        return 1.0
    observed = abs(sum(diffs) / len(diffs))
    n = len(informative)
    count_total = 0
    count_extreme = 0
    if n <= exact_limit:
        for signs in itertools.product((1, -1), repeat=n):
            total = sum(s * d for s, d in zip(signs, informative))
            count_total += 1
            if abs(total / len(diffs)) >= observed - 1e-15:
                count_extreme += 1
    else:
        rng = random.Random(seed)
        for _ in range(rounds):
            total = sum(d if rng.random() < 0.5 else -d for d in informative)
            count_total += 1
            if abs(total / len(diffs)) >= observed - 1e-15:
                count_extreme += 1
    return count_extreme / count_total


def compare_results(
    result_a: EvaluationResult,
    result_b: EvaluationResult,
    *,
    metric: str = "ap",
    rounds: int = 10000,
    seed: int = 0,
) -> SignificanceReport:
    """Paired test between two evaluation results on a per-query metric
    (``ap``, ``rr``, ``ndcg``, or ``ndcg_at_10``). The results must
    cover the same queries in the same order."""
    ids_a = [o.need.need_id for o in result_a.outcomes]
    ids_b = [o.need.need_id for o in result_b.outcomes]
    if ids_a != ids_b:
        raise ValueError("results cover different query sets")
    a = [getattr(o, metric) for o in result_a.outcomes]
    b = [getattr(o, metric) for o in result_b.outcomes]
    return SignificanceReport(
        metric=metric,
        mean_a=sum(a) / len(a),
        mean_b=sum(b) / len(b),
        p_value=paired_permutation_test(a, b, rounds=rounds, seed=seed),
    )
