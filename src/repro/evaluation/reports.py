"""Paper-style rendering of experiment outputs.

Turns metric summaries and curves into the rows/series layout of the
paper's tables and figures, as plain text suitable for terminals and for
EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.evaluation.runner import MetricsSummary


def _fmt(value: float) -> str:
    return f"{value:.4f}"


def metrics_table(
    rows: Mapping[str, MetricsSummary],
    *,
    title: str = "",
    header: Sequence[str] = ("MAP", "MRR", "NDCG", "NDCG@10"),
) -> str:
    """Render label → summary rows as an aligned text table, bolding
    nothing but marking the per-column best with a ``*`` (the paper uses
    bold)."""
    labels = list(rows)
    if not labels:
        return title
    values = [rows[label].as_row() for label in labels]
    best = [max(col[i] for col in values) for i in range(4)]
    width = max(len(label) for label in labels)
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(" " * width + "  " + "  ".join(f"{h:>8}" for h in header))
    for label, row in zip(labels, values):
        cells = []
        for i, value in enumerate(row):
            mark = "*" if value == best[i] and value > 0 else " "
            cells.append(f"{_fmt(value):>7}{mark}")
        lines.append(f"{label:<{width}}  " + "  ".join(cells))
    return "\n".join(lines)


def curve_series(
    series: Mapping[str, Sequence[float]],
    *,
    x_labels: Sequence[str],
    title: str = "",
) -> str:
    """Render named series over common x points (the figure data)."""
    width = max((len(name) for name in series), default=0)
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(" " * width + "  " + "  ".join(f"{x:>7}" for x in x_labels))
    for name, values in series.items():
        cells = "  ".join(f"{v:7.4f}" for v in values)
        lines.append(f"{name:<{width}}  {cells}")
    return "\n".join(lines)


def domain_table(
    rows: Mapping[str, Mapping[str, Mapping[int, MetricsSummary]]],
    *,
    metric: str,
    networks: Sequence[str] = ("All", "FB", "TW", "LI"),
    distances: Sequence[int] = (0, 1, 2),
) -> str:
    """Render the Table-4 layout for one metric: domain × distance rows,
    one column per network."""
    lines = [f"metric: {metric}"]
    header = "domain                    d  " + "  ".join(f"{n:>7}" for n in networks)
    lines.append(header)
    for domain, per_network in rows.items():
        for distance in distances:
            cells = []
            for network in networks:
                summary = per_network.get(network, {}).get(distance)
                value = getattr(summary, metric) if summary is not None else float("nan")
                cells.append(f"{value:7.4f}")
            lines.append(f"{domain:<24}  {distance}  " + "  ".join(cells))
    return "\n".join(lines)
