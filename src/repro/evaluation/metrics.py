"""Standard retrieval metrics (paper Sec. 3.2).

All functions take a *ranked* list of candidate ids (best first) and
ground-truth relevance — a set of relevant ids for the binary metrics,
or an id → graded-relevance mapping for the DCG family. The DCG gain is
exponential (``2^rel − 1``) over the 7-point Likert relevance, which
reproduces the magnitude of the paper's DCG curves (tens to hundreds);
NDCG divides by the ideal DCG so tables stay in [0, 1].
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence, Set


def precision_at_k(ranked: Sequence[str], relevant: Set[str], k: int) -> float:
    """Fraction of the top-*k* results that are relevant.

    >>> precision_at_k(["a", "b", "c"], {"a", "c"}, 2)
    0.5
    """
    if k <= 0:
        raise ValueError("k must be positive")
    top = ranked[:k]
    if not top:
        return 0.0
    return sum(1 for r in top if r in relevant) / k


def recall_at_k(ranked: Sequence[str], relevant: Set[str], k: int) -> float:
    """Fraction of the relevant items found in the top *k*."""
    if k <= 0:
        raise ValueError("k must be positive")
    if not relevant:
        return 0.0
    return sum(1 for r in ranked[:k] if r in relevant) / len(relevant)


def average_precision(ranked: Sequence[str], relevant: Set[str]) -> float:
    """AP: mean of precision@rank over the ranks of relevant results.

    Missing relevant items contribute 0 (standard TREC convention).

    >>> average_precision(["a", "x", "b"], {"a", "b"})
    0.8333333333333333
    """
    if not relevant:
        return 0.0
    hits = 0
    total = 0.0
    for i, item in enumerate(ranked, start=1):
        if item in relevant:
            hits += 1
            total += hits / i
    return total / len(relevant)


def reciprocal_rank(ranked: Sequence[str], relevant: Set[str]) -> float:
    """1 / rank of the first relevant result; 0 when none appears.

    >>> reciprocal_rank(["x", "a"], {"a"})
    0.5
    """
    for i, item in enumerate(ranked, start=1):
        if item in relevant:
            return 1.0 / i
    return 0.0


def _gain(relevance: float) -> float:
    return 2.0**relevance - 1.0


def dcg(ranked: Sequence[str], gains: Mapping[str, float], k: int | None = None) -> float:
    """Discounted cumulative gain with exponential gains and a
    ``log2(rank + 1)`` discount. Ids absent from *gains* contribute 0."""
    if k is not None and k <= 0:
        raise ValueError("k must be positive when given")
    top = ranked if k is None else ranked[:k]
    total = 0.0
    for i, item in enumerate(top, start=1):
        rel = gains.get(item, 0.0)
        if rel > 0:
            total += _gain(rel) / math.log2(i + 1)
    return total


def ideal_dcg(gains: Mapping[str, float], k: int | None = None) -> float:
    """The DCG of the perfect ordering of *gains*."""
    ordered = sorted(gains, key=lambda item: -gains[item])
    return dcg(ordered, gains, k)


def ndcg(ranked: Sequence[str], gains: Mapping[str, float], k: int | None = None) -> float:
    """Normalized DCG in [0, 1]; 0 when there is no relevant item at all.

    >>> ndcg(["a", "b"], {"a": 3.0, "b": 1.0})
    1.0
    """
    ideal = ideal_dcg(gains, k)
    if ideal == 0.0:
        return 0.0
    return dcg(ranked, gains, k) / ideal


def eleven_point_precision(
    ranked: Sequence[str], relevant: Set[str]
) -> tuple[float, ...]:
    """Interpolated precision at recall 0.0, 0.1, …, 1.0 (11 values).

    Interpolation takes, at each recall level, the maximum precision at
    any recall ≥ that level.
    """
    if not relevant:
        return tuple(0.0 for _ in range(11))
    # precision/recall after each rank
    points: list[tuple[float, float]] = []
    hits = 0
    for i, item in enumerate(ranked, start=1):
        if item in relevant:
            hits += 1
            points.append((hits / len(relevant), hits / i))
    curve = []
    for level in range(11):
        recall_level = level / 10.0
        attainable = [p for r, p in points if r >= recall_level]
        curve.append(max(attainable) if attainable else 0.0)
    return tuple(curve)


def f1_score(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall; 0 when both are 0.

    >>> f1_score(0.5, 0.5)
    0.5
    """
    if precision < 0 or recall < 0:
        raise ValueError("precision and recall must be non-negative")
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (a query set with no
    evaluable queries contributes nothing rather than crashing a sweep)."""
    return sum(values) / len(values) if values else 0.0
