"""Experiment runner: execute the query set under a configuration.

The runner owns the expensive pieces — finder construction per
``(platform, max_distance, include_friends, idf_exponent)`` — and reuses
the dataset's shared corpus, so parameter sweeps over α and the window
only pay the cheap retrieval/ranking cost.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.core.need import ExpertiseNeed
from repro.evaluation.metrics import (
    average_precision,
    dcg,
    eleven_point_precision,
    f1_score,
    mean,
    ndcg,
    reciprocal_rank,
)
from repro.socialgraph.metamodel import Platform
from repro.synthetic.dataset import EvaluationDataset


@dataclass(frozen=True)
class MetricsSummary:
    """The four headline metrics of the paper's tables."""

    map: float
    mrr: float
    ndcg: float
    ndcg_at_10: float

    def as_row(self) -> tuple[float, float, float, float]:
        return (self.map, self.mrr, self.ndcg, self.ndcg_at_10)


@dataclass(frozen=True)
class QueryOutcome:
    """Everything recorded for one query under one configuration."""

    need: ExpertiseNeed
    ranking: tuple[str, ...]
    relevant: frozenset[str]
    gains: dict[str, float] = field(repr=False)
    matched_resources: int = 0

    @property
    def ap(self) -> float:
        return average_precision(self.ranking, self.relevant)

    @property
    def rr(self) -> float:
        return reciprocal_rank(self.ranking, self.relevant)

    @property
    def ndcg(self) -> float:
        return ndcg(self.ranking, self.gains)

    @property
    def ndcg_at_10(self) -> float:
        return ndcg(self.ranking, self.gains, 10)

    def dcg_at(self, k: int) -> float:
        return dcg(self.ranking, self.gains, k)

    @property
    def retrieved_delta(self) -> int:
        """Δ of Fig. 11: retrieved experts minus expected experts."""
        return len(self.ranking) - len(self.relevant)


@dataclass
class EvaluationResult:
    """Aggregation over a query set."""

    outcomes: list[QueryOutcome]

    def summary(self) -> MetricsSummary:
        return MetricsSummary(
            map=mean([o.ap for o in self.outcomes]),
            mrr=mean([o.rr for o in self.outcomes]),
            ndcg=mean([o.ndcg for o in self.outcomes]),
            ndcg_at_10=mean([o.ndcg_at_10 for o in self.outcomes]),
        )

    def eleven_point_curve(self) -> tuple[float, ...]:
        """Average interpolated 11-point precision/recall curve."""
        curves = [eleven_point_precision(o.ranking, o.relevant) for o in self.outcomes]
        if not curves:
            return tuple(0.0 for _ in range(11))
        return tuple(mean([c[i] for c in curves]) for i in range(11))

    def dcg_curve(self, ks: Sequence[int] = (5, 10, 15, 20)) -> tuple[float, ...]:
        """Average DCG at each cut-off (the Fig. 8b / 9b series)."""
        return tuple(mean([o.dcg_at(k) for o in self.outcomes]) for k in ks)

    def by_domain(self) -> dict[str, "EvaluationResult"]:
        grouped: dict[str, list[QueryOutcome]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.need.domain, []).append(outcome)
        return {d: EvaluationResult(os) for d, os in grouped.items()}

    def expert_deltas(self) -> list[int]:
        """Per-query Δ (Fig. 11), in query order."""
        return [o.retrieved_delta for o in self.outcomes]

    def user_f1(
        self, person_ids: Sequence[str], *, top_k: int | None = 20
    ) -> dict[str, float]:
        """Fig.-10 per-candidate F1: each query is a binary prediction
        "this person is among the top-*top_k* returned experts" (None =
        anywhere in EX — near-vacuous when most candidates match
        something, hence the default cut at the paper's 20-user
        selection size)."""
        scores: dict[str, float] = {}
        for pid in person_ids:
            true_positive = false_positive = false_negative = 0
            for o in self.outcomes:
                retrieved = o.ranking if top_k is None else o.ranking[:top_k]
                predicted = pid in retrieved
                actual = pid in o.relevant
                if predicted and actual:
                    true_positive += 1
                elif predicted:
                    false_positive += 1
                elif actual:
                    false_negative += 1
            precision = (
                true_positive / (true_positive + false_positive)
                if true_positive + false_positive
                else 0.0
            )
            recall = (
                true_positive / (true_positive + false_negative)
                if true_positive + false_negative
                else 0.0
            )
            scores[pid] = f1_score(precision, recall)
        return scores


def evaluate_finder(
    dataset: EvaluationDataset,
    finder,
    queries: Sequence[ExpertiseNeed] | None = None,
) -> EvaluationResult:
    """Score any object exposing ``find_experts(need)`` — the paper's
    system, the Balog baselines, the profile matcher — over *dataset*'s
    queries with its ground truth."""
    ground_truth = dataset.ground_truth
    outcomes: list[QueryOutcome] = []
    full_pipeline = hasattr(finder, "match_resources") and hasattr(
        finder, "rank_matches"
    )
    for need in queries if queries is not None else dataset.queries:
        if full_pipeline:
            # split retrieval from ranking so the true RR size is known
            matches = finder.match_resources(need)
            experts = finder.rank_matches(matches)
            matched = len(matches)
        else:
            # baselines expose only the ranked list; report its size
            experts = finder.find_experts(need)
            matched = len(experts)
        ranking = tuple(e.candidate_id for e in experts)
        relevant = ground_truth.experts(need.domain)
        gains = {
            pid: float(ground_truth.likert(pid, need.domain)) for pid in relevant
        }
        outcomes.append(
            QueryOutcome(
                need=need,
                ranking=ranking,
                relevant=relevant,
                gains=gains,
                matched_resources=matched,
            )
        )
    return EvaluationResult(outcomes)


class ExperimentRunner:
    """Run query sets against finder configurations over one dataset."""

    def __init__(self, dataset: EvaluationDataset):
        self._dataset = dataset
        self._finders: dict[tuple, ExpertFinder] = {}

    @property
    def dataset(self) -> EvaluationDataset:
        return self._dataset

    def finder(self, platform: Platform | None, config: FinderConfig) -> ExpertFinder:
        """A finder for (platform, config); indexes are cached across α
        and window values, which don't affect them."""
        key = (
            platform,
            config.max_distance,
            config.include_friends,
            config.idf_exponent,
        )
        cached = self._finders.get(key)
        if cached is None:
            cached = ExpertFinder.build(
                self._dataset.graph_for(platform),
                self._dataset.candidates_for(platform),
                self._dataset.analyzer,
                config,
                corpus=self._dataset.corpus,
            )
            self._finders[key] = cached
        return cached

    def run(
        self,
        platform: Platform | None,
        config: FinderConfig,
        *,
        queries: Sequence[ExpertiseNeed] | None = None,
    ) -> EvaluationResult:
        """Execute *queries* (default: all 30) and collect outcomes."""
        finder = self.finder(platform, config)
        ground_truth = self._dataset.ground_truth
        outcomes: list[QueryOutcome] = []
        for need in queries if queries is not None else self._dataset.queries:
            matches = finder.match_resources(need, alpha=config.alpha)
            experts = finder.rank_matches(matches, config=config)
            ranking = tuple(e.candidate_id for e in experts)
            relevant = ground_truth.experts(need.domain)
            gains = {
                pid: float(ground_truth.likert(pid, need.domain))
                for pid in self._dataset.person_ids
                if pid in relevant
            }
            outcomes.append(
                QueryOutcome(
                    need=need,
                    ranking=ranking,
                    relevant=relevant,
                    gains=gains,
                    matched_resources=len(matches),
                )
            )
        return EvaluationResult(outcomes)
