"""Serialize/deserialize whole evaluation datasets.

A dataset directory holds:

* ``meta.jsonl`` — scale, seed, population (with latent state), and the
  person → platform-profile mapping;
* ``graph_<platform>.jsonl.gz`` — the three crawled platform graphs;
* ``graph_all.jsonl.gz`` — the merged graph;
* ``corpus.jsonl.gz`` — the analyzed corpus.

Loading rebuilds the remaining pieces (knowledge base, analyzer, ground
truth, queries) deterministically from code — they are functions of the
stored state, not state themselves. Platform stores and the synthetic
web are not persisted: they are only needed to *generate* the graphs,
which are stored already crawled.
"""

from __future__ import annotations

import pathlib
from collections.abc import Iterator
from typing import Any

from repro.entity.annotator import EntityAnnotator
from repro.index.analyzer import ResourceAnalyzer
from repro.socialgraph.metamodel import Platform
from repro.synthetic.dataset import DatasetScale, EvaluationDataset
from repro.synthetic.ground_truth import GroundTruth
from repro.synthetic.network_builder import BuiltNetworks
from repro.synthetic.population import Person
from repro.synthetic.queries import paper_queries
from repro.synthetic.seeds import build_knowledge_base
from repro.storage.corpus_io import load_corpus, save_corpus
from repro.storage.graph_io import load_graph, save_graph
from repro.storage.jsonl import StorageFormatError, read_records, write_records
from repro.textproc.pipeline import TextPipeline

META_KIND = "dataset-meta"


def _person_record(person: Person) -> dict:
    return {
        "type": "person",
        "id": person.person_id,
        "name": person.name,
        "expertise": person.expertise,
        "interest": person.interest,
        "exposure": person.exposure,
        "activity": person.activity,
    }


def save_dataset(dataset: EvaluationDataset, directory: str | pathlib.Path) -> None:
    """Write *dataset* under *directory* (created if missing)."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    def meta_records() -> Iterator[dict[str, Any]]:
        yield {
            "type": "dataset",
            "scale": dataset.scale.value,
            "seed": dataset.seed,
        }
        for person in dataset.people:
            yield _person_record(person)
        for person_id, platforms in dataset.networks.profile_ids.items():
            yield {
                "type": "profiles",
                "person": person_id,
                "map": {p.value: pid for p, pid in platforms.items()},
            }

    write_records(directory / "meta.jsonl", META_KIND, meta_records())
    for platform, graph in dataset.graphs.items():
        save_graph(graph, directory / f"graph_{platform.value}.jsonl.gz")
    save_graph(dataset.merged_graph, directory / "graph_all.jsonl.gz")
    save_corpus(dataset.corpus, directory / "corpus.jsonl.gz")


def load_dataset(directory: str | pathlib.Path) -> EvaluationDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    directory = pathlib.Path(directory)
    scale: DatasetScale | None = None
    seed: int | None = None
    people: list[Person] = []
    profile_ids: dict[str, dict[Platform, str]] = {}
    for record in read_records(directory / "meta.jsonl", META_KIND):
        rtype = record.get("type")
        if rtype == "dataset":
            scale = DatasetScale(record["scale"])
            seed = record["seed"]
        elif rtype == "person":
            people.append(
                Person(
                    person_id=record["id"],
                    name=record["name"],
                    expertise={d: int(v) for d, v in record["expertise"].items()},
                    interest=record["interest"],
                    exposure=record["exposure"],
                    activity=record["activity"],
                )
            )
        elif rtype == "profiles":
            profile_ids[record["person"]] = {
                Platform(p): pid for p, pid in record["map"].items()
            }
        else:
            raise StorageFormatError(f"unknown meta record type {rtype!r}")
    if scale is None or seed is None:
        raise StorageFormatError(f"{directory}: meta.jsonl missing dataset record")

    graphs = {
        platform: load_graph(directory / f"graph_{platform.value}.jsonl.gz")
        for platform in Platform
    }
    merged = load_graph(directory / "graph_all.jsonl.gz")
    corpus = load_corpus(directory / "corpus.jsonl.gz")

    kb = build_knowledge_base()
    analyzer = ResourceAnalyzer(TextPipeline(), EntityAnnotator(kb))
    # platform stores/web are generation-time artifacts; a loaded dataset
    # carries the crawled graphs only
    networks = BuiltNetworks(stores={}, web=None, profile_ids=profile_ids, people=people)
    return EvaluationDataset(
        scale=scale,
        seed=seed,
        people=people,
        networks=networks,
        graphs=graphs,
        merged_graph=merged,
        knowledge_base=kb,
        analyzer=analyzer,
        corpus=corpus,
        ground_truth=GroundTruth(people),
        queries=paper_queries(),
    )
