"""Serialize/deserialize analyzed corpora (node id → AnalyzedResource).

The corpus is the most expensive artifact of a dataset build (stemming
and entity annotation over every node), so caching it pays the most.
"""

from __future__ import annotations

import pathlib
from collections.abc import Iterator, Mapping
from typing import Any

from repro.index.analyzer import AnalyzedResource
from repro.storage.jsonl import read_records, write_records

KIND = "analyzed-corpus"


def save_corpus(
    corpus: Mapping[str, AnalyzedResource], path: str | pathlib.Path
) -> int:
    """Write *corpus* to *path*; returns the record count."""

    def records() -> Iterator[dict[str, Any]]:
        for node_id, analysis in corpus.items():
            yield {
                "id": node_id,
                "lang": analysis.language,
                "terms": analysis.term_counts,
                # JSON has no tuples: store count and dScore as a pair
                "entities": {
                    uri: [count, d_score]
                    for uri, (count, d_score) in analysis.entity_counts.items()
                },
            }

    return write_records(path, KIND, records())


def load_corpus(path: str | pathlib.Path) -> dict[str, AnalyzedResource]:
    """Load a corpus previously written by :func:`save_corpus`."""
    corpus: dict[str, AnalyzedResource] = {}
    for record in read_records(path, KIND):
        corpus[record["id"]] = AnalyzedResource(
            doc_id=record["id"],
            language=record["lang"],
            term_counts={t: int(c) for t, c in record["terms"].items()},
            entity_counts={
                uri: (int(pair[0]), float(pair[1]))
                for uri, pair in record["entities"].items()
            },
        )
    return corpus
