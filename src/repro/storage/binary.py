"""Binary section containers: raw little-endian buffers, mmap-ed on load.

The JSONL formats re-parse and re-intern every posting on open; at
serving scale that turns every process start (and every worker) into a
full collection scan holding a private copy of the postings. This module
provides the storage layer of snapshot format v3: one file holds many
named **sections**, each a raw little-endian buffer of a declared dtype,
and readers ``mmap`` the file and hand out zero-copy views — so open
cost is O(header + vocabulary), and N processes mapping one snapshot
share a single page-cache copy of the heavy posting columns.

File layout::

    header (32 bytes, little-endian):
        magic           8s   b"RPROBIN3"
        version         u32  container version (1)
        toc length      u32  bytes of the JSON table of contents
        file size       u64  total file length (O(1) truncation check)
        checksum        u32  crc32 of everything after the header
        (4 pad bytes)
    toc (UTF-8 JSON, zero-padded to an 8-byte boundary):
        {"sections": [{"name": ..., "dtype": "q"|"d"|"B",
                       "offset": ..., "length": ...}, ...]}
    payload: the section buffers, each 8-byte aligned

Section dtypes: ``"q"`` (int64), ``"d"`` (float64), ``"B"`` (raw bytes,
e.g. a UTF-8 string blob). Offsets are absolute file offsets; lengths
are bytes. Buffers are always written little-endian; on the (rare)
big-endian host the writer byteswaps a copy on the way out and the
reader returns byteswapped ``array`` copies instead of zero-copy views.

Strings are stored as a pair of sections — ``<name>`` (concatenated
UTF-8 blob) plus ``<name>#off`` (int64 byte offsets, ``n + 1`` entries)
— via :func:`pack_strings` / :meth:`MappedSections.strings`.

Writes are **atomic**: the file is assembled in a same-directory
temporary file, flushed and fsynced, then ``os.replace``-d into place
(and the directory entry fsynced), so a crash mid-write can never leave
a partially-written file under the final name.

Readers validate magic, container version, declared vs actual file
size, TOC shape, and the checksum, raising
:class:`~repro.storage.jsonl.StorageFormatError` naming the offending
path — truncations and bit flips are loud, never a silently-wrong
index.
"""

from __future__ import annotations

import contextlib
import json
import mmap
import os
import pathlib
import struct
import sys
import tempfile
import zlib
from array import array
from collections.abc import Iterable, Sequence
from typing import cast

from repro.storage.jsonl import StorageFormatError
from repro.storage.sections import offsets_name

MAGIC = b"RPROBIN3"
CONTAINER_VERSION = 1

_HEADER = struct.Struct("<8sIIQI4x")  # magic, version, toc_len, size, crc32
HEADER_SIZE = _HEADER.size

#: section dtypes: int64 / float64 / raw bytes
_DTYPES = ("q", "d", "B")

_LITTLE_ENDIAN = sys.byteorder == "little"


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _fsync_directory(directory: pathlib.Path) -> None:
    """Flush a directory entry (rename durability); best-effort on
    platforms whose directories cannot be opened."""
    with contextlib.suppress(OSError):
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def encode_values(dtype: str, data: object) -> bytes:
    """Encode *data* as the little-endian bytes of a *dtype* section.

    Accepts ``bytes``/``bytearray``/``memoryview`` (taken as already
    little-endian — e.g. a slice of a mapped section), ``array``
    instances, or any iterable of numbers.
    """
    if dtype not in _DTYPES:
        raise ValueError(f"unknown section dtype {dtype!r}")
    if isinstance(data, (bytes, bytearray)):
        return bytes(data)
    if isinstance(data, memoryview):
        return bytes(data)
    if dtype == "B":
        raise TypeError("blob sections take bytes-like data")
    if isinstance(data, array) and data.typecode in ("q", "l", "d"):
        values = data
        if dtype == "q" and values.itemsize != 8:
            values = array("q", values)
    elif isinstance(data, Iterable):
        items = cast("Iterable[int] | Iterable[float]", data)
        values = array("q", items) if dtype == "q" else array("d", items)
    else:
        raise TypeError(
            f"cannot encode {type(data).__name__} as a {dtype!r} section"
        )
    if not _LITTLE_ENDIAN:
        values = array(values.typecode, values)
        values.byteswap()
    return values.tobytes()


def pack_strings(
    name: str, strings: Iterable[str]
) -> list[tuple[str, str, bytes]]:
    """The two sections encoding a string list: ``<name>`` (UTF-8 blob)
    and ``<name>#off`` (``n + 1`` int64 byte offsets into the blob)."""
    blob = bytearray()
    offsets = array("q", [0])
    for text in strings:
        blob += text.encode("utf-8")
        offsets.append(len(blob))
    return [
        (offsets_name(name), "q", encode_values("q", offsets)),
        (name, "B", bytes(blob)),
    ]


def write_sections(
    path: str | pathlib.Path,
    sections: Sequence[tuple[str, str, object]],
) -> None:
    """Atomically write a section container to *path*.

    *sections* is a sequence of ``(name, dtype, data)`` triples (see
    :func:`encode_values` for accepted data shapes). Names must be
    unique. The write goes to a same-directory temporary file, is
    flushed and fsynced, and is then renamed over *path*.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)

    encoded: list[tuple[str, str, bytes]] = []
    seen: set[str] = set()
    for name, dtype, data in sections:
        if name in seen:
            raise ValueError(f"duplicate section name {name!r}")
        seen.add(name)
        encoded.append((name, dtype, encode_values(dtype, data)))

    # lay out the payload: TOC length depends on offsets, offsets depend
    # on the TOC length — fix the TOC size with a first pass, then pad
    def toc_bytes(payload_start: int) -> bytes:
        offset = payload_start
        entries = []
        for name, dtype, data in encoded:
            entries.append(
                {"name": name, "dtype": dtype, "offset": offset, "length": len(data)}
            )
            offset += _align8(len(data))
        return json.dumps({"sections": entries}, separators=(",", ":")).encode(
            "utf-8"
        )

    toc_len = _align8(len(toc_bytes(HEADER_SIZE)))
    while True:  # offsets widen with the TOC itself; iterate to a fixpoint
        toc = toc_bytes(HEADER_SIZE + toc_len)
        if len(toc) <= toc_len:
            break
        toc_len = _align8(len(toc))
    toc = toc.ljust(toc_len, b"\0")

    body = bytearray(toc)
    for _name, _dtype, data in encoded:
        body += data
        body += b"\0" * (_align8(len(data)) - len(data))
    file_size = HEADER_SIZE + len(body)
    header = _HEADER.pack(
        MAGIC, CONTAINER_VERSION, toc_len, file_size, zlib.crc32(body)
    )

    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(header)
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    _fsync_directory(path.parent)


class MappedSections:
    """A section container mmap-ed read-only.

    :meth:`array` and :meth:`blob` return zero-copy ``memoryview``s over
    the mapping (int64 / float64 casts for numeric sections), so slices
    handed to query engines share the OS page cache across processes.
    The object must outlive every view taken from it; it holds the map
    open for its own lifetime (dropping all references releases it).
    """

    def __init__(
        self,
        path: pathlib.Path,
        buffer: mmap.mmap,
        toc: dict[str, tuple[str, int, int]],
    ):
        self._path = path
        self._mmap = buffer
        self._view = memoryview(buffer)
        self._toc = toc

    @classmethod
    def open(cls, path: str | pathlib.Path) -> "MappedSections":
        """Map *path* and validate header, size, TOC, and checksum."""
        path = pathlib.Path(path)
        try:
            with open(path, "rb") as fh:
                try:
                    buffer = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
                except ValueError as exc:  # zero-length file cannot be mapped
                    raise StorageFormatError(f"{path}: empty file") from exc
        except OSError as exc:
            if isinstance(exc, FileNotFoundError):
                raise
            raise StorageFormatError(f"{path}: unreadable: {exc}") from exc
        try:
            return cls._validate(path, buffer)
        except BaseException:
            buffer.close()
            raise

    @classmethod
    def _validate(cls, path: pathlib.Path, buffer: mmap.mmap) -> "MappedSections":
        size = len(buffer)
        if size < HEADER_SIZE:
            raise StorageFormatError(f"{path}: truncated header ({size} bytes)")
        magic, version, toc_len, declared, checksum = _HEADER.unpack_from(buffer, 0)
        if magic != MAGIC:
            raise StorageFormatError(f"{path}: not a repro binary section file")
        if version != CONTAINER_VERSION:
            raise StorageFormatError(
                f"{path}: unsupported container version {version}"
            )
        if declared != size:
            raise StorageFormatError(
                f"{path}: file is {size} bytes, header declares {declared} "
                f"(truncated or overwritten)"
            )
        if HEADER_SIZE + toc_len > size:
            raise StorageFormatError(f"{path}: table of contents exceeds file")
        if zlib.crc32(memoryview(buffer)[HEADER_SIZE:]) != checksum:
            raise StorageFormatError(
                f"{path}: checksum mismatch (corrupted content)"
            )
        try:
            parsed = json.loads(
                bytes(memoryview(buffer)[HEADER_SIZE : HEADER_SIZE + toc_len])
                .rstrip(b"\0")
                .decode("utf-8")
            )
            entries = parsed["sections"]
            toc: dict[str, tuple[str, int, int]] = {}
            for entry in entries:
                name, dtype = entry["name"], entry["dtype"]
                offset, length = int(entry["offset"]), int(entry["length"])
                if dtype not in _DTYPES:
                    raise ValueError(f"unknown dtype {dtype!r}")
                if name in toc:
                    raise ValueError(f"duplicate section {name!r}")
                if offset < HEADER_SIZE + toc_len or offset + length > size:
                    raise ValueError(f"section {name!r} outside file bounds")
                toc[name] = (dtype, offset, length)
        except (KeyError, TypeError, ValueError, UnicodeDecodeError) as exc:
            raise StorageFormatError(
                f"{path}: malformed table of contents: {exc}"
            ) from exc
        return cls(path, buffer, toc)

    # -- access --------------------------------------------------------------------

    @property
    def path(self) -> pathlib.Path:
        return self._path

    def names(self) -> tuple[str, ...]:
        return tuple(self._toc)

    def _section(self, name: str, expected: tuple[str, ...]) -> tuple[str, int, int]:
        entry = self._toc.get(name)
        if entry is None:
            raise StorageFormatError(f"{self._path}: missing section {name!r}")
        if entry[0] not in expected:
            raise StorageFormatError(
                f"{self._path}: section {name!r} has dtype {entry[0]!r}, "
                f"expected {' or '.join(expected)}"
            )
        return entry

    def array(self, name: str) -> "memoryview | array":
        """The numeric section *name* as a zero-copy int64/float64 view
        (a byteswapped ``array`` copy on big-endian hosts)."""
        dtype, offset, length = self._section(name, ("q", "d"))
        if length % 8:
            raise StorageFormatError(
                f"{self._path}: section {name!r} length {length} not a "
                f"multiple of 8"
            )
        view = self._view[offset : offset + length]
        if _LITTLE_ENDIAN:
            return view.cast(dtype)
        values = array(dtype, bytes(view))
        values.byteswap()
        return values

    def blob(self, name: str) -> memoryview:
        """The raw-bytes section *name* as a zero-copy view."""
        _dtype, offset, length = self._section(name, ("B",))
        return self._view[offset : offset + length]

    def strings(self, name: str) -> list[str]:
        """Decode the string list packed by :func:`pack_strings`."""
        offsets = self.array(offsets_name(name))
        blob = self.blob(name)
        if len(offsets) == 0 or offsets[0] != 0 or offsets[-1] != len(blob):
            raise StorageFormatError(
                f"{self._path}: string section {name!r} offsets disagree "
                f"with its blob"
            )
        try:
            return [
                str(blob[offsets[i] : offsets[i + 1]], "utf-8")
                for i in range(len(offsets) - 1)
            ]
        except (UnicodeDecodeError, ValueError) as exc:
            raise StorageFormatError(
                f"{self._path}: string section {name!r} is not valid UTF-8"
            ) from exc

    def close(self) -> None:
        """Release the mapping. Views handed out become invalid; only
        call once nothing references them (tests, tooling)."""
        self._view.release()
        self._mmap.close()
