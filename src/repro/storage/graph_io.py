"""Serialize/deserialize :class:`SocialGraph` instances.

Record kinds, in write order (nodes strictly before edges so the loader
can validate references as it goes):

* ``meta`` — platform of the graph (or null for a merged graph);
* ``profile`` / ``resource`` / ``container`` — nodes;
* ``friend`` / ``follows`` — social edges;
* ``direct`` — profile → resource relations with their kind;
* ``member`` — profile → container membership;
* ``contains`` — container → resource containment.
"""

from __future__ import annotations

import pathlib
from collections.abc import Iterator
from typing import Any

from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import (
    Platform,
    RelationKind,
    Resource,
    ResourceContainer,
    SocialRelation,
    UserProfile,
)
from repro.storage.jsonl import StorageFormatError, read_records, write_records

KIND = "social-graph"


def _graph_records(graph: SocialGraph) -> Iterator[dict[str, Any]]:
    yield {
        "type": "meta",
        "platform": graph.platform.value if graph.platform else None,
    }
    for profile in graph.profiles():
        yield {
            "type": "profile",
            "id": profile.profile_id,
            "platform": profile.platform.value,
            "name": profile.display_name,
            "text": profile.text,
            "urls": list(profile.urls),
            "person": profile.person_id,
        }
    for resource in graph.resources():
        yield {
            "type": "resource",
            "id": resource.resource_id,
            "platform": resource.platform.value,
            "text": resource.text,
            "urls": list(resource.urls),
            "language": resource.language,
            "ts": resource.timestamp,
        }
    for container in graph.containers():
        yield {
            "type": "container",
            "id": container.container_id,
            "platform": container.platform.value,
            "name": container.name,
            "text": container.text,
            "urls": list(container.urls),
        }
    for profile in graph.profiles():
        pid = profile.profile_id
        for friend in graph.friends_of(pid):
            if pid < friend:  # each friendship once
                yield {"type": "friend", "a": pid, "b": friend}
        for followed in graph.followed_by(pid):
            yield {"type": "follows", "a": pid, "b": followed}
        for rid, kind in graph.direct_resources(pid):
            yield {"type": "direct", "p": pid, "r": rid, "kind": kind.value}
        for cid in graph.containers_of(pid):
            yield {"type": "member", "p": pid, "c": cid}
    for container in graph.containers():
        for rid in graph.resources_in(container.container_id):
            yield {"type": "contains", "c": container.container_id, "r": rid}


def save_graph(graph: SocialGraph, path: str | pathlib.Path) -> int:
    """Write *graph* to *path*; returns the record count."""
    return write_records(path, KIND, _graph_records(graph))


def load_graph(path: str | pathlib.Path) -> SocialGraph:
    """Load a graph previously written by :func:`save_graph`."""
    graph: SocialGraph | None = None
    for record in read_records(path, KIND):
        rtype = record.get("type")
        if rtype == "meta":
            platform = Platform(record["platform"]) if record["platform"] else None
            graph = SocialGraph(platform)
            continue
        if graph is None:
            raise StorageFormatError(f"{path}: records before meta header")
        if rtype == "profile":
            graph.add_profile(
                UserProfile(
                    profile_id=record["id"],
                    platform=Platform(record["platform"]),
                    display_name=record["name"],
                    text=record["text"],
                    urls=tuple(record["urls"]),
                    person_id=record["person"],
                )
            )
        elif rtype == "resource":
            graph.add_resource(
                Resource(
                    resource_id=record["id"],
                    platform=Platform(record["platform"]),
                    text=record["text"],
                    urls=tuple(record["urls"]),
                    language=record["language"],
                    timestamp=record["ts"],
                )
            )
        elif rtype == "container":
            graph.add_container(
                ResourceContainer(
                    container_id=record["id"],
                    platform=Platform(record["platform"]),
                    name=record["name"],
                    text=record["text"],
                    urls=tuple(record["urls"]),
                )
            )
        elif rtype == "friend":
            graph.add_social_relation(
                SocialRelation(record["a"], record["b"], RelationKind.FRIENDSHIP)
            )
        elif rtype == "follows":
            graph.add_social_relation(
                SocialRelation(record["a"], record["b"], RelationKind.FOLLOWS)
            )
        elif rtype == "direct":
            graph.link_resource(record["p"], record["r"], RelationKind(record["kind"]))
        elif rtype == "member":
            graph.relate_to_container(record["p"], record["c"])
        elif rtype == "contains":
            graph.put_in_container(record["c"], record["r"])
        else:
            raise StorageFormatError(f"{path}: unknown record type {rtype!r}")
    if graph is None:
        raise StorageFormatError(f"{path}: missing meta record")
    return graph
