"""Finder index snapshots: persist a built :class:`ExpertFinder`.

Building a finder is dominated by evidence gathering and text/entity
analysis; serving deployments want to pay that once, persist the result,
and warm-start query processes from disk (cf. production expert-mining
systems, which serve ranked top-k from precomputed per-candidate
indexes). A snapshot directory captures everything query evaluation
needs — the two inverted indexes, the evidence relation, and the build
configuration — and nothing generation-time:

``meta.jsonl``
    snapshot version, index mode, the
    :class:`~repro.core.config.FinderConfig`, the indexed-resource
    count, and per-candidate evidence counts;
``term_index.jsonl.gz``
    indexed doc ids, then one record per term with its postings list;
``entity_index.jsonl.gz``
    indexed doc ids, then one record per entity with its postings list;
``evidence.jsonl.gz``
    one record per evidence resource with its supporting
    ``(candidate, distance)`` pairs.

A **segmented** finder (``index_mode="segmented"``) replaces the three
index/evidence files with a per-segment layout, so a loaded finder
restores the exact segment structure instead of recompiling a merged
monolith:

``segments.jsonl``
    the segment manifest: one header with the seal threshold and
    segment count, then one entry per sealed segment (id, file name,
    doc/resource counts) and an optional entry for the unsealed write
    buffer;
``segment-NNNN.jsonl.gz`` / ``buffer.jsonl.gz``
    each segment's slice in one file: its indexed doc ids, term and
    entity postings, and evidence rows (the same record shapes as the
    monolithic files).

Postings lists are stored in index order, so a loaded finder repeats
the builder's float summation order exactly — rankings round-trip
byte-identically. The text analyzer is *not* persisted (it is code, not
state); :func:`load_finder` takes it as an argument.
"""

from __future__ import annotations

import pathlib
from collections.abc import Iterator
from typing import Any

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.index.analyzer import ResourceAnalyzer
from repro.index.entity_index import EntityIndex, EntityPosting
from repro.index.inverted import InvertedIndex, Posting
from repro.index.segments import Segment, SegmentedIndex, _WriteBuffer
from repro.index.statistics import CollectionStatistics
from repro.index.vsm import VectorSpaceRetriever
from repro.storage.jsonl import StorageFormatError, read_records, write_records

#: bump when the snapshot directory layout or record shapes change;
#: loaders refuse mismatched snapshots instead of guessing
#: (2: ``index_mode`` in the meta + the segmented manifest layout)
SNAPSHOT_VERSION = 2

META_KIND = "finder-snapshot-meta"
TERM_INDEX_KIND = "finder-term-index"
ENTITY_INDEX_KIND = "finder-entity-index"
EVIDENCE_KIND = "finder-evidence"
MANIFEST_KIND = "finder-segment-manifest"
SEGMENT_KIND = "finder-segment"

_META_FILE = "meta.jsonl"
_TERM_FILE = "term_index.jsonl.gz"
_ENTITY_FILE = "entity_index.jsonl.gz"
_EVIDENCE_FILE = "evidence.jsonl.gz"
_MANIFEST_FILE = "segments.jsonl"
_BUFFER_FILE = "buffer.jsonl.gz"

_INDEX_MODES = ("monolithic", "segmented")


def _segment_file(segment_id: int) -> str:
    return f"segment-{segment_id:04d}.jsonl.gz"

_CONFIG_FIELDS = (
    "alpha",
    "window",
    "max_distance",
    "weight_interval",
    "include_friends",
    "idf_exponent",
    "normalize",
)


def save_finder(finder: ExpertFinder, directory: str | pathlib.Path) -> None:
    """Write *finder*'s snapshot under *directory* (created if missing).

    A monolithic finder writes the three whole-collection files; a
    segmented finder writes the segment manifest plus one file per
    sealed segment (and one for a non-empty write buffer), preserving
    the live segment structure exactly.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    config = finder.config

    def meta_records() -> Iterator[dict[str, Any]]:
        yield {
            "type": "snapshot",
            "snapshot_version": SNAPSHOT_VERSION,
            "index_mode": finder.index_mode,
        }
        record: dict[str, Any] = {"type": "config"}
        for name in _CONFIG_FIELDS:
            value = getattr(config, name)
            record[name] = list(value) if isinstance(value, tuple) else value
        yield record
        yield {"type": "counts", "indexed": finder.indexed_resources}
        for cid in sorted(finder.evidence_counts):
            yield {
                "type": "candidate",
                "id": cid,
                "evidence": finder.evidence_counts[cid],
            }

    write_records(directory / _META_FILE, META_KIND, meta_records())
    if finder.index_mode == "segmented":
        _save_segmented(finder.segmented_index, directory)
        return
    retriever = finder.retriever

    def term_records() -> Iterator[dict[str, Any]]:
        yield {"type": "docs", "ids": sorted(retriever.term_index.doc_ids())}
        for term, postings in retriever.term_index.items():
            yield {
                "type": "term",
                "t": term,
                "p": [[p.doc_id, p.term_frequency] for p in postings],
            }

    def entity_records() -> Iterator[dict[str, Any]]:
        yield {"type": "docs", "ids": sorted(retriever.entity_index.doc_ids())}
        for uri, postings in retriever.entity_index.items():
            yield {
                "type": "entity",
                "e": uri,
                "p": [
                    [p.doc_id, p.entity_frequency, p.d_score] for p in postings
                ],
            }

    def evidence_records() -> Iterator[dict[str, Any]]:
        for doc_id, supporters in finder.evidence_of.items():
            yield {
                "type": "evidence",
                "doc": doc_id,
                "s": [[cid, distance] for cid, distance in supporters],
            }

    write_records(directory / _TERM_FILE, TERM_INDEX_KIND, term_records())
    write_records(directory / _ENTITY_FILE, ENTITY_INDEX_KIND, entity_records())
    write_records(directory / _EVIDENCE_FILE, EVIDENCE_KIND, evidence_records())


def _slice_records(
    term_index: InvertedIndex,
    entity_index: EntityIndex,
    evidence: Any,
) -> Iterator[dict[str, Any]]:
    """One segment's (or the buffer's) records: docs, postings, evidence
    — the monolithic record shapes, scoped to the slice."""
    yield {"type": "docs", "ids": sorted(term_index.doc_ids())}
    for term, postings in term_index.items():
        yield {
            "type": "term",
            "t": term,
            "p": [[p.doc_id, p.term_frequency] for p in postings],
        }
    for uri, postings in entity_index.items():
        yield {
            "type": "entity",
            "e": uri,
            "p": [[p.doc_id, p.entity_frequency, p.d_score] for p in postings],
        }
    for doc_id, supporters in evidence.items():
        yield {
            "type": "evidence",
            "doc": doc_id,
            "s": [[cid, distance] for cid, distance in supporters],
        }


def _save_segmented(segmented: SegmentedIndex, directory: pathlib.Path) -> None:
    segments = segmented.iter_segments()
    buffer = segmented.write_buffer

    def manifest_records() -> Iterator[dict[str, Any]]:
        yield {
            "type": "manifest",
            "seal_threshold": segmented.seal_threshold,
            "fanout": segmented.fanout,
            "segments": len(segments),
        }
        for segment in segments:
            yield {
                "type": "segment",
                "id": segment.segment_id,
                "file": _segment_file(segment.segment_id),
                "docs": segment.document_count,
                "resources": segment.resource_count,
            }
        if buffer.resource_count:
            yield {
                "type": "buffer",
                "file": _BUFFER_FILE,
                "docs": buffer.document_count,
                "resources": buffer.resource_count,
            }

    write_records(directory / _MANIFEST_FILE, MANIFEST_KIND, manifest_records())
    for segment in segments:
        write_records(
            directory / _segment_file(segment.segment_id),
            SEGMENT_KIND,
            _slice_records(segment.term_index, segment.entity_index, segment.evidence),
        )
    if buffer.resource_count:
        write_records(
            directory / _BUFFER_FILE,
            SEGMENT_KIND,
            _slice_records(buffer.term_index, buffer.entity_index, buffer.evidence),
        )


def _load_meta(path: pathlib.Path) -> tuple[FinderConfig, int, dict[str, int], str]:
    version: int | None = None
    index_mode: str | None = None
    config: FinderConfig | None = None
    indexed: int | None = None
    evidence_counts: dict[str, int] = {}
    for record in read_records(path, META_KIND):
        rtype = record.get("type")
        if rtype == "snapshot":
            version = record.get("snapshot_version")
            if version != SNAPSHOT_VERSION:
                raise StorageFormatError(
                    f"{path}: unsupported snapshot version {version!r}"
                )
            index_mode = record.get("index_mode", "monolithic")
            if index_mode not in _INDEX_MODES:
                raise StorageFormatError(
                    f"{path}: unknown index mode {index_mode!r}"
                )
        elif rtype == "config":
            try:
                kwargs = {name: record[name] for name in _CONFIG_FIELDS}
            except KeyError as exc:
                raise StorageFormatError(
                    f"{path}: config record missing field {exc.args[0]!r}"
                ) from exc
            kwargs["weight_interval"] = tuple(kwargs["weight_interval"])
            config = FinderConfig(**kwargs)
        elif rtype == "counts":
            indexed = record["indexed"]
        elif rtype == "candidate":
            evidence_counts[record["id"]] = record["evidence"]
        else:
            raise StorageFormatError(f"{path}: unknown meta record type {rtype!r}")
    if version is None or index_mode is None or config is None or indexed is None:
        raise StorageFormatError(f"{path}: incomplete snapshot metadata")
    return config, indexed, evidence_counts, index_mode


def _load_term_index(path: pathlib.Path) -> InvertedIndex:
    doc_ids: list[str] | None = None
    postings: dict[str, list[Posting]] = {}
    for record in read_records(path, TERM_INDEX_KIND):
        rtype = record.get("type")
        if rtype == "docs":
            doc_ids = record["ids"]
        elif rtype == "term":
            postings[record["t"]] = [
                Posting(doc_id, frequency) for doc_id, frequency in record["p"]
            ]
        else:
            raise StorageFormatError(f"{path}: unknown record type {rtype!r}")
    if doc_ids is None:
        raise StorageFormatError(f"{path}: missing docs record")
    return InvertedIndex.restore(doc_ids, postings)


def _load_entity_index(path: pathlib.Path) -> EntityIndex:
    doc_ids: list[str] | None = None
    postings: dict[str, list[EntityPosting]] = {}
    for record in read_records(path, ENTITY_INDEX_KIND):
        rtype = record.get("type")
        if rtype == "docs":
            doc_ids = record["ids"]
        elif rtype == "entity":
            postings[record["e"]] = [
                EntityPosting(doc_id, frequency, d_score)
                for doc_id, frequency, d_score in record["p"]
            ]
        else:
            raise StorageFormatError(f"{path}: unknown record type {rtype!r}")
    if doc_ids is None:
        raise StorageFormatError(f"{path}: missing docs record")
    return EntityIndex.restore(doc_ids, postings)


def _load_evidence(path: pathlib.Path) -> dict[str, list[tuple[str, int]]]:
    evidence_of: dict[str, list[tuple[str, int]]] = {}
    for record in read_records(path, EVIDENCE_KIND):
        if record.get("type") != "evidence":
            raise StorageFormatError(
                f"{path}: unknown record type {record.get('type')!r}"
            )
        evidence_of[record["doc"]] = [
            (cid, distance) for cid, distance in record["s"]
        ]
    return evidence_of


def _load_slice(
    path: pathlib.Path,
) -> tuple[InvertedIndex, EntityIndex, dict[str, tuple[tuple[str, int], ...]]]:
    """Parse one segment (or buffer) file into restored indexes plus its
    evidence rows, in stored order."""
    doc_ids: list[str] | None = None
    term_postings: dict[str, list[Posting]] = {}
    entity_postings: dict[str, list[EntityPosting]] = {}
    evidence: dict[str, tuple[tuple[str, int], ...]] = {}
    for record in read_records(path, SEGMENT_KIND):
        rtype = record.get("type")
        if rtype == "docs":
            doc_ids = record["ids"]
        elif rtype == "term":
            term_postings[record["t"]] = [
                Posting(doc_id, frequency) for doc_id, frequency in record["p"]
            ]
        elif rtype == "entity":
            entity_postings[record["e"]] = [
                EntityPosting(doc_id, frequency, d_score)
                for doc_id, frequency, d_score in record["p"]
            ]
        elif rtype == "evidence":
            evidence[record["doc"]] = tuple(
                (cid, distance) for cid, distance in record["s"]
            )
        else:
            raise StorageFormatError(f"{path}: unknown record type {rtype!r}")
    if doc_ids is None:
        raise StorageFormatError(f"{path}: missing docs record")
    term_index = InvertedIndex.restore(doc_ids, term_postings)
    entity_index = EntityIndex.restore(doc_ids, entity_postings)
    return term_index, entity_index, evidence


def _load_segmented(
    directory: pathlib.Path, config: FinderConfig
) -> tuple[SegmentedIndex, dict[str, list[tuple[str, int]]]]:
    """Restore a segmented index from its manifest + per-segment files,
    without merging anything: per-segment postings orders, the segment
    order, and the buffered tail all survive the round trip."""
    manifest_path = directory / _MANIFEST_FILE
    header: dict[str, Any] | None = None
    entries: list[dict[str, Any]] = []
    buffer_entry: dict[str, Any] | None = None
    for record in read_records(manifest_path, MANIFEST_KIND):
        rtype = record.get("type")
        if rtype == "manifest":
            header = record
        elif rtype == "segment":
            entries.append(record)
        elif rtype == "buffer":
            buffer_entry = record
        else:
            raise StorageFormatError(
                f"{manifest_path}: unknown manifest record type {rtype!r}"
            )
    if header is None:
        raise StorageFormatError(f"{manifest_path}: missing manifest header")
    if header["segments"] != len(entries):
        raise StorageFormatError(
            f"{manifest_path}: manifest declares {header['segments']} "
            f"segment(s) but lists {len(entries)}"
        )

    def load_entry(entry: dict[str, Any], path: pathlib.Path):
        term_index, entity_index, evidence = _load_slice(path)
        if term_index.document_count != entry["docs"]:
            raise StorageFormatError(
                f"{path}: segment holds {term_index.document_count} "
                f"document(s), manifest says {entry['docs']}"
            )
        resources = len(frozenset(evidence) | term_index.doc_ids())
        if resources != entry["resources"]:
            raise StorageFormatError(
                f"{path}: segment holds {resources} resource(s), "
                f"manifest says {entry['resources']}"
            )
        return term_index, entity_index, evidence

    segments = []
    for entry in entries:
        path = directory / entry["file"]
        if not path.is_file():
            raise StorageFormatError(
                f"{manifest_path}: manifest names missing file {entry['file']!r}"
            )
        segments.append((entry["id"], *load_entry(entry, path)))
    buffer = None
    if buffer_entry is not None:
        path = directory / buffer_entry["file"]
        if not path.is_file():
            raise StorageFormatError(
                f"{manifest_path}: manifest names missing file "
                f"{buffer_entry['file']!r}"
            )
        buffer = load_entry(buffer_entry, path)

    segmented = SegmentedIndex.restore(
        config,
        segments,
        buffer,
        seal_threshold=header["seal_threshold"],
        fanout=header.get("fanout", 4),
    )
    evidence_of: dict[str, list[tuple[str, int]]] = {}
    for segment in segmented.iter_segments():
        for doc_id, rows in segment.evidence.items():
            evidence_of[doc_id] = list(rows)
    for doc_id, rows in segmented.write_buffer.evidence.items():
        evidence_of[doc_id] = list(rows)
    return segmented, evidence_of


def load_finder(
    directory: str | pathlib.Path, analyzer: ResourceAnalyzer
) -> ExpertFinder:
    """Load a finder previously written by :func:`save_finder`.

    *analyzer* must be equivalent to the one the finder was built with —
    it analyzes incoming queries (and streamed resources), and the paper
    requires need and resource analysis to be symmetric (Sec. 2.3).
    """
    directory = pathlib.Path(directory)
    try:
        config, indexed, evidence_counts, index_mode = _load_meta(
            directory / _META_FILE
        )
        if index_mode == "segmented":
            segmented, evidence_of = _load_segmented(directory, config)
            if segmented.document_count != indexed:
                raise StorageFormatError(
                    f"{directory}: segments hold {segmented.document_count} "
                    f"indexed document(s), metadata says {indexed}"
                )
            return ExpertFinder(
                analyzer,
                None,
                evidence_of,
                config,
                evidence_counts=evidence_counts,
                indexed_count=indexed,
                segmented=segmented,
            )
        term_index = _load_term_index(directory / _TERM_FILE)
        entity_index = _load_entity_index(directory / _ENTITY_FILE)
        evidence_of = _load_evidence(directory / _EVIDENCE_FILE)
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, StorageFormatError):
            raise
        raise StorageFormatError(f"{directory}: malformed snapshot: {exc}") from exc
    # the builder indexes every resource into both indexes (possibly with
    # empty postings), so diverging doc-id sets mean a corrupt snapshot —
    # and would skew the shared collection-frequency denominators
    if term_index.doc_ids() != entity_index.doc_ids():
        raise StorageFormatError(
            f"{directory}: term and entity indexes disagree on the indexed "
            f"doc ids ({len(term_index.doc_ids())} vs "
            f"{len(entity_index.doc_ids())})"
        )
    retriever = VectorSpaceRetriever(
        term_index,
        entity_index,
        CollectionStatistics(term_index, entity_index),
        idf_exponent=config.idf_exponent,
    )
    finder = ExpertFinder(
        analyzer,
        retriever,
        evidence_of,
        config,
        evidence_counts=evidence_counts,
        indexed_count=indexed,
    )
    # compile the columnar engine now: serving processes warm-start from
    # snapshots, so the first query shouldn't pay compilation — and a
    # snapshot whose evidence can't compile (e.g. out-of-range distance)
    # is rejected at load time rather than at first query
    try:
        finder.query_engine()
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageFormatError(f"{directory}: malformed snapshot: {exc}") from exc
    return finder
