"""Finder index snapshots: persist a built :class:`ExpertFinder`.

Building a finder is dominated by evidence gathering and text/entity
analysis; serving deployments want to pay that once, persist the result,
and warm-start query processes from disk (cf. production expert-mining
systems, which serve ranked top-k from precomputed per-candidate
indexes). A snapshot captures everything query evaluation needs — the
indexes, the evidence relation, and the build configuration — and
nothing generation-time.

Two formats share one directory convention and one loader:

**v3 (binary, the default)** — the serving format. The directory holds a
``CURRENT`` pointer file plus numbered ``gen-NNNNNNN/`` generation
subdirectories; ``CURRENT`` names the one complete generation. Inside a
generation, ``meta.jsonl`` keeps the config/counts records and the
columnar payload lives in mmap-able section containers
(:mod:`repro.storage.binary`): ``index.bin`` + ``engine.bin`` for a
monolithic finder, ``segments.jsonl`` + ``segment-NNNN.bin`` (and
``buffer.bin``) for a segmented one. Loading maps the buffers and builds
the :class:`~repro.index.columnar.ColumnarQueryEngine` (or each
:class:`~repro.index.segments.Segment`) directly over zero-copy
``memoryview`` casts — no JSON parsing, no posting objects, and N
processes opening one snapshot share a single page-cache copy. The
posting-object side (retriever, segment indexes) hydrates lazily, only
if a merge, re-save, or object-path query actually needs it.

A save writes the whole new generation (each file atomically:
temp + fsync + rename), then atomically replaces ``CURRENT``, then
prunes older generations — a crash at *any* instant leaves the previous
``CURRENT`` target intact and loadable.

**jsonl (v2, the debug/interchange format)** — flat line-oriented files
(``meta.jsonl``, ``term_index.jsonl.gz``, …), human-inspectable and
diff-able; write it with ``save_finder(..., snapshot_format="jsonl")``.
Each file is written atomically, but the *set* of files is not staged as
one unit — v3 is the crash-safe format.

Evidence-row order is preserved by both formats, and v3 additionally
stores the engine's own computed float64 weights, so a loaded finder
repeats the builder's float operations exactly — rankings round-trip
byte-identically on every path. Posting order is preserved too, with
one deliberate exception: v3 writes engine and sealed-segment columns
sorted by doc index, alongside the block-max metadata that order makes
possible (``blk#span`` + flattened per-column block sections), so pruned
evaluation works straight off the mmap. Re-sorting a column never moves
a ranking (see :mod:`repro.index.blockmax`), and snapshots written
before the block sections existed still load — their columns are
re-sorted and their maxima recomputed lazily on first pruned use. The text analyzer is *not*
persisted (it is code, not state); :func:`load_finder` takes it as an
argument.
"""

from __future__ import annotations

import contextlib
import functools
import os
import pathlib
import re
import shutil
import tempfile
from array import array
from collections.abc import Callable, Iterator, Mapping, MutableMapping, Sequence
from typing import Any

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.index.analyzer import ResourceAnalyzer
from repro.index.blockmax import compute_blocks
from repro.index.columnar import ColumnarQueryEngine
from repro.index.entity_index import EntityIndex, EntityPosting
from repro.index.inverted import InvertedIndex, Posting
from repro.index.segments import Segment, SegmentedIndex, _WriteBuffer
from repro.index.sharded import (
    GlobalStatistics,
    ShardedIndex,
    ShardIndex,
    partition_candidates,
)
from repro.index.statistics import CollectionStatistics
from repro.index.vsm import VectorSpaceRetriever, entity_weight
from repro.storage import sections as layout
from repro.storage.binary import (
    MappedSections,
    _fsync_directory,
    pack_strings,
    write_sections,
)
from repro.storage.jsonl import StorageFormatError, read_records, write_records

#: bump when the snapshot layout or record shapes change; loaders refuse
#: mismatched snapshots instead of guessing
#: (2: ``index_mode`` + the segmented manifest layout; 3: the binary
#: generation layout — the v2 flat-jsonl layout stays loadable and
#: writable via ``snapshot_format="jsonl"``)
SNAPSHOT_VERSION = 3

#: the version written by (and required in) flat jsonl snapshots
JSONL_SNAPSHOT_VERSION = 2

#: accepted ``snapshot_format`` arguments
SNAPSHOT_FORMATS = ("v3", "jsonl")

META_KIND = "finder-snapshot-meta"
TERM_INDEX_KIND = "finder-term-index"
ENTITY_INDEX_KIND = "finder-entity-index"
EVIDENCE_KIND = "finder-evidence"
MANIFEST_KIND = "finder-segment-manifest"
SEGMENT_KIND = "finder-segment"
SHARD_MANIFEST_KIND = "finder-shard-manifest"

# layout names come from the repro.storage.sections registry (enforced
# by the section-registry lint rule); local aliases keep call sites short
_META_FILE = layout.META_FILE
_TERM_FILE = layout.TERM_FILE
_ENTITY_FILE = layout.ENTITY_FILE
_EVIDENCE_FILE = layout.EVIDENCE_FILE
_MANIFEST_FILE = layout.MANIFEST_FILE
_BUFFER_FILE = layout.BUFFER_FILE

_CURRENT_FILE = layout.CURRENT_FILE
_CURRENT_MAGIC = "repro-snapshot-v3"
_GEN_PATTERN = re.compile(r"gen-(\d{7})")
_INDEX_BIN = layout.INDEX_BIN
_ENGINE_BIN = layout.ENGINE_BIN
_BUFFER_BIN = layout.BUFFER_BIN
_STATS_BIN = layout.STATS_BIN
_EVIDENCE_BIN = layout.EVIDENCE_BIN
_SHARD_MANIFEST_FILE = layout.SHARD_MANIFEST_FILE

_INDEX_MODES = ("monolithic", "segmented", "sharded")

_segment_file = layout.segment_file
_segment_bin = layout.segment_bin
_shard_bin = layout.shard_bin


_CONFIG_FIELDS = (
    "alpha",
    "window",
    "max_distance",
    "weight_interval",
    "include_friends",
    "idf_exponent",
    "normalize",
)

#: flat-layout file names a save may prune when they no longer belong to
#: the snapshot (stale segments after compaction, a drained buffer, or
#: the other format's files after a format switch); only names matching
#: these shapes are ever deleted
_FLAT_V2_NAMES = (_META_FILE, _TERM_FILE, _ENTITY_FILE, _EVIDENCE_FILE,
                  _MANIFEST_FILE, _BUFFER_FILE)
_FLAT_V2_SEGMENT_PATTERN = re.compile(r"segment-\d{4}\.jsonl\.gz")


def save_finder(
    finder: ExpertFinder,
    directory: str | pathlib.Path,
    *,
    snapshot_format: str = "v3",
) -> None:
    """Write *finder*'s snapshot under *directory* (created if missing).

    The default ``"v3"`` format writes a new binary generation and
    atomically repoints ``CURRENT`` at it — re-saving over an existing
    snapshot (either format) is crash-safe: until the final rename the
    previous snapshot loads, after it the new one does, and stale files
    from the previous save are pruned afterwards. ``"jsonl"`` writes the
    flat v2 interchange layout (each file atomic, the file set not).
    """
    if snapshot_format not in SNAPSHOT_FORMATS:
        raise ValueError(
            f"snapshot_format must be one of {SNAPSHOT_FORMATS}, "
            f"got {snapshot_format!r}"
        )
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if snapshot_format == "jsonl":
        _save_jsonl(finder, directory)
    else:
        _save_v3(finder, directory)


def _meta_records(finder: ExpertFinder, version: int) -> Iterator[dict[str, Any]]:
    snapshot_record: dict[str, Any] = {
        "type": "snapshot",
        "snapshot_version": version,
        "index_mode": finder.index_mode,
    }
    if finder.index_mode == "sharded":
        # the candidate partition is recomputed from the sorted candidate
        # records at load time; only the shard count needs persisting
        snapshot_record["shards"] = finder.sharded_index.shard_count
    yield snapshot_record
    config = finder.config
    record: dict[str, Any] = {"type": "config"}
    for name in _CONFIG_FIELDS:
        value = getattr(config, name)
        record[name] = list(value) if isinstance(value, tuple) else value
    yield record
    yield {"type": "counts", "indexed": finder.indexed_resources}
    for cid in sorted(finder.evidence_counts):
        yield {
            "type": "candidate",
            "id": cid,
            "evidence": finder.evidence_counts[cid],
        }


# -- jsonl (v2) writer -------------------------------------------------------------


def _save_jsonl(finder: ExpertFinder, directory: pathlib.Path) -> None:
    if finder.index_mode == "sharded":
        raise ValueError(
            "sharded finders snapshot only in the v3 binary format (the "
            "scatter-pool workers mmap its per-shard section files); "
            "drop snapshot_format='jsonl' or rebuild without shards"
        )
    keep: set[str] = {_META_FILE}
    if finder.index_mode == "segmented":
        keep |= _save_segmented(finder.segmented_index, directory)
    else:
        retriever = finder.retriever

        def term_records() -> Iterator[dict[str, Any]]:
            yield {"type": "docs", "ids": sorted(retriever.term_index.doc_ids())}
            for term, postings in retriever.term_index.items():
                yield {
                    "type": "term",
                    "t": term,
                    "p": [[p.doc_id, p.term_frequency] for p in postings],
                }

        def entity_records() -> Iterator[dict[str, Any]]:
            yield {"type": "docs", "ids": sorted(retriever.entity_index.doc_ids())}
            for uri, postings in retriever.entity_index.items():
                yield {
                    "type": "entity",
                    "e": uri,
                    "p": [
                        [p.doc_id, p.entity_frequency, p.d_score] for p in postings
                    ],
                }

        def evidence_records() -> Iterator[dict[str, Any]]:
            for doc_id, supporters in finder.evidence_of.items():
                yield {
                    "type": "evidence",
                    "doc": doc_id,
                    "s": [[cid, distance] for cid, distance in supporters],
                }

        write_records(directory / _TERM_FILE, TERM_INDEX_KIND, term_records())
        write_records(directory / _ENTITY_FILE, ENTITY_INDEX_KIND, entity_records())
        write_records(directory / _EVIDENCE_FILE, EVIDENCE_KIND, evidence_records())
        keep |= {_TERM_FILE, _ENTITY_FILE, _EVIDENCE_FILE}
    # data files first, meta last: a fresh snapshot torn mid-save lacks
    # its meta file and is rejected cleanly at load
    write_records(
        directory / _META_FILE,
        META_KIND,
        _meta_records(finder, JSONL_SNAPSHOT_VERSION),
    )
    _prune_snapshot_files(directory, keep)


def _slice_records(
    term_index: InvertedIndex,
    entity_index: EntityIndex,
    evidence: Any,
) -> Iterator[dict[str, Any]]:
    """One segment's (or the buffer's) records: docs, postings, evidence
    — the monolithic record shapes, scoped to the slice."""
    yield {"type": "docs", "ids": sorted(term_index.doc_ids())}
    for term, postings in term_index.items():
        yield {
            "type": "term",
            "t": term,
            "p": [[p.doc_id, p.term_frequency] for p in postings],
        }
    for uri, postings in entity_index.items():
        yield {
            "type": "entity",
            "e": uri,
            "p": [[p.doc_id, p.entity_frequency, p.d_score] for p in postings],
        }
    for doc_id, supporters in evidence.items():
        yield {
            "type": "evidence",
            "doc": doc_id,
            "s": [[cid, distance] for cid, distance in supporters],
        }


def _manifest_records(
    segmented: SegmentedIndex,
    segments: tuple[Segment, ...],
    buffer: _WriteBuffer,
    segment_name: Callable[[int], str],
    buffer_name: str,
) -> Iterator[dict[str, Any]]:
    yield {
        "type": "manifest",
        "seal_threshold": segmented.seal_threshold,
        "fanout": segmented.fanout,
        "segments": len(segments),
    }
    for segment in segments:
        yield {
            "type": "segment",
            "id": segment.segment_id,
            "file": segment_name(segment.segment_id),
            "docs": segment.document_count,
            "resources": segment.resource_count,
        }
    if buffer.resource_count:
        yield {
            "type": "buffer",
            "file": buffer_name,
            "docs": buffer.document_count,
            "resources": buffer.resource_count,
        }


def _save_segmented(segmented: SegmentedIndex, directory: pathlib.Path) -> set[str]:
    segments = segmented.iter_segments()
    buffer = segmented.write_buffer
    keep = {_MANIFEST_FILE}
    for segment in segments:
        name = _segment_file(segment.segment_id)
        write_records(
            directory / name,
            SEGMENT_KIND,
            _slice_records(segment.term_index, segment.entity_index, segment.evidence),
        )
        keep.add(name)
    if buffer.resource_count:
        write_records(
            directory / _BUFFER_FILE,
            SEGMENT_KIND,
            _slice_records(buffer.term_index, buffer.entity_index, buffer.evidence),
        )
        keep.add(_BUFFER_FILE)
    write_records(
        directory / _MANIFEST_FILE,
        MANIFEST_KIND,
        _manifest_records(segmented, segments, buffer, _segment_file, _BUFFER_FILE),
    )
    return keep


def _prune_snapshot_files(directory: pathlib.Path, keep: set[str]) -> None:
    """Remove snapshot files a previous save left behind — only names the
    format owns (recognized v2 shapes, binary generations, ``CURRENT``);
    anything else in the directory is not ours to delete."""
    for child in directory.iterdir():
        name = child.name
        if name in keep:
            continue
        if child.is_dir():
            if _GEN_PATTERN.fullmatch(name):
                with contextlib.suppress(OSError):
                    shutil.rmtree(child)
            continue
        if (
            name in _FLAT_V2_NAMES
            or _FLAT_V2_SEGMENT_PATTERN.fullmatch(name)
            or name == _CURRENT_FILE
        ):
            with contextlib.suppress(OSError):
                child.unlink()


# -- binary (v3) writer ------------------------------------------------------------


def _block_sections(
    prefix: str, blocks: list[tuple], bmax_dtype: str
) -> list[tuple[str, str, Any]]:
    """Flatten per-column ``(bids, boff, bmax)`` block metadata (one
    entry per column, in key order) into four ragged sections.

    ``{prefix}#blkoff`` delimits each column's run in the concatenated
    ``{prefix}#bid``/``{prefix}#bmax`` arrays; the per-column posting
    offsets (each ``len(bids) + 1`` long) are concatenated into
    ``{prefix}#boff``, so column ``c``'s offsets live at
    ``boff[blkoff[c] + c : blkoff[c + 1] + c + 1]``.
    """
    blkoff = array("l", [0])
    bid = array("l")
    bmax = array("l" if bmax_dtype == "q" else "d")
    boff = array("l")
    for bids, offs, maxima in blocks:
        bid.extend(bids)
        bmax.extend(maxima)
        boff.extend(offs)
        blkoff.append(len(bid))
    return [(layout.block_name(prefix, "bid"), "q", bid),
            (layout.block_name(prefix, "bmax"), bmax_dtype, bmax),
            (layout.block_name(prefix, "blkoff"), "q", blkoff),
            (layout.block_name(prefix, "boff"), "q", boff)]


def _slice_sections(
    term_index: InvertedIndex,
    entity_index: EntityIndex,
    evidence: Mapping[str, Any],
    *,
    block_span: int | None = None,
) -> list[tuple[str, str, Any]]:
    """One collection slice (the whole monolith, one segment, or the
    buffer) as binary sections: string tables + element-offset CSR
    columns, preserving postings and evidence-row order exactly — unless
    *block_span* is given (sealed segments), in which case each posting
    column is stored sorted by doc index with block-max sections
    alongside, ready for pruned evaluation straight off the mmap.
    Re-sorting is invisible in the rankings (each document appears at
    most once per column — see :mod:`repro.index.blockmax`).

    Entities carry both the raw ``d_score`` (``ent#ds``, for hydrating
    posting objects) and the folded ``we = 1 + d_score`` (``ent#we``, the
    ready-to-map query column) — ``d_score`` is not exactly recoverable
    from ``we`` in floating point, so both are stored. Entity block
    maxima bound the raw ``ef·we`` product, the same values a
    :class:`~repro.index.segments.Segment` computes for itself.
    """
    docs = sorted(term_index.doc_ids())
    doc_of = {doc_id: i for i, doc_id in enumerate(docs)}
    sections: list[tuple[str, str, Any]] = [*pack_strings("docs", docs)]

    terms: list[str] = []
    term_blocks: list[tuple] = []
    toff = array("l", [0])
    tdoc = array("l")
    ttf = array("l")
    for term, postings in term_index.items():
        terms.append(term)
        rows = [(doc_of[p.doc_id], p.term_frequency) for p in postings]
        if block_span is not None:
            rows.sort()
            term_blocks.append(
                compute_blocks([d for d, _ in rows], [f for _, f in rows],
                               block_span)
            )
        for d, tf in rows:
            tdoc.append(d)
            ttf.append(tf)
        toff.append(len(tdoc))
    sections += pack_strings(layout.TERMS, terms)
    sections += [(layout.TERM_OFF, "q", toff), (layout.TERM_DOC, "q", tdoc),
                 (layout.TERM_TF, "q", ttf)]

    entities: list[str] = []
    entity_blocks: list[tuple] = []
    eoff = array("l", [0])
    edoc = array("l")
    eef = array("l")
    ewe = array("d")
    eds = array("d")
    for uri, postings in entity_index.items():
        entities.append(uri)
        rows = [
            (doc_of[p.doc_id], p.entity_frequency,
             entity_weight(p.d_score), p.d_score)
            for p in postings
        ]
        if block_span is not None:
            rows.sort(key=lambda r: r[0])
            entity_blocks.append(
                compute_blocks([d for d, _, _, _ in rows],
                               [f * w for _, f, w, _ in rows], block_span)
            )
        for d, ef, we, ds in rows:
            edoc.append(d)
            eef.append(ef)
            ewe.append(we)
            eds.append(ds)
        eoff.append(len(edoc))
    sections += pack_strings(layout.ENTITIES, entities)
    sections += [(layout.ENT_OFF, "q", eoff), (layout.ENT_DOC, "q", edoc),
                 (layout.ENT_EF, "q", eef), (layout.ENT_WE, "d", ewe),
                 (layout.ENT_DS, "d", eds)]
    if block_span is not None:
        sections += [(layout.BLOCK_SPAN, "q", array("l", [block_span]))]
        sections += _block_sections("term", term_blocks, "q")
        sections += _block_sections("ent", entity_blocks, "d")

    sections += _evidence_sections(evidence)
    return sections


def _evidence_sections(evidence: Mapping[str, Any]) -> list[tuple[str, str, Any]]:
    """The resource → supporters relation as binary sections (string
    tables + an element-offset CSR), preserving row order exactly. Part
    of every slice container, and a standalone ``evidence.bin`` for
    sharded snapshots (whose coordinator folds from the full rows while
    each shard container carries only its restricted rows)."""
    resources = list(evidence)
    cands = sorted({cid for rows in evidence.values() for cid, _ in rows})
    cand_of = {cid: i for i, cid in enumerate(cands)}
    voff = array("l", [0])
    vcand = array("l")
    vdist = array("l")
    for doc_id in resources:
        for cid, distance in evidence[doc_id]:
            vcand.append(cand_of[cid])
            vdist.append(distance)
        voff.append(len(vcand))
    sections = [*pack_strings(layout.RESOURCES, resources)]
    sections += pack_strings(layout.CANDS, cands)
    sections += [(layout.EV_OFF, "q", voff), (layout.EV_CAND, "q", vcand),
                 (layout.EV_DIST, "q", vdist)]
    return sections


def _stats_sections(statistics: GlobalStatistics) -> list[tuple[str, str, Any]]:
    """The union collection statistics every shard scores with: N plus
    the term/entity document-frequency tables, in table order."""
    terms: list[str] = []
    term_df = array("l")
    for term, df in statistics.term_df_items():
        terms.append(term)
        term_df.append(df)
    entities: list[str] = []
    entity_df = array("l")
    for uri, df in statistics.entity_df_items():
        entities.append(uri)
        entity_df.append(df)
    sections: list[tuple[str, str, Any]] = [
        (layout.STAT_N, "q", array("l", [statistics.doc_count]))
    ]
    sections += pack_strings(layout.TERMS, terms)
    sections += [(layout.TERM_DF, "q", term_df)]
    sections += pack_strings(layout.ENTITIES, entities)
    sections += [(layout.ENT_DF, "q", entity_df)]
    return sections


def _shard_manifest_records(sharded: ShardedIndex) -> Iterator[dict[str, Any]]:
    shards = sharded.iter_shards()
    first = shards[0]
    yield {
        "type": "manifest",
        "shards": len(shards),
        "seal_threshold": first.seal_threshold,
        "fanout": first.fanout,
        "block_span": first._block_span,
    }
    for k, shard in enumerate(shards):
        yield {
            "type": "shard",
            "shard": k,
            "file": _shard_bin(k),
            "docs": shard.document_count,
            "resources": shard.resource_count,
        }


def _engine_sections(engine: ColumnarQueryEngine) -> list[tuple[str, str, Any]]:
    """The compiled engine's columns as binary sections. Doc and
    candidate id tables are not repeated here — they are identical to
    ``index.bin``'s ``docs``/``cands`` (both sorted over the same sets).

    ``snapshot_columns`` materializes block metadata for every column
    (doc-sorting any stragglers first), so the block-max sections are
    always written and a loaded engine starts pruned queries without
    recomputing anything.
    """
    cols = engine.snapshot_columns()
    sections: list[tuple[str, str, Any]] = []
    for prefix, col_key in (("term", "term"), ("ent", "entity")):
        col_dict = cols[f"{col_key}_cols"]
        blocks = cols[f"{col_key}_blocks"]
        keys = list(col_dict)
        off = array("l", [0])
        doc = array("l")
        weight = array("d")
        for key in keys:
            doc_col, weight_col = col_dict[key]
            doc.extend(doc_col)
            weight.extend(weight_col)
            off.append(len(doc))
        name = layout.TERMS if prefix == "term" else layout.ENTITIES
        sections += pack_strings(name, keys)
        sections += [(layout.csr(prefix, "off"), "q", off),
                     (layout.csr(prefix, "doc"), "q", doc),
                     (layout.csr(prefix, "w"), "d", weight)]
        sections += _block_sections(prefix, [blocks[k] for k in keys], "d")
    sections += [(layout.BLOCK_SPAN, "q", array("l", [engine.block_span]))]
    sections += [(layout.SUP_OFF, "q", cols["sup_offsets"]),
                 (layout.SUP_CAND, "q", cols["sup_cand"]),
                 (layout.SUP_W, "d", cols["sup_weight"])]
    return sections


def _next_generation(directory: pathlib.Path) -> str:
    highest = 0
    for child in directory.iterdir():
        match = _GEN_PATTERN.fullmatch(child.name)
        if match and child.is_dir():
            highest = max(highest, int(match.group(1)))
    return f"gen-{highest + 1:07d}"


def _write_current(directory: pathlib.Path, gen_name: str) -> None:
    data = f"{_CURRENT_MAGIC}\n{gen_name}\n".encode("utf-8")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=f".{_CURRENT_FILE}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, directory / _CURRENT_FILE)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    _fsync_directory(directory)


def _save_v3(finder: ExpertFinder, directory: pathlib.Path) -> None:
    gen_name = _next_generation(directory)
    gen_dir = directory / gen_name
    gen_dir.mkdir()
    write_records(
        gen_dir / _META_FILE, META_KIND, _meta_records(finder, SNAPSHOT_VERSION)
    )
    if finder.index_mode == "segmented":
        segmented = finder.segmented_index
        segments = segmented.iter_segments()
        buffer = segmented.write_buffer
        # sealed segments get doc-sorted columns + block-max sections so
        # a loaded finder prunes straight off the mmap; the buffer stays
        # in postings order (it is hydrated into mutable indexes anyway)
        for segment in segments:
            write_sections(
                gen_dir / _segment_bin(segment.segment_id),
                _slice_sections(
                    segment.term_index, segment.entity_index, segment.evidence,
                    block_span=segment.block_span,
                ),
            )
        if buffer.resource_count:
            write_sections(
                gen_dir / _BUFFER_BIN,
                _slice_sections(
                    buffer.term_index, buffer.entity_index, buffer.evidence
                ),
            )
        write_records(
            gen_dir / _MANIFEST_FILE,
            MANIFEST_KIND,
            _manifest_records(segmented, segments, buffer, _segment_bin, _BUFFER_BIN),
        )
    elif finder.index_mode == "sharded":
        sharded = finder.sharded_index
        write_sections(gen_dir / _STATS_BIN, _stats_sections(sharded.statistics))
        # the coordinator's full evidence rows (each shard container only
        # carries the rows restricted to its own candidates)
        write_sections(
            gen_dir / _EVIDENCE_BIN, _evidence_sections(finder.evidence_of)
        )
        # one section container per shard: its merged collection slice,
        # doc-sorted with block-max metadata, so every scatter worker
        # mmaps exactly one file
        for k, shard in enumerate(sharded.iter_shards()):
            term_index, entity_index, evidence = shard.merged_slice()
            write_sections(
                gen_dir / _shard_bin(k),
                _slice_sections(
                    term_index, entity_index, evidence,
                    block_span=shard._block_span,
                ),
            )
        write_records(
            gen_dir / _SHARD_MANIFEST_FILE,
            SHARD_MANIFEST_KIND,
            _shard_manifest_records(sharded),
        )
    else:
        retriever = finder.retriever
        write_sections(
            gen_dir / _INDEX_BIN,
            _slice_sections(
                retriever.term_index, retriever.entity_index, finder.evidence_of
            ),
        )
        write_sections(gen_dir / _ENGINE_BIN, _engine_sections(finder.query_engine()))
    # the generation is complete and durable; flip CURRENT, then prune
    # what the flip obsoleted (older generations, flat v2 files) — a
    # crash anywhere here leaves a loadable snapshot on both sides
    _write_current(directory, gen_name)
    _prune_snapshot_files(directory, {_CURRENT_FILE, gen_name})


# -- jsonl (v2) reader -------------------------------------------------------------


def _load_meta(
    path: pathlib.Path, expected_version: int
) -> tuple[FinderConfig, int, dict[str, int], str, int | None]:
    version: int | None = None
    index_mode: str | None = None
    shards: int | None = None
    config: FinderConfig | None = None
    indexed: int | None = None
    evidence_counts: dict[str, int] = {}
    for record in read_records(path, META_KIND):
        rtype = record.get("type")
        if rtype == "snapshot":
            version = record.get("snapshot_version")
            if version != expected_version:
                raise StorageFormatError(
                    f"{path}: unsupported snapshot version {version!r} "
                    f"(expected {expected_version})"
                )
            index_mode = record.get("index_mode", "monolithic")
            # "sharded" exists only in the v3 generation layout; a v2
            # flat-jsonl meta claiming it is as unknown as any typo
            modes = (
                _INDEX_MODES
                if expected_version == SNAPSHOT_VERSION
                else _INDEX_MODES[:2]
            )
            if index_mode not in modes:
                raise StorageFormatError(
                    f"{path}: unknown index mode {index_mode!r}"
                )
            shards = record.get("shards")
            if index_mode == "sharded" and (
                type(shards) is not int or shards < 1
            ):
                raise StorageFormatError(
                    f"{path}: sharded snapshot with invalid shard "
                    f"count {shards!r}"
                )
        elif rtype == "config":
            try:
                kwargs = {name: record[name] for name in _CONFIG_FIELDS}
            except KeyError as exc:
                raise StorageFormatError(
                    f"{path}: config record missing field {exc.args[0]!r}"
                ) from exc
            kwargs["weight_interval"] = tuple(kwargs["weight_interval"])
            config = FinderConfig(**kwargs)
        elif rtype == "counts":
            indexed = record["indexed"]
        elif rtype == "candidate":
            evidence_counts[record["id"]] = record["evidence"]
        else:
            raise StorageFormatError(f"{path}: unknown meta record type {rtype!r}")
    if version is None or index_mode is None or config is None or indexed is None:
        raise StorageFormatError(f"{path}: incomplete snapshot metadata")
    return config, indexed, evidence_counts, index_mode, shards


def _load_term_index(path: pathlib.Path) -> InvertedIndex:
    doc_ids: list[str] | None = None
    postings: dict[str, list[Posting]] = {}
    for record in read_records(path, TERM_INDEX_KIND):
        rtype = record.get("type")
        if rtype == "docs":
            doc_ids = record["ids"]
        elif rtype == "term":
            postings[record["t"]] = [
                Posting(doc_id, frequency) for doc_id, frequency in record["p"]
            ]
        else:
            raise StorageFormatError(f"{path}: unknown record type {rtype!r}")
    if doc_ids is None:
        raise StorageFormatError(f"{path}: missing docs record")
    return InvertedIndex.restore(doc_ids, postings)


def _load_entity_index(path: pathlib.Path) -> EntityIndex:
    doc_ids: list[str] | None = None
    postings: dict[str, list[EntityPosting]] = {}
    for record in read_records(path, ENTITY_INDEX_KIND):
        rtype = record.get("type")
        if rtype == "docs":
            doc_ids = record["ids"]
        elif rtype == "entity":
            postings[record["e"]] = [
                EntityPosting(doc_id, frequency, d_score)
                for doc_id, frequency, d_score in record["p"]
            ]
        else:
            raise StorageFormatError(f"{path}: unknown record type {rtype!r}")
    if doc_ids is None:
        raise StorageFormatError(f"{path}: missing docs record")
    return EntityIndex.restore(doc_ids, postings)


def _load_evidence(path: pathlib.Path) -> dict[str, list[tuple[str, int]]]:
    evidence_of: dict[str, list[tuple[str, int]]] = {}
    for record in read_records(path, EVIDENCE_KIND):
        if record.get("type") != "evidence":
            raise StorageFormatError(
                f"{path}: unknown record type {record.get('type')!r}"
            )
        evidence_of[record["doc"]] = [
            (cid, distance) for cid, distance in record["s"]
        ]
    return evidence_of


def _load_slice(
    path: pathlib.Path,
) -> tuple[InvertedIndex, EntityIndex, dict[str, tuple[tuple[str, int], ...]]]:
    """Parse one segment (or buffer) file into restored indexes plus its
    evidence rows, in stored order."""
    doc_ids: list[str] | None = None
    term_postings: dict[str, list[Posting]] = {}
    entity_postings: dict[str, list[EntityPosting]] = {}
    evidence: dict[str, tuple[tuple[str, int], ...]] = {}
    for record in read_records(path, SEGMENT_KIND):
        rtype = record.get("type")
        if rtype == "docs":
            doc_ids = record["ids"]
        elif rtype == "term":
            term_postings[record["t"]] = [
                Posting(doc_id, frequency) for doc_id, frequency in record["p"]
            ]
        elif rtype == "entity":
            entity_postings[record["e"]] = [
                EntityPosting(doc_id, frequency, d_score)
                for doc_id, frequency, d_score in record["p"]
            ]
        elif rtype == "evidence":
            evidence[record["doc"]] = tuple(
                (cid, distance) for cid, distance in record["s"]
            )
        else:
            raise StorageFormatError(f"{path}: unknown record type {rtype!r}")
    if doc_ids is None:
        raise StorageFormatError(f"{path}: missing docs record")
    term_index = InvertedIndex.restore(doc_ids, term_postings)
    entity_index = EntityIndex.restore(doc_ids, entity_postings)
    return term_index, entity_index, evidence


def _read_manifest(
    manifest_path: pathlib.Path,
) -> tuple[dict[str, Any], list[dict[str, Any]], dict[str, Any] | None]:
    header: dict[str, Any] | None = None
    entries: list[dict[str, Any]] = []
    buffer_entry: dict[str, Any] | None = None
    for record in read_records(manifest_path, MANIFEST_KIND):
        rtype = record.get("type")
        if rtype == "manifest":
            header = record
        elif rtype == "segment":
            entries.append(record)
        elif rtype == "buffer":
            buffer_entry = record
        else:
            raise StorageFormatError(
                f"{manifest_path}: unknown manifest record type {rtype!r}"
            )
    if header is None:
        raise StorageFormatError(f"{manifest_path}: missing manifest header")
    if header["segments"] != len(entries):
        raise StorageFormatError(
            f"{manifest_path}: manifest declares {header['segments']} "
            f"segment(s) but lists {len(entries)}"
        )
    return header, entries, buffer_entry


def _load_segmented(
    directory: pathlib.Path, config: FinderConfig
) -> tuple[SegmentedIndex, dict[str, list[tuple[str, int]]]]:
    """Restore a segmented index from its manifest + per-segment files,
    without merging anything: per-segment postings orders, the segment
    order, and the buffered tail all survive the round trip."""
    manifest_path = directory / _MANIFEST_FILE
    header, entries, buffer_entry = _read_manifest(manifest_path)

    def load_entry(entry: dict[str, Any], path: pathlib.Path) -> Segment:
        term_index, entity_index, evidence = _load_slice(path)
        if term_index.document_count != entry["docs"]:
            raise StorageFormatError(
                f"{path}: segment holds {term_index.document_count} "
                f"document(s), manifest says {entry['docs']}"
            )
        resources = len(frozenset(evidence) | term_index.doc_ids())
        if resources != entry["resources"]:
            raise StorageFormatError(
                f"{path}: segment holds {resources} resource(s), "
                f"manifest says {entry['resources']}"
            )
        return term_index, entity_index, evidence

    segments = []
    for entry in entries:
        path = directory / entry["file"]
        if not path.is_file():
            raise StorageFormatError(
                f"{manifest_path}: manifest names missing file {entry['file']!r}"
            )
        segments.append((entry["id"], *load_entry(entry, path)))
    buffer = None
    if buffer_entry is not None:
        path = directory / buffer_entry["file"]
        if not path.is_file():
            raise StorageFormatError(
                f"{manifest_path}: manifest names missing file "
                f"{buffer_entry['file']!r}"
            )
        buffer = load_entry(buffer_entry, path)

    segmented = SegmentedIndex.restore(
        config,
        segments,
        buffer,
        seal_threshold=header["seal_threshold"],
        fanout=header.get("fanout", 4),
    )
    return segmented, _collect_evidence(segmented)


def _collect_evidence(
    segmented: SegmentedIndex,
) -> dict[str, list[tuple[str, int]]]:
    evidence_of: dict[str, list[tuple[str, int]]] = {}
    for segment in segmented.iter_segments():
        for doc_id, rows in segment.evidence.items():
            evidence_of[doc_id] = list(rows)
    for doc_id, rows in segmented.write_buffer.evidence.items():
        evidence_of[doc_id] = list(rows)
    return evidence_of


# -- binary (v3) reader ------------------------------------------------------------


class _LazyEvidence(MutableMapping):
    """The resource → supporters relation, hydrated from the mapped
    evidence CSR on first access.

    Columnar query evaluation never touches it — only the object path
    (``rank_matches``), ``observe``, and re-saves do — so a v3 snapshot
    open defers decoding the evidence string tables entirely.
    """

    __slots__ = ("_hydrate", "_data")

    def __init__(
        self, hydrate: Callable[[], dict[str, list[tuple[str, int]]]]
    ):
        self._hydrate: Callable[[], dict[str, list[tuple[str, int]]]] | None = hydrate
        self._data: dict[str, list[tuple[str, int]]] | None = None

    def _ensure(self) -> dict[str, list[tuple[str, int]]]:
        data = self._data
        if data is None:
            hydrate = self._hydrate
            self._hydrate = None
            data = self._data = hydrate()
        return data

    def __getitem__(self, key: str) -> list[tuple[str, int]]:
        return self._ensure()[key]

    def __setitem__(self, key: str, value: list[tuple[str, int]]) -> None:
        self._ensure()[key] = value

    def __delitem__(self, key: str) -> None:
        del self._ensure()[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._ensure())

    def __len__(self) -> int:
        return len(self._ensure())


def _read_current(directory: pathlib.Path) -> pathlib.Path:
    path = directory / _CURRENT_FILE
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise
    except (OSError, UnicodeDecodeError) as exc:
        raise StorageFormatError(f"{path}: unreadable CURRENT file: {exc}") from exc
    lines = text.splitlines()
    if len(lines) != 2 or lines[0] != _CURRENT_MAGIC:
        raise StorageFormatError(f"{path}: not a {_CURRENT_MAGIC} pointer file")
    gen_name = lines[1]
    if not _GEN_PATTERN.fullmatch(gen_name):
        raise StorageFormatError(f"{path}: malformed generation name {gen_name!r}")
    gen_dir = directory / gen_name
    if not gen_dir.is_dir():
        raise StorageFormatError(
            f"{path}: CURRENT names missing generation {gen_name!r}"
        )
    return gen_dir


def _csr(
    mapped: MappedSections, prefix: str, n_keys: int, columns: tuple[str, ...]
) -> tuple[Any, list[Any]]:
    """The offsets array + parallel column views of one CSR group, with
    the length cross-checks (per-element content is covered by the
    container checksum)."""
    path = mapped.path
    off_name = layout.csr(prefix, "off")
    off = mapped.array(off_name)
    if len(off) != n_keys + 1:
        raise StorageFormatError(
            f"{path}: section {off_name} has {len(off)} offsets "
            f"for {n_keys} key(s)"
        )
    views = [mapped.array(layout.csr(prefix, column)) for column in columns]
    total = len(views[0])
    if off[0] != 0 or off[n_keys] != total:
        raise StorageFormatError(
            f"{path}: section {off_name} does not span its columns"
        )
    for column, view in zip(columns[1:], views[1:]):
        if len(view) != total:
            raise StorageFormatError(
                f"{path}: section {layout.csr(prefix, column)} "
                f"length {len(view)} != {total}"
            )
    return off, views


def _col_dict(
    keys: Sequence[str], off: Any, views: Sequence[Any]
) -> dict[str, tuple]:
    out: dict[str, tuple] = {}
    for i, key in enumerate(keys):
        start, stop = off[i], off[i + 1]
        out[key] = tuple(view[start:stop] for view in views)
    return out


def _read_blocks(
    mapped: MappedSections, prefix: str, keys: list[str]
) -> dict[str, tuple]:
    """Rebuild the per-column ``(bids, boff, bmax)`` block metadata from
    the flattened sections written by :func:`_block_sections` — zero-copy
    views over the mapping. Absence of the sections is handled by the
    callers (pre-block snapshots recompute lazily); malformed lengths are
    a format error.
    """
    path = mapped.path
    blkoff_name = layout.block_name(prefix, "blkoff")
    bid = mapped.array(layout.block_name(prefix, "bid"))
    bmax = mapped.array(layout.block_name(prefix, "bmax"))
    blkoff = mapped.array(blkoff_name)
    boff = mapped.array(layout.block_name(prefix, "boff"))
    n = len(keys)
    if len(blkoff) != n + 1 or blkoff[0] != 0 or blkoff[n] != len(bid):
        raise StorageFormatError(
            f"{path}: section {blkoff_name} does not span its blocks"
        )
    if len(bmax) != len(bid) or len(boff) != len(bid) + n:
        raise StorageFormatError(
            f"{path}: block sections for {prefix!r} disagree on block count"
        )
    out: dict[str, tuple] = {}
    for i, key in enumerate(keys):
        start, stop = blkoff[i], blkoff[i + 1]
        out[key] = (
            bid[start:stop],
            boff[start + i : stop + i + 1],
            bmax[start:stop],
        )
    return out


def _decode_evidence(
    mapped: MappedSections,
) -> dict[str, tuple[tuple[str, int], ...]]:
    resources = mapped.strings("resources")
    cands = mapped.strings("cands")
    off, (vcand, vdist) = _csr(mapped, "ev", len(resources), ("cand", "dist"))
    evidence: dict[str, tuple[tuple[str, int], ...]] = {}
    for i, doc_id in enumerate(resources):
        evidence[doc_id] = tuple(
            (cands[vcand[j]], vdist[j]) for j in range(off[i], off[i + 1])
        )
    return evidence


def _slice_hydrator(
    mapped: MappedSections, docs: list[str]
) -> Callable[[], tuple[InvertedIndex, EntityIndex]]:
    """A closure rebuilding the posting-object indexes of one mapped
    slice — run at most once, only when merges/re-saves need objects."""

    def hydrate() -> tuple[InvertedIndex, EntityIndex]:
        terms = mapped.strings("terms")
        toff, (tdoc, ttf) = _csr(mapped, "term", len(terms), ("doc", "tf"))
        term_postings = {
            term: [
                Posting(docs[tdoc[j]], ttf[j])
                for j in range(toff[i], toff[i + 1])
            ]
            for i, term in enumerate(terms)
        }
        entities = mapped.strings("entities")
        eoff, (edoc, eef, eds) = _csr(mapped, "ent", len(entities), ("doc", "ef", "ds"))
        entity_postings = {
            uri: [
                EntityPosting(docs[edoc[j]], eef[j], eds[j])
                for j in range(eoff[i], eoff[i + 1])
            ]
            for i, uri in enumerate(entities)
        }
        return (
            InvertedIndex.restore(docs, term_postings),
            EntityIndex.restore(docs, entity_postings),
        )

    return hydrate


def _load_v3_monolithic(
    gen_dir: pathlib.Path,
    analyzer: ResourceAnalyzer,
    config: FinderConfig,
    indexed: int,
    evidence_counts: dict[str, int],
) -> ExpertFinder:
    index_mapped = MappedSections.open(gen_dir / _INDEX_BIN)
    engine_mapped = MappedSections.open(gen_dir / _ENGINE_BIN)
    docs = index_mapped.strings("docs")
    if len(docs) != indexed:
        raise StorageFormatError(
            f"{gen_dir / _INDEX_BIN}: index holds {len(docs)} document(s), "
            f"metadata says {indexed}"
        )
    cands = index_mapped.strings("cands")

    terms = engine_mapped.strings("terms")
    toff, term_views = _csr(engine_mapped, "term", len(terms), ("doc", "w"))
    entities = engine_mapped.strings("entities")
    eoff, entity_views = _csr(engine_mapped, "ent", len(entities), ("doc", "w"))
    sup_off, (sup_cand, sup_weight) = _csr(
        engine_mapped, "sup", len(docs), ("cand", "w")
    )
    # block-max sections are adopted when present (their columns were
    # written doc-sorted); pre-block snapshots recompute lazily on first
    # pruned query — the recompute-on-absent compatibility rule
    block_kwargs: dict[str, Any] = {}
    if layout.BLOCK_SPAN in engine_mapped.names():
        block_kwargs = {
            "block_span": int(engine_mapped.array(layout.BLOCK_SPAN)[0]),
            "term_blocks": _read_blocks(engine_mapped, "term", terms),
            "entity_blocks": _read_blocks(engine_mapped, "ent", entities),
        }
    engine = ColumnarQueryEngine(
        doc_ids=docs,
        cand_ids=cands,
        term_cols=_col_dict(terms, toff, term_views),
        entity_cols=_col_dict(entities, eoff, entity_views),
        sup_offsets=sup_off,
        sup_cand=sup_cand,
        sup_weight=sup_weight,
        normalize=config.normalize,
        **block_kwargs,
    )

    def evidence_hydrate() -> dict[str, list[tuple[str, int]]]:
        return {
            doc_id: list(rows)
            for doc_id, rows in _decode_evidence(index_mapped).items()
        }

    index_hydrate = _slice_hydrator(index_mapped, docs)

    def retriever_factory() -> VectorSpaceRetriever:
        term_index, entity_index = index_hydrate()
        return VectorSpaceRetriever(
            term_index,
            entity_index,
            CollectionStatistics(term_index, entity_index),
            idf_exponent=config.idf_exponent,
        )

    finder = ExpertFinder(
        analyzer,
        None,
        _LazyEvidence(evidence_hydrate),
        config,
        evidence_counts=evidence_counts,
        indexed_count=indexed,
        retriever_factory=retriever_factory,
    )
    finder._engine = engine
    return finder


def _load_v3_segment(
    path: pathlib.Path, segment_id: int, entry: dict[str, Any]
) -> Segment:
    mapped = MappedSections.open(path)
    docs = mapped.strings("docs")
    if len(docs) != entry["docs"]:
        raise StorageFormatError(
            f"{path}: segment holds {len(docs)} document(s), "
            f"manifest says {entry['docs']}"
        )
    terms = mapped.strings("terms")
    toff, term_views = _csr(mapped, "term", len(terms), ("doc", "tf"))
    entities = mapped.strings("entities")
    eoff, entity_views = _csr(mapped, "ent", len(entities), ("doc", "ef", "we", "ds"))
    evidence = _decode_evidence(mapped)
    resources = len(frozenset(evidence) | frozenset(docs))
    if resources != entry["resources"]:
        raise StorageFormatError(
            f"{path}: segment holds {resources} resource(s), "
            f"manifest says {entry['resources']}"
        )
    block_kwargs: dict[str, Any] = {}
    if layout.BLOCK_SPAN in mapped.names():
        block_kwargs = {
            "block_span": int(mapped.array(layout.BLOCK_SPAN)[0]),
            "term_blocks": _read_blocks(mapped, "term", terms),
            "entity_blocks": _read_blocks(mapped, "ent", entities),
        }
    return Segment.from_columns(
        segment_id,
        docs,
        _col_dict(terms, toff, term_views),
        # the query columns are (doc, ef, we); ds is hydration-only
        _col_dict(entities, eoff, entity_views[:3]),
        evidence,
        _slice_hydrator(mapped, docs),
        **block_kwargs,
    )


def _load_v3_buffer(path: pathlib.Path, entry: dict[str, Any]) -> _WriteBuffer:
    """The unsealed buffer rehydrates eagerly — it is small by
    construction (below the seal threshold) and mutable on the very next
    observe, so mapping it lazily buys nothing."""
    mapped = MappedSections.open(path)
    docs = mapped.strings("docs")
    if len(docs) != entry["docs"]:
        raise StorageFormatError(
            f"{path}: buffer holds {len(docs)} document(s), "
            f"manifest says {entry['docs']}"
        )
    term_index, entity_index = _slice_hydrator(mapped, docs)()
    evidence = _decode_evidence(mapped)
    resources = len(frozenset(evidence) | frozenset(docs))
    if resources != entry["resources"]:
        raise StorageFormatError(
            f"{path}: buffer holds {resources} resource(s), "
            f"manifest says {entry['resources']}"
        )
    mapped.close()
    return term_index, entity_index, evidence


def _load_v3_segmented(
    gen_dir: pathlib.Path,
    analyzer: ResourceAnalyzer,
    config: FinderConfig,
    indexed: int,
    evidence_counts: dict[str, int],
) -> ExpertFinder:
    manifest_path = gen_dir / _MANIFEST_FILE
    header, entries, buffer_entry = _read_manifest(manifest_path)
    segments = []
    for entry in entries:
        path = gen_dir / entry["file"]
        if not path.is_file():
            raise StorageFormatError(
                f"{manifest_path}: manifest names missing file {entry['file']!r}"
            )
        segments.append(_load_v3_segment(path, entry["id"], entry))
    buffer = None
    if buffer_entry is not None:
        path = gen_dir / buffer_entry["file"]
        if not path.is_file():
            raise StorageFormatError(
                f"{manifest_path}: manifest names missing file "
                f"{buffer_entry['file']!r}"
            )
        buffer = _load_v3_buffer(path, buffer_entry)
    segmented = SegmentedIndex.restore_compiled(
        config,
        segments,
        buffer,
        seal_threshold=header["seal_threshold"],
        fanout=header.get("fanout", 4),
        # keep the stored span for segments sealed after this load
        block_span=segments[0].block_span if segments else None,
    )
    if segmented.document_count != indexed:
        raise StorageFormatError(
            f"{gen_dir}: segments hold {segmented.document_count} "
            f"indexed document(s), metadata says {indexed}"
        )
    return ExpertFinder(
        analyzer,
        None,
        _collect_evidence(segmented),
        config,
        evidence_counts=evidence_counts,
        indexed_count=indexed,
        segmented=segmented,
    )


def _decode_stats(
    mapped: MappedSections, path: pathlib.Path, idf_exponent: float
) -> GlobalStatistics:
    doc_count = int(mapped.array(layout.STAT_N)[0])
    terms = mapped.strings(layout.TERMS)
    term_df = mapped.array(layout.TERM_DF)
    if len(term_df) != len(terms):
        raise StorageFormatError(
            f"{path}: {len(terms)} term(s) but {len(term_df)} df value(s)"
        )
    entities = mapped.strings(layout.ENTITIES)
    entity_df = mapped.array(layout.ENT_DF)
    if len(entity_df) != len(entities):
        raise StorageFormatError(
            f"{path}: {len(entities)} entities but "
            f"{len(entity_df)} df value(s)"
        )
    return GlobalStatistics(
        idf_exponent,
        doc_count,
        dict(zip(terms, (int(df) for df in term_df))),
        dict(zip(entities, (int(df) for df in entity_df))),
    )


def _load_stats(path: pathlib.Path, idf_exponent: float) -> GlobalStatistics:
    """Rebuild the union collection statistics from ``stats.bin`` (the
    decode runs in a helper so its section views are released before the
    mapping closes)."""
    mapped = MappedSections.open(path)
    try:
        return _decode_stats(mapped, path, idf_exponent)
    finally:
        mapped.close()


def _read_shard_manifest(
    manifest_path: pathlib.Path,
) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    header: dict[str, Any] | None = None
    entries: list[dict[str, Any]] = []
    for record in read_records(manifest_path, SHARD_MANIFEST_KIND):
        rtype = record.get("type")
        if rtype == "manifest":
            header = record
        elif rtype == "shard":
            entries.append(record)
        else:
            raise StorageFormatError(
                f"{manifest_path}: unknown manifest record type {rtype!r}"
            )
    if header is None:
        raise StorageFormatError(f"{manifest_path}: missing manifest header")
    if header["shards"] != len(entries):
        raise StorageFormatError(
            f"{manifest_path}: manifest declares {header['shards']} "
            f"shard(s) but lists {len(entries)}"
        )
    if [entry["shard"] for entry in entries] != list(range(len(entries))):
        raise StorageFormatError(
            f"{manifest_path}: shard entries are not 0..{len(entries) - 1} "
            f"in order"
        )
    return header, entries


def _shard_from_bin(
    path: pathlib.Path,
    entry: dict[str, Any],
    config: FinderConfig,
    statistics: GlobalStatistics,
    group: tuple[str, ...],
    header: dict[str, Any],
) -> ShardIndex:
    """One shard container → a compiled :class:`ShardIndex` scoring with
    *statistics*, owning the *group* candidates."""
    segments = []
    if entry["docs"] or entry["resources"]:
        segments.append(_load_v3_segment(path, 0, entry))
    shard = ShardIndex.restore_compiled(
        config,
        segments,
        None,
        seal_threshold=header["seal_threshold"],
        fanout=header.get("fanout", 4),
        block_span=header.get("block_span"),
    )
    shard._global = statistics
    shard.candidates = frozenset(group)
    return shard


def open_shard(directory: str | pathlib.Path, shard: int) -> ShardIndex:
    """Open one shard of a v3 sharded *generation* directory, read-only.

    This is what each scatter-pool worker runs after the fork: it maps
    only its own shard's section container (plus the small stats/meta
    files), so N workers over one snapshot share a single page-cache
    copy of the columns and never rebuild posting objects. The candidate
    partition is recomputed from the meta candidate records — identical
    to the coordinator's by :func:`partition_candidates` determinism.
    """
    gen_dir = pathlib.Path(directory)
    config, _indexed, evidence_counts, index_mode, _shards = _load_meta(
        gen_dir / _META_FILE, SNAPSHOT_VERSION
    )
    if index_mode != "sharded":
        raise StorageFormatError(
            f"{gen_dir}: not a sharded snapshot (index mode {index_mode!r})"
        )
    header, entries = _read_shard_manifest(gen_dir / _SHARD_MANIFEST_FILE)
    if not 0 <= shard < len(entries):
        raise ValueError(
            f"shard must be in 0..{len(entries) - 1}, got {shard}"
        )
    statistics = _load_stats(gen_dir / _STATS_BIN, config.idf_exponent)
    partition = partition_candidates(evidence_counts, header["shards"])
    entry = entries[shard]
    path = gen_dir / entry["file"]
    if not path.is_file():
        raise StorageFormatError(
            f"{gen_dir / _SHARD_MANIFEST_FILE}: manifest names missing "
            f"file {entry['file']!r}"
        )
    return _shard_from_bin(path, entry, config, statistics, partition[shard], header)


def _load_v3_sharded(
    gen_dir: pathlib.Path,
    analyzer: ResourceAnalyzer,
    config: FinderConfig,
    indexed: int,
    evidence_counts: dict[str, int],
    shards: int | None,
) -> ExpertFinder:
    manifest_path = gen_dir / _SHARD_MANIFEST_FILE
    header, entries = _read_shard_manifest(manifest_path)
    if shards is not None and header["shards"] != shards:
        raise StorageFormatError(
            f"{manifest_path}: manifest holds {header['shards']} shard(s), "
            f"metadata says {shards}"
        )
    statistics = _load_stats(gen_dir / _STATS_BIN, config.idf_exponent)
    if statistics.doc_count != indexed:
        raise StorageFormatError(
            f"{gen_dir / _STATS_BIN}: statistics cover {statistics.doc_count} "
            f"indexed document(s), metadata says {indexed}"
        )
    # the coordinator folds Eq. 3 from the full rows, so they hydrate
    # eagerly (unlike the monolithic path, where only re-saves need them)
    evidence_mapped = MappedSections.open(gen_dir / _EVIDENCE_BIN)
    try:
        evidence_of = {
            doc_id: list(rows)
            for doc_id, rows in _decode_evidence(evidence_mapped).items()
        }
    finally:
        evidence_mapped.close()
    partition = partition_candidates(evidence_counts, header["shards"])
    shard_objs = []
    for k, entry in enumerate(entries):
        path = gen_dir / entry["file"]
        if not path.is_file():
            raise StorageFormatError(
                f"{manifest_path}: manifest names missing file {entry['file']!r}"
            )
        shard_objs.append(
            _shard_from_bin(path, entry, config, statistics, partition[k], header)
        )
    sharded = ShardedIndex(config, shard_objs, statistics, evidence_of, partition)
    # scatter-pool workers re-open from disk instead of inheriting the
    # coordinator's hydrated shards — one mmap each, shared page cache
    sharded._shard_openers = [
        functools.partial(open_shard, str(gen_dir), k)
        for k in range(len(entries))
    ]
    return ExpertFinder(
        analyzer,
        None,
        evidence_of,
        config,
        evidence_counts=evidence_counts,
        indexed_count=indexed,
        sharded=sharded,
    )


def _load_v3(
    directory: pathlib.Path, analyzer: ResourceAnalyzer
) -> ExpertFinder:
    gen_dir = _read_current(directory)
    try:
        config, indexed, evidence_counts, index_mode, shards = _load_meta(
            gen_dir / _META_FILE, SNAPSHOT_VERSION
        )
        if index_mode == "sharded":
            return _load_v3_sharded(
                gen_dir, analyzer, config, indexed, evidence_counts, shards
            )
        if index_mode == "segmented":
            return _load_v3_segmented(
                gen_dir, analyzer, config, indexed, evidence_counts
            )
        return _load_v3_monolithic(
            gen_dir, analyzer, config, indexed, evidence_counts
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, StorageFormatError):
            raise
        raise StorageFormatError(f"{directory}: malformed snapshot: {exc}") from exc


def snapshot_generation(directory: str | pathlib.Path) -> str | None:
    """The name of the v3 generation the snapshot's ``CURRENT`` pointer
    selects (e.g. ``"gen-0000002"``), or ``None`` for the flat jsonl
    layout (which has no generations).

    The serving gateway (:mod:`repro.serve`) reports this label per
    loaded generation, so operators can tell *which* snapshot state a
    hot-reloaded process is answering from."""
    directory = pathlib.Path(directory)
    if not (directory / _CURRENT_FILE).exists():
        return None
    return _read_current(directory).name


def load_finder(
    directory: str | pathlib.Path, analyzer: ResourceAnalyzer
) -> ExpertFinder:
    """Load a finder previously written by :func:`save_finder`.

    The format is negotiated from the directory layout: a ``CURRENT``
    pointer selects the binary v3 generation it names; otherwise the
    flat jsonl (v2) layout is read. *analyzer* must be equivalent to the
    one the finder was built with — it analyzes incoming queries (and
    streamed resources), and the paper requires need and resource
    analysis to be symmetric (Sec. 2.3).
    """
    directory = pathlib.Path(directory)
    if (directory / _CURRENT_FILE).exists():
        return _load_v3(directory, analyzer)
    try:
        config, indexed, evidence_counts, index_mode, _shards = _load_meta(
            directory / _META_FILE, JSONL_SNAPSHOT_VERSION
        )
        if index_mode == "segmented":
            segmented, evidence_of = _load_segmented(directory, config)
            if segmented.document_count != indexed:
                raise StorageFormatError(
                    f"{directory}: segments hold {segmented.document_count} "
                    f"indexed document(s), metadata says {indexed}"
                )
            return ExpertFinder(
                analyzer,
                None,
                evidence_of,
                config,
                evidence_counts=evidence_counts,
                indexed_count=indexed,
                segmented=segmented,
            )
        term_index = _load_term_index(directory / _TERM_FILE)
        entity_index = _load_entity_index(directory / _ENTITY_FILE)
        evidence_of = _load_evidence(directory / _EVIDENCE_FILE)
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, StorageFormatError):
            raise
        raise StorageFormatError(f"{directory}: malformed snapshot: {exc}") from exc
    # the builder indexes every resource into both indexes (possibly with
    # empty postings), so diverging doc-id sets mean a corrupt snapshot —
    # and would skew the shared collection-frequency denominators
    if term_index.doc_ids() != entity_index.doc_ids():
        raise StorageFormatError(
            f"{directory}: term and entity indexes disagree on the indexed "
            f"doc ids ({len(term_index.doc_ids())} vs "
            f"{len(entity_index.doc_ids())})"
        )
    retriever = VectorSpaceRetriever(
        term_index,
        entity_index,
        CollectionStatistics(term_index, entity_index),
        idf_exponent=config.idf_exponent,
    )
    finder = ExpertFinder(
        analyzer,
        retriever,
        evidence_of,
        config,
        evidence_counts=evidence_counts,
        indexed_count=indexed,
    )
    # compile the columnar engine now: serving processes warm-start from
    # snapshots, so the first query shouldn't pay compilation — and a
    # snapshot whose evidence can't compile (e.g. out-of-range distance)
    # is rejected at load time rather than at first query
    try:
        finder.query_engine()
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageFormatError(f"{directory}: malformed snapshot: {exc}") from exc
    return finder
