"""Persistence layer.

Social graphs, analyzed corpora, and whole evaluation datasets can be
serialized to a compact JSON-lines format (optionally gzipped) and
loaded back bit-identically. This serves two needs:

* **caching** — the SMALL dataset takes ~40 s to generate and analyze;
  a cached copy loads in a fraction of that (see
  :func:`repro.storage.cache.load_or_build`);
* **interchange** — downstream users can export real crawled data into
  the same format and run the finder on it without touching the
  generator.

Format: one JSON object per line, first line is a header with a record
``kind`` and format version; subsequent lines are typed records
(``profile``, ``resource``, ``container``, edges, analyses…).

Finder snapshots additionally support a binary, mmap-able format
(snapshot v3, the default — see :mod:`repro.storage.binary` and
:mod:`repro.storage.snapshot`) for O(1) serving warm-starts; the jsonl
layout stays available as the debug/interchange format.
"""

from repro.storage.binary import MappedSections, pack_strings, write_sections
from repro.storage.cache import load_or_build
from repro.storage.corpus_io import load_corpus, save_corpus
from repro.storage.dataset_io import load_dataset, save_dataset
from repro.storage.graph_io import load_graph, save_graph
from repro.storage.jsonl import StorageFormatError
from repro.storage.snapshot import load_finder, save_finder

__all__ = [
    "MappedSections",
    "StorageFormatError",
    "load_corpus",
    "load_dataset",
    "load_finder",
    "load_graph",
    "load_or_build",
    "pack_strings",
    "save_corpus",
    "save_dataset",
    "save_finder",
    "save_graph",
    "write_sections",
]
