"""The registry of snapshot section and file names — the single place
where the v3 binary layout's names are spelled out.

Writer and reader paths agree on the layout only because they agree on
these strings; a typo'd ``"term#of"`` in one path is a silently-wrong
snapshot (the reader raises *missing section*, or worse, adopts a stale
one). Every section name, container file name, and name-shaped suffix
therefore lives here, and the ``section-registry`` rule of
:mod:`repro.analysis` flags any ad-hoc ``prefix#column`` / ``*.bin``
literal in the storage and index packages that bypasses this module.

Naming conventions:

* string tables are a bare name (``docs``, ``terms``) paired with an
  offsets section derived by :func:`offsets_name`;
* CSR column groups share a prefix (``term``, ``ent``, ``ev``, ``sup``)
  and name each parallel column ``prefix#column`` via :func:`csr`;
* block-max metadata uses the four :data:`BLOCK_COLUMNS` columns under
  the owning group's prefix, plus the global :data:`BLOCK_SPAN` scalar.
"""

from __future__ import annotations

# -- container file names ----------------------------------------------------------

#: the generation pointer file of a v3 snapshot directory
CURRENT_FILE = "CURRENT"
#: config/counts records, shared by the v2 and v3 layouts
META_FILE = "meta.jsonl"
#: monolithic collection slice (string tables + posting CSRs)
INDEX_BIN = "index.bin"
#: compiled columnar engine (weighted columns + block metadata)
ENGINE_BIN = "engine.bin"
#: the segmented index's unsealed write buffer
BUFFER_BIN = "buffer.bin"
#: union collection statistics of a sharded snapshot
STATS_BIN = "stats.bin"
#: the sharded coordinator's full evidence rows
EVIDENCE_BIN = "evidence.bin"
#: segment manifest of a segmented snapshot (v2 and v3)
MANIFEST_FILE = "segments.jsonl"
#: shard manifest of a sharded (v3-only) snapshot
SHARD_MANIFEST_FILE = "shards.jsonl"

#: flat v2 (jsonl) data files
TERM_FILE = "term_index.jsonl.gz"
ENTITY_FILE = "entity_index.jsonl.gz"
EVIDENCE_FILE = "evidence.jsonl.gz"
BUFFER_FILE = "buffer.jsonl.gz"


def segment_file(segment_id: int) -> str:
    """The flat v2 file holding one sealed segment."""
    return f"segment-{segment_id:04d}.jsonl.gz"


def segment_bin(segment_id: int) -> str:
    """The v3 section container holding one sealed segment."""
    return f"segment-{segment_id:04d}.bin"


def shard_bin(shard: int) -> str:
    """The v3 section container holding one candidate shard's slice."""
    return f"shard-{shard:04d}.bin"


# -- string tables -----------------------------------------------------------------

DOCS = "docs"
CANDS = "cands"
TERMS = "terms"
ENTITIES = "entities"
RESOURCES = "resources"

#: suffix pairing a string table with its int64 offsets section
OFFSETS_SUFFIX = "#off"


def offsets_name(name: str) -> str:
    """The offsets section paired with string table *name* (see
    :func:`repro.storage.binary.pack_strings`)."""
    return name + OFFSETS_SUFFIX


# -- CSR column groups -------------------------------------------------------------


def csr(prefix: str, column: str) -> str:
    """The section holding one parallel *column* of CSR group *prefix*."""
    return f"{prefix}#{column}"


#: collection-slice term postings: offsets + (doc, tf) columns
TERM_OFF = csr("term", "off")
TERM_DOC = csr("term", "doc")
TERM_TF = csr("term", "tf")

#: collection-slice entity postings: offsets + (doc, ef, we, ds) columns
ENT_OFF = csr("ent", "off")
ENT_DOC = csr("ent", "doc")
ENT_EF = csr("ent", "ef")
ENT_WE = csr("ent", "we")
ENT_DS = csr("ent", "ds")

#: compiled-engine weighted postings: (doc, w) under term/ent prefixes
TERM_W = csr("term", "w")
ENT_W = csr("ent", "w")

#: evidence rows: offsets + (cand, dist) columns
EV_OFF = csr("ev", "off")
EV_CAND = csr("ev", "cand")
EV_DIST = csr("ev", "dist")

#: supporters CSR of the compiled engine: offsets + (cand, w) columns
SUP_OFF = csr("sup", "off")
SUP_CAND = csr("sup", "cand")
SUP_W = csr("sup", "w")

#: union statistics (``stats.bin``): scalar N + per-table df columns
STAT_N = csr("stat", "n")
TERM_DF = csr("term", "df")
ENT_DF = csr("ent", "df")

# -- block-max metadata ------------------------------------------------------------

#: scalar: the doc-index span every block of the container is cut on
BLOCK_SPAN = csr("blk", "span")

#: per-group flattened block columns (see ``snapshot._block_sections``):
#: distinct block ids, per-block maxima, per-column delimiters, and the
#: concatenated per-column posting offsets
BLOCK_COLUMNS = ("bid", "bmax", "blkoff", "boff")


def block_name(prefix: str, column: str) -> str:
    """The flattened block-metadata section *column* for group *prefix*;
    *column* must be one of :data:`BLOCK_COLUMNS`."""
    if column not in BLOCK_COLUMNS:
        raise ValueError(
            f"block column must be one of {BLOCK_COLUMNS}, got {column!r}"
        )
    return csr(prefix, column)


#: the registered layout *file* names, for the ``section-registry``
#: checker's exact-literal matching (section names are caught by their
#: ``prefix#column`` shape; plain string-table names like ``docs`` are
#: too common as record keys to exact-match)
REGISTERED_FILES = frozenset(
    (
        CURRENT_FILE, META_FILE, INDEX_BIN, ENGINE_BIN, BUFFER_BIN,
        STATS_BIN, EVIDENCE_BIN, MANIFEST_FILE, SHARD_MANIFEST_FILE,
        TERM_FILE, ENTITY_FILE, EVIDENCE_FILE, BUFFER_FILE,
    )
)
