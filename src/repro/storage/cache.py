"""Dataset caching: build once, load from disk afterwards.

``load_or_build`` keys the cache directory by (scale, seed), so every
distinct configuration gets its own copy; a corrupted or
version-incompatible cache is rebuilt, never trusted.
"""

from __future__ import annotations

import pathlib
import shutil

from repro.storage.dataset_io import load_dataset, save_dataset
from repro.storage.jsonl import StorageFormatError
from repro.synthetic.dataset import DatasetScale, EvaluationDataset, build_dataset


def cache_path(root: str | pathlib.Path, scale: DatasetScale, seed: int) -> pathlib.Path:
    """The cache directory for one (scale, seed) configuration."""
    return pathlib.Path(root) / f"dataset_{scale.value}_seed{seed}"


def load_or_build(
    root: str | pathlib.Path,
    scale: DatasetScale = DatasetScale.SMALL,
    seed: int = 7,
    *,
    refresh: bool = False,
) -> EvaluationDataset:
    """Return the (scale, seed) dataset, from cache when possible.

    *refresh* forces a rebuild. A cache that fails to load (partial
    write, format change) is discarded and rebuilt.
    """
    directory = cache_path(root, scale, seed)
    if not refresh and directory.is_dir():
        try:
            return load_dataset(directory)
        except (StorageFormatError, FileNotFoundError, KeyError, ValueError):
            shutil.rmtree(directory, ignore_errors=True)
    dataset = build_dataset(scale, seed)
    save_dataset(dataset, directory)
    return dataset
