"""Dataset caching: build once, load from disk afterwards.

``load_or_build`` keys the cache directory by (scale, seed), so every
distinct configuration gets its own copy. Each cache directory carries
a version stamp (``cache_version.json``): a cache written under a
different cache layout or storage format is rebuilt, never trusted —
a stale layout that happens to parse would silently feed the finder
wrong data.
"""

from __future__ import annotations

import json
import pathlib
import shutil

from repro.storage.dataset_io import load_dataset, save_dataset
from repro.storage.jsonl import FORMAT_VERSION, StorageFormatError
from repro.synthetic.dataset import DatasetScale, EvaluationDataset, build_dataset

#: bump when the cached dataset directory layout changes (which files
#: exist, what they contain) without the per-file jsonl version moving
CACHE_FORMAT_VERSION = 1

_STAMP_NAME = "cache_version.json"


def cache_path(root: str | pathlib.Path, scale: DatasetScale, seed: int) -> pathlib.Path:
    """The cache directory for one (scale, seed) configuration."""
    return pathlib.Path(root) / f"dataset_{scale.value}_seed{seed}"


def _write_stamp(directory: pathlib.Path) -> None:
    stamp = {
        "format": "repro-dataset-cache",
        "cache_version": CACHE_FORMAT_VERSION,
        "jsonl_version": FORMAT_VERSION,
    }
    (directory / _STAMP_NAME).write_text(json.dumps(stamp), encoding="utf-8")


def _stamp_is_current(directory: pathlib.Path) -> bool:
    """True when the directory carries a stamp matching this code."""
    try:
        stamp = json.loads((directory / _STAMP_NAME).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return False
    return (
        isinstance(stamp, dict)
        and stamp.get("format") == "repro-dataset-cache"
        and stamp.get("cache_version") == CACHE_FORMAT_VERSION
        and stamp.get("jsonl_version") == FORMAT_VERSION
    )


def load_or_build(
    root: str | pathlib.Path,
    scale: DatasetScale = DatasetScale.SMALL,
    seed: int = 7,
    *,
    refresh: bool = False,
) -> EvaluationDataset:
    """Return the (scale, seed) dataset, from cache when possible.

    *refresh* forces a rebuild. A cache that fails to load (partial
    write, format change) or whose version stamp is missing or stale is
    discarded and rebuilt.

    The ``xl`` scale is rejected outright: it exists only as a stream
    (:mod:`repro.synthetic.stream`), and caching it would mean
    materializing ~1M resources on disk and in memory.
    """
    if scale is DatasetScale.XL:
        raise ValueError(
            "the xl scale cannot be cached or materialized; stream it "
            "with repro.synthetic.stream.stream_resources into "
            "ExpertFinder.from_stream instead"
        )
    directory = cache_path(root, scale, seed)
    if not refresh and directory.is_dir():
        if _stamp_is_current(directory):
            try:
                return load_dataset(directory)
            except (StorageFormatError, FileNotFoundError, KeyError, ValueError):
                pass
        shutil.rmtree(directory, ignore_errors=True)
    dataset = build_dataset(scale, seed)
    save_dataset(dataset, directory)
    _write_stamp(directory)
    return dataset
