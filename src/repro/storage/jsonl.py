"""JSON-lines files with a typed header, transparent gzip, and strict
version checking."""

from __future__ import annotations

import gzip
import json
import pathlib
from collections.abc import Iterable, Iterator
from typing import Any

FORMAT_VERSION = 1


class StorageFormatError(ValueError):
    """The file is not a repro storage file, or its version/kind is
    incompatible."""


def _open(path: pathlib.Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_records(
    path: str | pathlib.Path, kind: str, records: Iterable[dict[str, Any]]
) -> int:
    """Write a header line plus one JSON object per record; returns the
    number of records written. ``.gz`` paths are gzip-compressed."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with _open(path, "w") as fh:
        header = {"format": "repro-jsonl", "version": FORMAT_VERSION, "kind": kind}
        fh.write(json.dumps(header, separators=(",", ":")) + "\n")
        for record in records:
            fh.write(json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n")
            count += 1
    return count


def read_records(path: str | pathlib.Path, kind: str) -> Iterator[dict[str, Any]]:
    """Yield the records of a storage file, validating the header."""
    path = pathlib.Path(path)
    with _open(path, "r") as fh:
        header_line = fh.readline()
        if not header_line:
            raise StorageFormatError(f"{path}: empty file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise StorageFormatError(f"{path}: malformed header") from exc
        if header.get("format") != "repro-jsonl":
            raise StorageFormatError(f"{path}: not a repro storage file")
        if header.get("version") != FORMAT_VERSION:
            raise StorageFormatError(
                f"{path}: unsupported version {header.get('version')!r}"
            )
        if header.get("kind") != kind:
            raise StorageFormatError(
                f"{path}: expected kind {kind!r}, found {header.get('kind')!r}"
            )
        for line_number, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise StorageFormatError(f"{path}:{line_number}: malformed record") from exc
