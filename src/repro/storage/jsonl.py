"""JSON-lines files with a typed header, transparent gzip, strict
version checking, and atomic writes.

:func:`write_records` never exposes a partially-written file under the
final name: it assembles the file in a same-directory temporary, flushes
and fsyncs it, then ``os.replace``-s it into place — a process killed
mid-write leaves only a stray ``.tmp`` file, never a truncated file
with a valid header. :func:`read_records` converts every decode-layer
failure (malformed JSON, truncated gzip streams, bad UTF-8) into
:class:`StorageFormatError` naming the offending path, so callers never
see a bare ``JSONDecodeError``/``EOFError`` from a corrupt file.
"""

from __future__ import annotations

import contextlib
import gzip
import json
import os
import pathlib
import tempfile
from collections.abc import Iterable, Iterator
from typing import Any, TextIO

FORMAT_VERSION = 1


class StorageFormatError(ValueError):
    """The file is not a repro storage file, or its version/kind is
    incompatible, or its content is corrupt."""


def _open_read(path: pathlib.Path) -> TextIO:
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def write_records(
    path: str | pathlib.Path, kind: str, records: Iterable[dict[str, Any]]
) -> int:
    """Atomically write a header line plus one JSON object per record;
    returns the number of records written. ``.gz`` paths are
    gzip-compressed."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as raw:
            if path.suffix == ".gz":
                fh = gzip.open(raw, "wt", encoding="utf-8")
            else:
                fh = open(raw.fileno(), "w", encoding="utf-8", closefd=False)
            with fh:
                header = {
                    "format": "repro-jsonl",
                    "version": FORMAT_VERSION,
                    "kind": kind,
                }
                fh.write(json.dumps(header, separators=(",", ":")) + "\n")
                for record in records:
                    fh.write(
                        json.dumps(record, separators=(",", ":"), sort_keys=True)
                        + "\n"
                    )
                    count += 1
            raw.flush()
            os.fsync(raw.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    _fsync_directory(path.parent)
    return count


def _fsync_directory(directory: pathlib.Path) -> None:
    """Flush the directory entry after a rename; best-effort where
    directories cannot be opened."""
    with contextlib.suppress(OSError):
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def read_records(path: str | pathlib.Path, kind: str) -> Iterator[dict[str, Any]]:
    """Yield the records of a storage file, validating the header.

    Decode-layer failures — malformed JSON, a gzip stream cut short by a
    crash, invalid UTF-8 — surface as :class:`StorageFormatError` with
    the path, never as the underlying codec exception. A missing file
    still raises ``FileNotFoundError``.
    """
    path = pathlib.Path(path)
    try:
        with _open_read(path) as fh:
            header_line = fh.readline()
            if not header_line:
                raise StorageFormatError(f"{path}: empty file")
            try:
                header = json.loads(header_line)
            except json.JSONDecodeError as exc:
                raise StorageFormatError(f"{path}: malformed header") from exc
            if not isinstance(header, dict) or header.get("format") != "repro-jsonl":
                raise StorageFormatError(f"{path}: not a repro storage file")
            if header.get("version") != FORMAT_VERSION:
                raise StorageFormatError(
                    f"{path}: unsupported version {header.get('version')!r}"
                )
            if header.get("kind") != kind:
                raise StorageFormatError(
                    f"{path}: expected kind {kind!r}, found {header.get('kind')!r}"
                )
            for line_number, line in enumerate(fh, start=2):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as exc:
                    raise StorageFormatError(
                        f"{path}:{line_number}: malformed record"
                    ) from exc
    except (EOFError, UnicodeDecodeError) as exc:
        # a truncated gzip member raises EOFError mid-iteration; decode
        # errors mean the compressed payload was damaged
        raise StorageFormatError(f"{path}: corrupt file: {exc}") from exc
    except gzip.BadGzipFile as exc:
        raise StorageFormatError(f"{path}: corrupt gzip stream: {exc}") from exc
