"""repro — expert finding in social networks.

A complete reproduction of *Bozzon, Brambilla, Ceri, Silvestri, Vesci:
"Choosing the Right Crowd: Expert Finding in Social Networks"* (EDBT
2013): the social-graph meta-model, the resource analysis pipeline
(language identification, text processing, TAGME-style entity
annotation), the vector-space matching of expertise needs to resources
(Eq. 1–2), the distance-weighted expert ranking (Eq. 3), simulated
platform extraction, a synthetic 40-volunteer evaluation dataset, and
the full experimental harness for every table and figure in the paper.

Quickstart::

    from repro import ExpertFinder, FinderConfig, build_dataset, DatasetScale

    dataset = build_dataset(DatasetScale.TINY, seed=7)
    finder = ExpertFinder.build(
        dataset.merged_graph,
        dataset.candidates_for(None),
        dataset.analyzer,
        FinderConfig(),
        corpus=dataset.corpus,
    )
    for expert in finder.find_experts("best freestyle swimmer", top_k=5):
        print(expert.candidate_id, expert.score)
"""

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.core.need import ExpertiseNeed
from repro.core.ranking import ExpertScore
from repro.core.service import ExpertSearchService
from repro.socialgraph.metamodel import Platform
from repro.synthetic.dataset import DatasetScale, EvaluationDataset, build_dataset

__version__ = "1.0.0"

__all__ = [
    "DatasetScale",
    "EvaluationDataset",
    "ExpertFinder",
    "ExpertScore",
    "ExpertSearchService",
    "ExpertiseNeed",
    "FinderConfig",
    "Platform",
    "build_dataset",
    "__version__",
]
