"""Command-line interface.

::

    repro dataset --scale small --seed 7 --out data/small   # build & save
    repro info --dataset data/small                          # dataset stats
    repro query "best freestyle swimmer" --dataset data/small --top-k 5
    repro index --dataset data/small --out data/small.idx    # finder snapshot
    repro index --snapshot data/small.idx --compact --out data/small.opt
    repro serve-bench --dataset data/small --snapshot data/small.idx
    repro serve --snapshot data/small.idx --port 8080        # HTTP gateway
    repro experiments --only tab3,fig7 --scale tiny          # reproduce paper

Every subcommand also works without a saved dataset by generating one
on the fly (``--scale``/``--seed``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.socialgraph.metamodel import Platform
from repro.synthetic.dataset import DatasetScale, EvaluationDataset, build_dataset

_PLATFORMS = {
    "all": None,
    "fb": Platform.FACEBOOK,
    "facebook": Platform.FACEBOOK,
    "tw": Platform.TWITTER,
    "twitter": Platform.TWITTER,
    "li": Platform.LINKEDIN,
    "linkedin": Platform.LINKEDIN,
}

_EXPERIMENTS = (
    "fig5", "fig6", "fig7", "tab2", "tab3", "tab4", "fig10", "fig11", "ablations",
)


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", help="directory of a saved dataset (repro dataset)")
    parser.add_argument(
        "--scale",
        choices=[s.value for s in DatasetScale],
        default="tiny",
        help="generate a dataset at this scale when --dataset is not given",
    )
    parser.add_argument("--seed", type=int, default=7, help="master seed")


def _load_dataset(args: argparse.Namespace) -> EvaluationDataset:
    if args.dataset:
        from repro.storage.dataset_io import load_dataset

        return load_dataset(args.dataset)
    return build_dataset(DatasetScale(args.scale), args.seed)


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.storage.dataset_io import save_dataset

    t0 = time.time()
    dataset = build_dataset(DatasetScale(args.scale), args.seed)
    save_dataset(dataset, args.out)
    counts = dataset.merged_graph.counts()
    print(
        f"built scale={args.scale} seed={args.seed} in {time.time() - t0:.1f}s: "
        f"{counts['profiles']} profiles, {counts['resources']} resources, "
        f"{counts['containers']} containers → {args.out}"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    print(f"scale={dataset.scale.value} seed={dataset.seed}")
    print(f"candidates: {len(dataset.people)}")
    for platform, graph in dataset.graphs.items():
        counts = graph.counts()
        print(
            f"  {platform.value:<9} profiles={counts['profiles']:<6}"
            f" resources={counts['resources']:<7} containers={counts['containers']}"
        )
    overall = dataset.ground_truth.overall_stats()
    print(
        f"ground truth: avg {overall['avg_experts_per_domain']:.1f} experts/domain,"
        f" avg expertise {overall['avg_expertise']:.2f}"
    )
    return 0


def _load_snapshot(path: str, dataset: EvaluationDataset) -> ExpertFinder:
    from repro.storage.jsonl import StorageFormatError

    try:
        return ExpertFinder.load(path, dataset.analyzer)
    except (OSError, EOFError, StorageFormatError) as exc:
        raise SystemExit(f"error: cannot load snapshot {path}: {exc}") from exc


def _cmd_query(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    if args.snapshot:
        finder = _load_snapshot(args.snapshot, dataset)
    else:
        finder = _build_finder(dataset, args)
    experts = finder.find_experts(args.text, top_k=args.top_k)
    if not experts:
        print("no candidate shows matching expertise")
        return 1
    names = {p.person_id: p.name for p in dataset.people}
    print(f"{'rank':<5} {'candidate':<22} {'score':>10} {'#resources':>11}")
    for rank, expert in enumerate(experts, start=1):
        label = f"{expert.candidate_id} ({names.get(expert.candidate_id, '?')})"
        print(
            f"{rank:<5} {label:<22} {expert.score:>10.2f}"
            f" {expert.supporting_resources:>11}"
        )
    return 0


def _build_finder(
    dataset: EvaluationDataset, args: argparse.Namespace
) -> ExpertFinder:
    platform = _PLATFORMS[args.platform]
    config = FinderConfig(
        alpha=args.alpha, window=args.window, max_distance=args.distance
    )
    build_kwargs = {}
    if getattr(args, "workers", 1) != 1:
        build_kwargs["workers"] = args.workers
    if getattr(args, "chunk_size", None):
        build_kwargs["chunk_size"] = args.chunk_size
    if getattr(args, "index_mode", "monolithic") != "monolithic":
        build_kwargs["index_mode"] = args.index_mode
    if getattr(args, "shards", None):
        build_kwargs["shards"] = args.shards
    if getattr(args, "seal_threshold", None):
        build_kwargs["seal_threshold"] = args.seal_threshold
    if getattr(args, "block_span", None):
        build_kwargs["block_span"] = args.block_span
    return ExpertFinder.build(
        dataset.graph_for(platform),
        dataset.candidates_for(platform),
        dataset.analyzer,
        config,
        corpus=None if getattr(args, "cold", False) else dataset.corpus,
        **build_kwargs,
    )


def _cmd_index(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    t0 = time.time()
    if args.snapshot:
        finder = _load_snapshot(args.snapshot, dataset)
        source = f"snapshot {args.snapshot}"
    else:
        finder = _build_finder(dataset, args)
        source = "cold build"
    if args.compact:
        segmented = finder.segmented_index
        if segmented is None:
            raise SystemExit(
                "error: --compact requires a segmented finder "
                "(build with --index-mode segmented or load a segmented snapshot)"
            )
        before = segmented.stats
        segmented.compact(full=True)
        after = segmented.stats
        print(
            f"compacted {before.segments} segment(s) + "
            f"{before.buffered} buffered resource(s) → "
            f"{after.segments} segment(s)"
        )
    built = time.time()
    finder.save(args.out, snapshot_format=args.snapshot_format)
    saved = time.time()
    print(
        f"indexed {finder.indexed_resources} resources "
        f"({source}, {built - t0:.1f}s; save {saved - built:.1f}s) → {args.out}"
    )
    seg_stats = finder.index_stats
    if seg_stats is not None:
        print(
            f"segments: {seg_stats.segments} live "
            f"(docs per segment: {list(seg_stats.segment_docs)}), "
            f"{seg_stats.buffered} buffered, "
            f"{seg_stats.seals} seals, {seg_stats.compactions} compactions"
        )
    sharded = finder.sharded_index
    if sharded is not None:
        shard_stats = sharded.stats
        print(
            f"shards: {shard_stats.shards} "
            f"(docs per shard: {list(shard_stats.shard_docs)}), "
            f"{shard_stats.documents} unique indexed documents"
        )
    stats = finder.build_stats
    if stats is not None:
        print(f"build stages: {stats.render()}")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.core.service import ExpertSearchService

    dataset = _load_dataset(args)
    t0 = time.time()
    if args.snapshot:
        finder = _load_snapshot(args.snapshot, dataset)
        source = f"snapshot {args.snapshot}"
    else:
        finder = _build_finder(dataset, args)
        source = "cold build"
    finder.engine = args.engine
    if args.engine != "object" and finder.index_mode == "monolithic":
        finder.query_engine()  # compile before timing starts
    if finder.index_mode == "sharded" and args.engine != "object":
        finder.start_scatter_pool()  # fork workers before timing starts
    ready = time.time()
    service = ExpertSearchService(finder, cache_size=args.cache_size)
    queries = list(dataset.queries)
    started = time.time()
    try:
        for _ in range(args.rounds):
            service.find_experts_batch(queries, top_k=args.top_k)
    finally:
        finder.close_scatter_pool()
    elapsed = time.time() - started
    stats = service.stats
    qps = stats.queries / elapsed if elapsed > 0 else float("inf")
    if args.json:
        # the same dict /v1/metrics serves under "service" — one
        # serialization helper (ServiceStats.to_dict) for both surfaces
        print(
            json.dumps(
                {
                    "source": source,
                    "elapsed_s": elapsed,
                    "qps": qps,
                    "service": stats.to_dict(),
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    engine_label = (
        "segmented index"
        if finder.index_mode == "segmented"
        else f"{args.engine} engine"
    )
    print(f"finder ready in {ready - t0:.1f}s ({source}, {engine_label})")
    print(
        f"{stats.queries} queries in {elapsed:.2f}s — {qps:.0f} q/s, "
        f"hit rate {stats.hit_rate:.0%}, "
        f"p50 {stats.p50_latency * 1e3:.2f}ms, "
        f"p95 {stats.p95_latency * 1e3:.2f}ms"
    )
    if finder.index_mode == "segmented":
        print(
            f"segments: {stats.segments} live, {stats.buffered_docs} buffered, "
            f"{stats.compactions} compactions, "
            f"cache survivals {stats.cache_survivals} vs "
            f"clears {stats.invalidations}"
        )
    if finder.index_mode == "sharded":
        sharded = finder.sharded_index
        print(
            f"shards: {sharded.shard_count}, "
            f"batch parallelism {stats.batch_parallelism:.1f}"
        )
    if args.engine == "columnar-pruned":
        print(
            f"pruning: {stats.pruned_queries} pruned + "
            f"{stats.fallback_queries} fallback queries, "
            f"{stats.blocks_scanned} blocks scanned / "
            f"{stats.blocks_skipped} skipped "
            f"({stats.block_skip_rate:.0%} skip rate)"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.service import ExpertSearchService
    from repro.serve import GatewayConfig, ServeApp, run_gateway
    from repro.serve.reload import build_service
    from repro.storage.snapshot import snapshot_generation

    engine = args.engine
    cache_size = args.cache_size
    label = None
    if args.snapshot:
        # Hot-reloadable: every (re)load reads the snapshot directory's
        # CURRENT generation, so `repro index --out <same dir>` followed
        # by SIGHUP or POST /admin/reload serves the new build.
        snapshot_path = args.snapshot
        if args.dataset:
            analyzer = _load_dataset(args).analyzer
        else:
            from repro.synthetic.dataset import default_analyzer

            analyzer = default_analyzer()

        def source() -> ExpertSearchService:
            finder = ExpertFinder.load(snapshot_path, analyzer)
            return build_service(finder, engine=engine, cache_size=cache_size)

        def label() -> str | None:  # noqa: F811 (one branch wins)
            return snapshot_generation(snapshot_path)

        reloadable = True
    else:
        dataset = _load_dataset(args)

        def source() -> ExpertSearchService:
            finder = _build_finder(dataset, args)
            return build_service(finder, engine=engine, cache_size=cache_size)

        reloadable = False
    config = GatewayConfig(
        rate_limit=args.rate_limit if args.rate_limit > 0 else None,
        burst=args.burst,
        max_batch_needs=args.max_batch_needs,
    )
    app = ServeApp(source, label=label, config=config, reloadable=reloadable)
    try:
        asyncio.run(run_gateway(app, host=args.host, port=args.port))
    except KeyboardInterrupt:
        pass
    except ValueError as exc:
        # e.g. object engine on a sharded snapshot
        raise SystemExit(f"error: {exc}") from exc
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.evaluation.runner import ExperimentRunner
    from repro.experiments import (
        ablations,
        fig5_dataset,
        fig6_window,
        fig7_alpha,
        fig10_trust,
        fig11_delta,
        tab2_fig8_friends,
        tab3_fig9_networks,
        tab4_domains,
    )
    from repro.experiments.context import ExperimentContext

    drivers = {
        "fig5": fig5_dataset,
        "fig6": fig6_window,
        "fig7": fig7_alpha,
        "tab2": tab2_fig8_friends,
        "tab3": tab3_fig9_networks,
        "tab4": tab4_domains,
        "fig10": fig10_trust,
        "fig11": fig11_delta,
        "ablations": ablations,
    }
    selected = (
        [name.strip() for name in args.only.split(",")] if args.only else list(drivers)
    )
    unknown = [name for name in selected if name not in drivers]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(drivers)}", file=sys.stderr)
        return 2
    dataset = _load_dataset(args)
    context = ExperimentContext(dataset=dataset, runner=ExperimentRunner(dataset))
    for name in selected:
        t0 = time.time()
        result = drivers[name].run(context)
        print(f"\n=== {name} [{time.time() - t0:.1f}s] ===")
        print(result.render())
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import DEFAULT_EXCLUDE, ALL_CHECKERS, lint_paths

    paths = args.paths or [
        path for path in ("src", "tests", "benchmarks") if Path(path).exists()
    ]
    if not paths:
        print("lint: no paths given and no default paths exist", file=sys.stderr)
        return 2
    exclude = list(DEFAULT_EXCLUDE) + (args.exclude or [])
    cache_path = None if args.no_cache else args.cache
    try:
        report = lint_paths(paths, cache_path=cache_path, exclude=exclude)
    except FileNotFoundError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        rules = ", ".join(sorted({c.rule for c in ALL_CHECKERS}))
        print(
            f"checked {report.files_checked} files "
            f"({report.files_cached} cached): "
            f"{len(report.findings)} findings, "
            f"{report.suppressed} suppressed [{rules}]"
        )
    return 0 if report.is_clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Expert finding in social networks (EDBT 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dataset = sub.add_parser("dataset", help="generate and save a dataset")
    p_dataset.add_argument(
        "--scale", choices=[s.value for s in DatasetScale], default="small"
    )
    p_dataset.add_argument("--seed", type=int, default=7)
    p_dataset.add_argument("--out", required=True, help="output directory")
    p_dataset.set_defaults(func=_cmd_dataset)

    p_info = sub.add_parser("info", help="show dataset statistics")
    _add_dataset_args(p_info)
    p_info.set_defaults(func=_cmd_info)

    p_query = sub.add_parser("query", help="rank experts for an expertise need")
    p_query.add_argument("text", help="the expertise need")
    _add_dataset_args(p_query)
    p_query.add_argument("--platform", choices=sorted(_PLATFORMS), default="all")
    p_query.add_argument(
        "--snapshot", help="warm-start from a snapshot (repro index) instead of building"
    )
    p_query.add_argument("--top-k", type=int, default=10)
    p_query.add_argument("--alpha", type=float, default=0.6)
    p_query.add_argument("--window", type=int, default=100)
    p_query.add_argument("--distance", type=int, default=2, choices=(0, 1, 2))
    p_query.set_defaults(func=_cmd_query)

    p_index = sub.add_parser(
        "index", help="build a finder and save its snapshot for warm starts"
    )
    _add_dataset_args(p_index)
    p_index.add_argument("--out", required=True, help="snapshot output directory")
    p_index.add_argument("--platform", choices=sorted(_PLATFORMS), default="all")
    p_index.add_argument("--alpha", type=float, default=0.6)
    p_index.add_argument("--window", type=int, default=100)
    p_index.add_argument("--distance", type=int, default=2, choices=(0, 1, 2))
    p_index.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the analyze/index build stages "
        "(results are identical for any count)",
    )
    p_index.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="nodes per worker dispatch (default 256)",
    )
    p_index.add_argument(
        "--cold",
        action="store_true",
        help="ignore the dataset's pre-analyzed corpus and re-analyze "
        "every node (exercises the full parallel pipeline)",
    )
    p_index.add_argument(
        "--snapshot",
        help="start from an existing snapshot instead of building "
        "(e.g. to --compact it into a fresh snapshot)",
    )
    p_index.add_argument(
        "--index-mode",
        choices=("monolithic", "segmented"),
        default="monolithic",
        help="index layout: one monolithic collection or sealed segments "
        "+ write buffer (rankings are identical)",
    )
    p_index.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition candidates into K scatter-gather shards "
        "(rankings identical to the single-index build; queries can "
        "then fan out across a worker pool)",
    )
    p_index.add_argument(
        "--seal-threshold",
        type=int,
        default=None,
        help="segmented mode: buffer size (resources) at which it seals",
    )
    p_index.add_argument(
        "--block-span",
        type=int,
        help="doc-index span per block-max pruning block (default: the "
        "engine default); rankings are unaffected",
    )
    p_index.add_argument(
        "--compact",
        action="store_true",
        help="segmented mode: merge all segments (and the buffer) into "
        "one segment before saving",
    )
    p_index.add_argument(
        "--snapshot-format",
        choices=("v3", "jsonl"),
        default="v3",
        help="snapshot format: mmap-able binary generations (v3, the "
        "default) or the flat jsonl debug/interchange layout",
    )
    p_index.set_defaults(func=_cmd_index)

    p_serve = sub.add_parser(
        "serve-bench", help="serve the query set through the cached service"
    )
    _add_dataset_args(p_serve)
    p_serve.add_argument(
        "--snapshot", help="warm-start from a snapshot (repro index) instead of building"
    )
    p_serve.add_argument("--platform", choices=sorted(_PLATFORMS), default="all")
    p_serve.add_argument("--alpha", type=float, default=0.6)
    p_serve.add_argument("--window", type=int, default=100)
    p_serve.add_argument("--distance", type=int, default=2, choices=(0, 1, 2))
    p_serve.add_argument("--top-k", type=int, default=10)
    p_serve.add_argument("--rounds", type=int, default=3, help="passes over the query set")
    p_serve.add_argument("--cache-size", type=int, default=1024)
    p_serve.add_argument(
        "--engine",
        choices=("columnar", "columnar-pruned", "object"),
        default="columnar",
        help="query engine for cache misses (columnar-pruned = block-max "
        "dynamic pruning, object = reference path)",
    )
    p_serve.add_argument(
        "--index-mode",
        choices=("monolithic", "segmented"),
        default="monolithic",
        help="index layout when building (ignored with --snapshot, which "
        "carries its own mode)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="build a candidate-sharded finder and serve batches through "
        "the scatter-gather worker pool (ignored with --snapshot, which "
        "carries its own shard count)",
    )
    p_serve.add_argument(
        "--seal-threshold",
        type=int,
        default=None,
        help="segmented mode: buffer size (resources) at which it seals",
    )
    p_serve.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable stats (the same dict the gateway's "
        "/v1/metrics endpoint serves) instead of the human summary",
    )
    p_serve.set_defaults(func=_cmd_serve_bench)

    p_gw = sub.add_parser(
        "serve", help="run the HTTP serving gateway (repro.serve)"
    )
    _add_dataset_args(p_gw)
    p_gw.add_argument("--host", default="127.0.0.1")
    p_gw.add_argument("--port", type=int, default=8080)
    p_gw.add_argument(
        "--snapshot",
        help="serve this snapshot directory; SIGHUP or POST /admin/reload "
        "re-reads its CURRENT generation without dropping requests "
        "(omit to build a finder in process — not reloadable)",
    )
    p_gw.add_argument("--platform", choices=sorted(_PLATFORMS), default="all")
    p_gw.add_argument("--alpha", type=float, default=0.6)
    p_gw.add_argument("--window", type=int, default=100)
    p_gw.add_argument("--distance", type=int, default=2, choices=(0, 1, 2))
    p_gw.add_argument(
        "--engine",
        choices=("columnar", "columnar-pruned", "object"),
        default="columnar",
        help="query engine for cache misses (object is invalid for "
        "sharded snapshots)",
    )
    p_gw.add_argument(
        "--shards",
        type=int,
        default=None,
        help="when building in process: candidate shards for "
        "scatter-gather batches (ignored with --snapshot, which carries "
        "its own layout)",
    )
    p_gw.add_argument("--cache-size", type=int, default=1024)
    p_gw.add_argument(
        "--rate-limit",
        type=float,
        default=50.0,
        help="per-client token-bucket refill rate in requests/second "
        "(0 disables rate limiting)",
    )
    p_gw.add_argument(
        "--burst",
        type=float,
        default=100.0,
        help="token-bucket capacity (burst size) per client",
    )
    p_gw.add_argument(
        "--max-batch-needs",
        type=int,
        default=256,
        help="largest accepted /v1/query/batch request",
    )
    p_gw.set_defaults(func=_cmd_serve)

    p_lint = sub.add_parser(
        "lint",
        help="run the repo's custom static-analysis rules "
        "(determinism, fork-safety, mmap discipline, ...)",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src tests benchmarks)",
    )
    p_lint.add_argument(
        "--format", choices=["text", "json"], default="text", dest="format"
    )
    p_lint.add_argument(
        "--cache",
        default=".repro_lint_cache.json",
        help="per-file verdict cache path (default: %(default)s)",
    )
    p_lint.add_argument(
        "--no-cache", action="store_true", help="disable the verdict cache"
    )
    p_lint.add_argument(
        "--exclude",
        action="append",
        help="additional path substring to skip (repeatable)",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_exp = sub.add_parser("experiments", help="reproduce the paper's tables/figures")
    _add_dataset_args(p_exp)
    p_exp.add_argument(
        "--only",
        help=f"comma-separated subset of: {', '.join(_EXPERIMENTS)}",
    )
    p_exp.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
