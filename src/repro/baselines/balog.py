"""Balog's generative expert-finding models (Models 1 and 2).

Balog, *People Search in the Enterprise* (2008) — the paper's reference
[3] — formalizes expert finding as estimating ``p(q | candidate)``:

**Model 1 (candidate model).** Build one language model per candidate
by pooling the candidate's associated documents, then smooth with the
collection model::

    p(t | θ_ca) = (1 − λ) · Σ_d  p(t | d) · a(d, ca)  +  λ · p(t)
    score(ca)   = Σ_t  n(t, q) · log p(t | θ_ca)

**Model 2 (document model).** Documents generate the query; candidates
aggregate their documents::

    p(q | ca) = Σ_d  a(d, ca) · Π_t ((1 − λ) p(t | d) + λ p(t))^n(t, q)

In the enterprise setting the document–candidate association ``a(d,
ca)`` must be mined from text; in the social setting it is explicit —
exactly the paper's point — so we reuse the Table-1 evidence with the
same distance weights ``wr``, normalized per candidate.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from scipy.special import logsumexp

from repro.core.need import ExpertiseNeed
from repro.core.ranking import ExpertScore
from repro.core.scoring import distance_weight
from repro.index.analyzer import AnalyzedResource, ResourceAnalyzer
from repro.socialgraph.distance import ResourceGatherer, evidence_text
from repro.socialgraph.graph import SocialGraph

_INDEXABLE_LANGUAGES = frozenset({"en", "und"})
_LOG_FLOOR = -700.0  # below exp() underflow; stands in for log(0)


@dataclass(frozen=True)
class BalogConfig:
    """Parameters shared by both Balog models."""

    #: Jelinek–Mercer smoothing weight of the collection model
    smoothing: float = 0.5
    #: maximum evidence distance (same semantics as FinderConfig)
    max_distance: int = 2
    #: wr interval for the association strength a(d, ca)
    weight_interval: tuple[float, float] = (0.5, 1.0)
    include_friends: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.smoothing < 1.0:
            raise ValueError("smoothing must be in (0, 1)")
        if not 0 <= self.max_distance <= 2:
            raise ValueError("max_distance must be in 0..2")


class _BalogBase:
    """Shared construction: gather evidence, normalize associations,
    accumulate collection statistics."""

    def __init__(
        self,
        analyzer: ResourceAnalyzer,
        config: BalogConfig,
        documents: dict[str, AnalyzedResource],
        associations: dict[str, dict[str, float]],
    ):
        self._analyzer = analyzer
        self._config = config
        self._documents = documents
        self._associations = associations  # candidate → {doc → a(d, ca)}
        self._doc_lengths = {
            doc_id: max(1, analysis.length) for doc_id, analysis in documents.items()
        }
        self._collection_counts: dict[str, int] = {}
        total = 0
        for analysis in documents.values():
            for term, count in analysis.term_counts.items():
                self._collection_counts[term] = (
                    self._collection_counts.get(term, 0) + count
                )
                total += count
        self._collection_total = max(1, total)

    @classmethod
    def build(
        cls,
        graph: SocialGraph,
        candidates: Mapping[str, Sequence[str]] | Sequence[str],
        analyzer: ResourceAnalyzer,
        config: BalogConfig | None = None,
        *,
        corpus: Mapping[str, AnalyzedResource] | None = None,
    ):
        """Assemble a Balog finder over the same inputs ExpertFinder
        takes (graph + candidate map + analyzer [+ shared corpus])."""
        config = config or BalogConfig()
        if not candidates:
            raise ValueError("candidates must be non-empty")
        if isinstance(candidates, Mapping):
            seeds = {cid: tuple(pids) for cid, pids in candidates.items()}
        else:
            seeds = {pid: (pid,) for pid in candidates}
        gatherer = ResourceGatherer(graph, include_friends=config.include_friends)
        documents: dict[str, AnalyzedResource] = {}
        associations: dict[str, dict[str, float]] = {}
        for candidate_id, profile_ids in seeds.items():
            node_distance: dict[str, int] = {}
            for profile_id in profile_ids:
                for item in gatherer.gather(profile_id, config.max_distance):
                    prev = node_distance.get(item.node_id)
                    if prev is None or item.distance < prev:
                        node_distance[item.node_id] = item.distance
                    if item.node_id not in documents:
                        analysis = corpus.get(item.node_id) if corpus else None
                        if analysis is None:
                            analysis = analyzer.analyze(
                                item.node_id, evidence_text(graph, item)
                            )
                        documents[item.node_id] = analysis
            weights = {
                node_id: distance_weight(
                    distance, config.max_distance, config.weight_interval
                )
                for node_id, distance in node_distance.items()
                if documents[node_id].language in _INDEXABLE_LANGUAGES
            }
            total = sum(weights.values())
            if total > 0:
                associations[candidate_id] = {
                    node_id: weight / total for node_id, weight in weights.items()
                }
        documents = {
            doc_id: analysis
            for doc_id, analysis in documents.items()
            if analysis.language in _INDEXABLE_LANGUAGES
        }
        return cls(analyzer, config, documents, associations)

    # -- shared probability pieces -----------------------------------------------

    def _p_term_collection(self, term: str) -> float:
        return self._collection_counts.get(term, 0) / self._collection_total

    def _p_term_document(self, term: str, doc_id: str) -> float:
        analysis = self._documents[doc_id]
        return analysis.term_counts.get(term, 0) / self._doc_lengths[doc_id]

    def _query_terms(self, need: ExpertiseNeed | str) -> dict[str, int]:
        """Query term counts, restricted to the collection vocabulary —
        out-of-vocabulary terms have zero probability under every model
        and would floor all candidates equally (standard LM practice is
        to drop them)."""
        text = need.text if isinstance(need, ExpertiseNeed) else need
        analysis = self._analyzer.analyze("__query__", text, language="en")
        return {
            term: count
            for term, count in analysis.term_counts.items()
            if self._collection_counts.get(term, 0) > 0
        }

    def _rank(self, log_scores: dict[str, float]) -> list[ExpertScore]:
        """Shift log-likelihoods into positive scores and sort. Scores
        are exp-normalized against the best candidate, so the top expert
        gets 1.0 and the rest fall off proportionally — positive as
        ExpertScore requires, and monotone in the log-likelihood."""
        if not log_scores:
            return []
        best = max(log_scores.values())
        ranked = [
            ExpertScore(
                candidate_id=cid,
                score=math.exp(max(value - best, _LOG_FLOOR)),
                supporting_resources=len(self._associations.get(cid, ())),
            )
            for cid, value in log_scores.items()
            if value > _LOG_FLOOR
        ]
        ranked.sort(key=lambda e: (-e.score, e.candidate_id))
        return ranked


class CandidateModelFinder(_BalogBase):
    """Balog Model 1: a pooled, smoothed language model per candidate."""

    def find_experts(
        self, need: ExpertiseNeed | str, *, top_k: int | None = None
    ) -> list[ExpertScore]:
        query = self._query_terms(need)
        if not query:
            return []
        lam = self._config.smoothing
        log_scores: dict[str, float] = {}
        for candidate_id, assoc in self._associations.items():
            total = 0.0
            matched = False
            for term, count in query.items():
                p_doc_mix = sum(
                    self._p_term_document(term, doc_id) * a
                    for doc_id, a in assoc.items()
                )
                p_term = (1 - lam) * p_doc_mix + lam * self._p_term_collection(term)
                if p_doc_mix > 0:
                    matched = True
                total += count * (math.log(p_term) if p_term > 0 else _LOG_FLOOR)
            # candidates with zero query-term mass everywhere stay out of
            # EX, mirroring score(q, ce) > 0 in the paper's formulation
            if matched:
                log_scores[candidate_id] = total
        return self._rank(log_scores)[:top_k]


class DocumentModelFinder(_BalogBase):
    """Balog Model 2: documents generate the query; candidates sum
    their documents' likelihoods (log-sum-exp for stability)."""

    def find_experts(
        self, need: ExpertiseNeed | str, *, top_k: int | None = None
    ) -> list[ExpertScore]:
        query = self._query_terms(need)
        if not query:
            return []
        lam = self._config.smoothing
        # per-document log p(q | d), computed once and reused across
        # candidates sharing the document
        log_p_q_doc: dict[str, float] = {}

        def doc_loglik(doc_id: str) -> float:
            cached = log_p_q_doc.get(doc_id)
            if cached is not None:
                return cached
            total = 0.0
            for term, count in query.items():
                p = (1 - lam) * self._p_term_document(term, doc_id) + lam * (
                    self._p_term_collection(term)
                )
                total += count * (math.log(p) if p > 0 else _LOG_FLOOR)
            log_p_q_doc[doc_id] = total
            return total

        log_scores: dict[str, float] = {}
        for candidate_id, assoc in self._associations.items():
            matched = any(
                self._documents[doc_id].term_counts.get(term, 0) > 0
                for doc_id in assoc
                for term in query
            )
            if not matched:
                continue
            parts = [
                doc_loglik(doc_id) + math.log(a)
                for doc_id, a in assoc.items()
                if a > 0
            ]
            if parts:
                log_scores[candidate_id] = float(logsumexp(parts))
        return self._rank(log_scores)[:top_k]
