"""The classic profile-matching baseline.

"The classic approach to this problem consists in profiling the group
members, matching textual queries against such profiles, and ranking
members according to the matching" (paper Sec. 1). This baseline does
exactly that: TF-IDF vectors over profile text only, cosine similarity
against the query — no behavioural trace at all.

It differs from the paper's distance-0 configuration in the similarity
function (length-normalized cosine vs. Eq. 1's unnormalized dot
product), making it a genuinely independent comparator.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.core.need import ExpertiseNeed
from repro.core.ranking import ExpertScore
from repro.index.analyzer import AnalyzedResource, ResourceAnalyzer
from repro.socialgraph.graph import SocialGraph


class ProfileTfidfFinder:
    """Cosine TF-IDF over candidate profiles."""

    def __init__(
        self,
        analyzer: ResourceAnalyzer,
        profile_vectors: dict[str, dict[str, float]],
        idf: dict[str, float],
    ):
        self._analyzer = analyzer
        self._vectors = profile_vectors
        self._idf = idf

    @classmethod
    def build(
        cls,
        graph: SocialGraph,
        candidates: Mapping[str, Sequence[str]] | Sequence[str],
        analyzer: ResourceAnalyzer,
        *,
        corpus: Mapping[str, AnalyzedResource] | None = None,
    ) -> "ProfileTfidfFinder":
        """Vectorize each candidate's (possibly multi-platform) profile
        text."""
        if not candidates:
            raise ValueError("candidates must be non-empty")
        if isinstance(candidates, Mapping):
            seeds = {cid: tuple(pids) for cid, pids in candidates.items()}
        else:
            seeds = {pid: (pid,) for pid in candidates}

        raw_counts: dict[str, dict[str, int]] = {}
        for candidate_id, profile_ids in seeds.items():
            counts: dict[str, int] = {}
            for profile_id in profile_ids:
                analysis = corpus.get(profile_id) if corpus else None
                if analysis is None:
                    profile = graph.profile(profile_id)
                    analysis = analyzer.analyze(
                        profile_id, f"{profile.display_name} {profile.text}"
                    )
                for term, count in analysis.term_counts.items():
                    counts[term] = counts.get(term, 0) + count
            raw_counts[candidate_id] = counts

        document_frequency: dict[str, int] = {}
        for counts in raw_counts.values():
            for term in counts:
                document_frequency[term] = document_frequency.get(term, 0) + 1
        n = max(1, len(raw_counts))
        idf = {
            term: math.log(1 + n / df) for term, df in document_frequency.items()
        }
        vectors = {
            cid: {term: count * idf[term] for term, count in counts.items()}
            for cid, counts in raw_counts.items()
        }
        return cls(analyzer, vectors, idf)

    def find_experts(
        self, need: ExpertiseNeed | str, *, top_k: int | None = None
    ) -> list[ExpertScore]:
        """Rank candidates by cosine similarity of profile to query."""
        text = need.text if isinstance(need, ExpertiseNeed) else need
        analysis = self._analyzer.analyze("__query__", text, language="en")
        query_vector = {
            term: count * self._idf.get(term, 0.0)
            for term, count in analysis.term_counts.items()
        }
        query_norm = math.sqrt(sum(w * w for w in query_vector.values()))
        if query_norm == 0.0:
            return []
        ranked = []
        for candidate_id, vector in self._vectors.items():
            dot = sum(
                weight * vector.get(term, 0.0) for term, weight in query_vector.items()
            )
            norm = math.sqrt(sum(w * w for w in vector.values()))
            if dot > 0 and norm > 0:
                ranked.append(
                    ExpertScore(
                        candidate_id=candidate_id,
                        score=dot / (norm * query_norm),
                        supporting_resources=1,
                    )
                )
        ranked.sort(key=lambda e: (-e.score, e.candidate_id))
        return ranked[:top_k]
