"""Comparison baselines from the expert-finding literature.

The paper positions its method against the classic *enterprise* expert
retrieval line of work — notably Balog's probabilistic generative
models (reference [3], the TREC Expert Finding standard) — and against
the "classic approach" of matching queries to static profiles (Sec. 1).
This package implements those comparators over the same social data:

* :class:`CandidateModelFinder` — Balog **Model 1**: one smoothed
  language model per candidate, built from all associated documents;
* :class:`DocumentModelFinder` — Balog **Model 2**: documents generate
  the query, candidates aggregate their documents' likelihoods;
* :class:`ProfileTfidfFinder` — the classic profile-only TF-IDF cosine
  matcher the paper's introduction argues against.

All three expose the same ``find_experts(need)`` API as
:class:`repro.core.ExpertFinder`, so the evaluation harness can score
them interchangeably (see ``benchmarks/bench_baseline_comparison.py``).
"""

from repro.baselines.balog import BalogConfig, CandidateModelFinder, DocumentModelFinder
from repro.baselines.profile_tfidf import ProfileTfidfFinder

__all__ = [
    "BalogConfig",
    "CandidateModelFinder",
    "DocumentModelFinder",
    "ProfileTfidfFinder",
]
