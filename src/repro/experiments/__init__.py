"""Experiment drivers — one module per table/figure of the paper.

Each driver consumes an :class:`ExperimentContext` (dataset + runner +
random baseline, shared across experiments) and returns a structured
result object with a ``render()`` method producing the paper-style
table/series text. The benchmark suite wraps these drivers; the
``examples/reproduce_paper.py`` script runs them all.

| module              | reproduces                                        |
|----------------------|---------------------------------------------------|
| ``fig5_dataset``     | Fig. 5a/5b dataset distributions                  |
| ``fig6_window``      | Fig. 6 window-size sweep                          |
| ``fig7_alpha``       | Fig. 7 α sweep                                    |
| ``tab2_fig8_friends``| Table 2 + Fig. 8 Twitter-friends experiment       |
| ``tab3_fig9_networks``| Table 3 + Fig. 9 distance/network contribution   |
| ``tab4_domains``     | Table 4 per-domain breakdown                      |
| ``fig10_trust``      | Fig. 10 per-user F1 vs. available resources       |
| ``fig11_delta``      | Fig. 11 Δ of retrieved experts                    |
| ``ablations``        | design-choice ablations (DESIGN.md Sec. 5)        |
"""

from repro.experiments.context import ExperimentContext

__all__ = ["ExperimentContext"]
