"""Fig. 10 — trustworthiness of social information.

For each candidate, the F1 of the system's per-query expert predictions
(candidate ∈ returned list vs. candidate ∈ ground-truth experts) is
related to the amount of social information the candidate exposes.
Expected shape: a positive correlation between the number of available
resources and prediction quality, a handful of users near F1 = 0 (the
flagship/private accounts), and some above 0.7.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats as scipy_stats

from repro.core.config import FinderConfig
from repro.evaluation.metrics import mean
from repro.experiments.context import ExperimentContext


@dataclass(frozen=True)
class UserTrust:
    """One point of the Fig.-10 scatter."""

    person_id: str
    f1: float
    resources: int


@dataclass
class Fig10Result:
    users: list[UserTrust]
    #: least-squares slope of F1 on resource count
    regression_slope: float
    regression_intercept: float
    pearson_r: float

    @property
    def average_f1(self) -> float:
        return mean([u.f1 for u in self.users])

    @property
    def median_f1(self) -> float:
        ordered = sorted(u.f1 for u in self.users)
        n = len(ordered)
        middle = n // 2
        return ordered[middle] if n % 2 else (ordered[middle - 1] + ordered[middle]) / 2

    def count_above(self, threshold: float) -> int:
        return sum(1 for u in self.users if u.f1 > threshold)

    def count_unreliable(self, threshold: float = 0.05) -> int:
        """Users the system essentially cannot assess."""
        return sum(1 for u in self.users if u.f1 <= threshold)

    def render(self) -> str:
        lines = ["Fig. 10 — per-user F1 vs available resources"]
        lines.append(f"{'user':<12} {'F1':>6} {'#resources':>11}")
        for user in self.users:
            lines.append(f"{user.person_id:<12} {user.f1:>6.3f} {user.resources:>11}")
        lines.append(
            f"avg F1 {self.average_f1:.3f}, median {self.median_f1:.3f},"
            f" >0.70: {self.count_above(0.70)},"
            f" unreliable: {self.count_unreliable()}"
        )
        lines.append(
            f"regression: F1 ≈ {self.regression_slope:.2e}·resources"
            f" + {self.regression_intercept:.3f} (pearson r = {self.pearson_r:.3f})"
        )
        return "\n".join(lines)


def run(context: ExperimentContext) -> Fig10Result:
    """Compute per-user F1 under the final configuration (All, d = 2)."""
    config = FinderConfig()
    result = context.runner.run(None, config)
    finder = context.runner.finder(None, config)
    f1_by_user = result.user_f1(context.dataset.person_ids)
    users = [
        UserTrust(
            person_id=pid,
            f1=f1_by_user[pid],
            resources=finder.evidence_count(pid),
        )
        for pid in context.dataset.person_ids
    ]
    xs = [float(u.resources) for u in users]
    ys = [u.f1 for u in users]
    if len(set(xs)) > 1:
        regression = scipy_stats.linregress(xs, ys)
        slope, intercept, r = regression.slope, regression.intercept, regression.rvalue
    else:
        slope, intercept, r = 0.0, mean(ys), 0.0
    return Fig10Result(
        users=users,
        regression_slope=slope,
        regression_intercept=intercept,
        pearson_r=r,
    )
