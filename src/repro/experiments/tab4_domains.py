"""Table 4 — per-domain breakdown.

For each of the seven domains, each network selection, and each resource
distance, reports MAP, MRR, and NDCG@10 over the domain's queries only.
Expected shape: Twitter leads in computer engineering, science, sport,
and technology & games; Facebook is strong in location, music, sport,
and movies & tv; LinkedIn is competitive only at distance 0 for
computer engineering (career profiles).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FinderConfig
from repro.evaluation.reports import domain_table
from repro.evaluation.runner import MetricsSummary
from repro.experiments.context import ExperimentContext
from repro.experiments.tab3_fig9_networks import NETWORKS
from repro.synthetic.vocab import DOMAINS


@dataclass
class Tab4Result:
    #: domain → network label → distance → summary
    table: dict[str, dict[str, dict[int, MetricsSummary]]]

    def summary(self, domain: str, network: str, distance: int) -> MetricsSummary:
        return self.table[domain][network][distance]

    def best_network(self, domain: str, distance: int, metric: str = "map") -> str:
        """The network with the highest *metric* for (domain, distance)."""
        candidates = {
            network: getattr(per_distance[distance], metric)
            for network, per_distance in self.table[domain].items()
            if network != "All"
        }
        return max(candidates, key=candidates.get)

    def render(self) -> str:
        parts = ["Table 4 — per-domain metrics"]
        for metric in ("map", "mrr", "ndcg_at_10"):
            parts.append(domain_table(self.table, metric=metric))
        return "\n\n".join(parts)


def run(context: ExperimentContext) -> Tab4Result:
    """Run the 84 (7 domains × 4 networks × 3 distances) cells.

    Reuses full-query-set runs per (network, distance) and slices them by
    domain, exactly as the paper derives Table 4 from the same runs as
    Table 3.
    """
    table: dict[str, dict[str, dict[int, MetricsSummary]]] = {
        d: {label: {} for _, label in NETWORKS} for d in DOMAINS
    }
    for platform, label in NETWORKS:
        for distance in (0, 1, 2):
            result = context.runner.run(platform, FinderConfig(max_distance=distance))
            for domain, domain_result in result.by_domain().items():
                table[domain][label][distance] = domain_result.summary()
    return Tab4Result(table=table)
