"""Fig. 11 — differential number of retrieved experts.

For every query and resource distance, Δ = |EX| − |ground-truth
experts|: negative when the system under-retrieves (not enough evidence
reaches the candidates), positive when it over-retrieves. Expected
shape: strongly negative at distance 0 (profiles barely match),
approaching and crossing 0 as the distance grows — more resources, more
retrieved experts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FinderConfig
from repro.evaluation.metrics import mean
from repro.experiments.context import ExperimentContext


@dataclass
class Fig11Result:
    #: distance → per-query Δ, in query order (q01..q30)
    deltas: dict[int, list[int]]

    def average_delta(self, distance: int) -> float:
        return mean([float(d) for d in self.deltas[distance]])

    def under_represented(self, distance: int, threshold: int = -3) -> int:
        """Queries clearly under-retrieving at this distance."""
        return sum(1 for d in self.deltas[distance] if d <= threshold)

    def over_represented(self, distance: int, threshold: int = 3) -> int:
        return sum(1 for d in self.deltas[distance] if d >= threshold)

    def render(self) -> str:
        lines = ["Fig. 11 — Δ(retrieved − expected experts) per query"]
        lines.append("query  " + "  ".join(f"d{d:>4}" for d in sorted(self.deltas)))
        n = len(next(iter(self.deltas.values())))
        for i in range(n):
            row = "  ".join(f"{self.deltas[d][i]:>5}" for d in sorted(self.deltas))
            lines.append(f"q{i + 1:02d}    {row}")
        lines.append(
            "avg    "
            + "  ".join(f"{self.average_delta(d):5.1f}" for d in sorted(self.deltas))
        )
        return "\n".join(lines)


def run(context: ExperimentContext) -> Fig11Result:
    """Compute the per-query Δ for distances 0, 1, 2."""
    deltas: dict[int, list[int]] = {}
    for distance in (0, 1, 2):
        result = context.runner.run(None, FinderConfig(max_distance=distance))
        deltas[distance] = result.expert_deltas()
    return Fig11Result(deltas=deltas)
