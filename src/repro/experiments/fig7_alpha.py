"""Fig. 7 — sensitivity to the α parameter.

α balances keyword matching (α = 1) against entity matching (α = 0) in
Eq. 1. The sweep runs α from 0 to 1 in steps of 0.1 at distances 0, 1,
and 2 (window = 100). Expected shape: α = 0 collapses at distance 0
(profiles yield few, poorly disambiguated entities), and the metrics
plateau for α ∈ [0.3, 0.8] — which is why the paper fixes α = 0.6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FinderConfig
from repro.evaluation.runner import MetricsSummary
from repro.experiments.context import ExperimentContext

ALPHA_GRID: tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(11))


@dataclass
class Fig7Result:
    #: distance → alpha → summary
    sweeps: dict[int, dict[float, MetricsSummary]]
    baseline: MetricsSummary
    metric_names: tuple[str, ...] = ("map", "mrr", "ndcg", "ndcg_at_10")

    def series(self, metric: str, distance: int) -> list[float]:
        return [getattr(s, metric) for s in self.sweeps[distance].values()]

    def plateau_spread(self, metric: str, distance: int) -> float:
        """Max−min of *metric* over α ∈ [0.3, 0.8] — the stability the
        paper reads off the figure."""
        values = [
            getattr(s, metric)
            for a, s in self.sweeps[distance].items()
            if 0.3 <= a <= 0.8
        ]
        return max(values) - min(values)

    def render(self) -> str:
        lines = ["Fig. 7 — metrics vs α (window = 100)"]
        lines.append("dist  metric    " + "  ".join(f"{a:>5.1f}" for a in ALPHA_GRID))
        for distance, per_alpha in self.sweeps.items():
            for metric in self.metric_names:
                cells = "  ".join(f"{getattr(s, metric):5.3f}" for s in per_alpha.values())
                lines.append(f"   {distance}  {metric:<8}  {cells}")
        lines.append(
            "random  map=%.3f mrr=%.3f ndcg=%.3f ndcg@10=%.3f" % self.baseline.as_row()
        )
        return "\n".join(lines)


def run(context: ExperimentContext, *, window: int = 100) -> Fig7Result:
    """Run the α sweep at distances 0, 1, and 2."""
    sweeps: dict[int, dict[float, MetricsSummary]] = {}
    for distance in (0, 1, 2):
        per_alpha: dict[float, MetricsSummary] = {}
        for alpha in ALPHA_GRID:
            config = FinderConfig(alpha=alpha, window=window, max_distance=distance)
            per_alpha[alpha] = context.runner.run(None, config).summary()
        sweeps[distance] = per_alpha
    return Fig7Result(sweeps=sweeps, baseline=context.baseline)
