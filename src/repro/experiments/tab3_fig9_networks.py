"""Table 3 + Fig. 9 — contribution of resource distance and of each
social network.

Evaluates {All, Facebook, Twitter, LinkedIn} × distance {0, 1, 2} with
the paper's final parameters (window = 100, α = 0.6), against the
random baseline. Expected shape: distance 0 below random; distances 1
and 2 well above it; Twitter-at-2 the strongest single configuration;
LinkedIn the weakest network.

Fig. 9 is the 11-point precision/recall and DCG view of the "All"
rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FinderConfig
from repro.evaluation.reports import metrics_table
from repro.evaluation.runner import MetricsSummary
from repro.experiments.context import ExperimentContext
from repro.socialgraph.metamodel import Platform

NETWORKS: tuple[tuple[Platform | None, str], ...] = (
    (None, "All"),
    (Platform.FACEBOOK, "FB"),
    (Platform.TWITTER, "TW"),
    (Platform.LINKEDIN, "LI"),
)
DCG_CUTS: tuple[int, ...] = (5, 10, 15, 20)


@dataclass
class Tab3Result:
    #: (network label, distance) → summary
    table: dict[tuple[str, int], MetricsSummary]
    #: distance → 11-point curve for the "All" configuration
    eleven_point_all: dict[int, tuple[float, ...]]
    #: distance → DCG curve for the "All" configuration
    dcg_all: dict[int, tuple[float, ...]]
    baseline: MetricsSummary
    baseline_eleven: tuple[float, ...]
    baseline_dcg: tuple[float, ...]

    def summary(self, network: str, distance: int) -> MetricsSummary:
        return self.table[(network, distance)]

    def render(self) -> str:
        rows = {"Random": self.baseline}
        for (network, distance), summary in self.table.items():
            rows[f"{network} d{distance}"] = summary
        out = [metrics_table(rows, title="Table 3 — networks × distance")]
        out.append("")
        out.append("Fig. 9b — DCG (All) at cut-offs " + str(DCG_CUTS))
        out.append(f"{'Random':<12} " + "  ".join(f"{v:7.2f}" for v in self.baseline_dcg))
        for distance, curve in self.dcg_all.items():
            out.append(f"{f'distance {distance}':<12} " + "  ".join(f"{v:7.2f}" for v in curve))
        return "\n".join(out)


def run(context: ExperimentContext) -> Tab3Result:
    """Run the 12 configurations of Table 3."""
    table: dict[tuple[str, int], MetricsSummary] = {}
    eleven_all: dict[int, tuple[float, ...]] = {}
    dcg_all: dict[int, tuple[float, ...]] = {}
    for platform, label in NETWORKS:
        for distance in (0, 1, 2):
            result = context.runner.run(platform, FinderConfig(max_distance=distance))
            table[(label, distance)] = result.summary()
            if platform is None:
                eleven_all[distance] = result.eleven_point_curve()
                dcg_all[distance] = result.dcg_curve(DCG_CUTS)
    baseline_eleven, baseline_dcg = context.baseline_curves(DCG_CUTS)
    return Tab3Result(
        table=table,
        eleven_point_all=eleven_all,
        dcg_all=dcg_all,
        baseline=context.baseline,
        baseline_eleven=baseline_eleven,
        baseline_dcg=baseline_dcg,
    )
