"""Ablations of the design choices called out in DESIGN.md Sec. 5.

The paper fixes several modelling decisions without ablating them; these
experiments quantify each one on the final configuration (All networks,
distance 2, window = 100, α = 0.6):

* **idf exponent** — Eq. 1 squares irf/eirf; compare linear idf.
* **score normalization** — Eq. 3 deliberately does not normalize by the
  number of supporting resources; compare the normalized variant.
* **wr decay** — the paper fixes ``wr`` linear over [0.5, 1]; compare a
  constant weight (no distance discount) and a steeper [0.1, 1] decay.
* **entity weight** — Eq. 2 boosts entities by 1 + dScore; compare
  ignoring the disambiguation confidence (idf-only entity scoring is
  obtained with a [1, 1]-style flat weight, approximated by α = 1 term
  matching vs the full model).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FinderConfig
from repro.evaluation.reports import metrics_table
from repro.evaluation.runner import MetricsSummary
from repro.experiments.context import ExperimentContext


@dataclass
class AblationResult:
    #: variant label → summary; "paper" is the reference configuration
    table: dict[str, MetricsSummary]

    def delta_map(self, variant: str) -> float:
        """MAP difference of *variant* against the paper configuration."""
        return self.table[variant].map - self.table["paper"].map

    def render(self) -> str:
        return metrics_table(self.table, title="Ablations (All networks, distance 2)")


VARIANTS: dict[str, FinderConfig] = {
    "paper": FinderConfig(),
    "linear idf": FinderConfig(idf_exponent=1.0),
    "normalized scores": FinderConfig(normalize=True),
    "constant wr": FinderConfig(weight_interval=(1.0, 1.0)),
    "steep wr [0.1,1]": FinderConfig(weight_interval=(0.1, 1.0)),
    "terms only (α=1)": FinderConfig(alpha=1.0),
    "entities only (α=0)": FinderConfig(alpha=0.0),
    "no window": FinderConfig(window=None),
}


def run(context: ExperimentContext) -> AblationResult:
    """Evaluate every ablation variant on the full query set."""
    table = {
        label: context.runner.run(None, config).summary()
        for label, config in VARIANTS.items()
    }
    return AblationResult(table=table)
