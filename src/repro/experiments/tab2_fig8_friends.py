"""Table 2 + Fig. 8 — do Twitter friends' resources help?

Compares the Twitter configuration (window = 100, α = 0.6) at distances
1 and 2, with and without traversing friendship (mutual-follow) edges.
The paper's conclusion: a modest ~1% gain at distance 1, slightly worse
MAP/NDCG at distance 2 — so friends are excluded from the final method.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FinderConfig
from repro.evaluation.reports import metrics_table
from repro.evaluation.runner import EvaluationResult, MetricsSummary
from repro.experiments.context import ExperimentContext
from repro.socialgraph.metamodel import Platform

DCG_CUTS: tuple[int, ...] = (5, 10, 15, 20)


@dataclass
class Tab2Result:
    #: (distance, include_friends) → summary
    table: dict[tuple[int, bool], MetricsSummary]
    #: (distance, include_friends) → 11-point interpolated precision
    eleven_point: dict[tuple[int, bool], tuple[float, ...]]
    #: (distance, include_friends) → DCG at the Fig.-8b cut-offs
    dcg_curves: dict[tuple[int, bool], tuple[float, ...]]
    baseline: MetricsSummary
    baseline_eleven: tuple[float, ...]
    baseline_dcg: tuple[float, ...]

    def render(self) -> str:
        rows = {"Random": self.baseline}
        for (distance, friends), summary in self.table.items():
            rows[f"dist {distance} friends={'Y' if friends else 'N'}"] = summary
        out = [metrics_table(rows, title="Table 2 — Twitter friend relationships")]
        out.append("")
        out.append("Fig. 8b — DCG at cut-offs " + str(DCG_CUTS))
        out.append(f"{'Random':<22} " + "  ".join(f"{v:7.2f}" for v in self.baseline_dcg))
        for key, curve in self.dcg_curves.items():
            label = f"dist {key[0]} friends={'Y' if key[1] else 'N'}"
            out.append(f"{label:<22} " + "  ".join(f"{v:7.2f}" for v in curve))
        return "\n".join(out)


def run(context: ExperimentContext) -> Tab2Result:
    """Run the four Twitter configurations of Table 2."""
    table: dict[tuple[int, bool], MetricsSummary] = {}
    eleven: dict[tuple[int, bool], tuple[float, ...]] = {}
    dcg_curves: dict[tuple[int, bool], tuple[float, ...]] = {}
    for distance in (1, 2):
        for friends in (False, True):
            config = FinderConfig(max_distance=distance, include_friends=friends)
            result: EvaluationResult = context.runner.run(Platform.TWITTER, config)
            key = (distance, friends)
            table[key] = result.summary()
            eleven[key] = result.eleven_point_curve()
            dcg_curves[key] = result.dcg_curve(DCG_CUTS)
    baseline_eleven, baseline_dcg = context.baseline_curves(DCG_CUTS)
    return Tab2Result(
        table=table,
        eleven_point=eleven,
        dcg_curves=dcg_curves,
        baseline=context.baseline,
        baseline_eleven=baseline_eleven,
        baseline_dcg=baseline_dcg,
    )
