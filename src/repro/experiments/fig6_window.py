"""Fig. 6 — effect of the window size.

Sweeps the window over 1%–10% of the matching resources, at resource
distances 1 and 2 with α = 0.5, and also evaluates the fixed
100-resource window the paper finally adopts (the dashed vertical lines
in the figure). Expected shape: MAP and NDCG grow with the window,
MRR and NDCG@10 stay roughly flat.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import FinderConfig
from repro.evaluation.runner import MetricsSummary
from repro.experiments.context import ExperimentContext

#: fractions of matching resources swept by the figure
WINDOW_FRACTIONS: tuple[float, ...] = (0.01, 0.02, 0.04, 0.06, 0.08, 0.10)


@dataclass
class Fig6Result:
    #: distance → window fraction → summary
    sweeps: dict[int, dict[float, MetricsSummary]]
    #: distance → summary at the fixed 100-resource window
    fixed_100: dict[int, MetricsSummary]
    baseline: MetricsSummary
    metric_names: tuple[str, ...] = ("map", "mrr", "ndcg", "ndcg_at_10")

    def series(self, metric: str, distance: int) -> list[float]:
        """One curve of the figure: *metric* over the window fractions."""
        return [getattr(s, metric) for s in self.sweeps[distance].values()]

    def render(self) -> str:
        lines = ["Fig. 6 — metrics vs window size (α = 0.5)"]
        header = "dist  metric    " + "  ".join(f"{f:>5.0%}" for f in WINDOW_FRACTIONS) + "   @100"
        lines.append(header)
        for distance, per_fraction in self.sweeps.items():
            for metric in self.metric_names:
                cells = "  ".join(
                    f"{getattr(s, metric):5.3f}" for s in per_fraction.values()
                )
                fixed = getattr(self.fixed_100[distance], metric)
                lines.append(f"   {distance}  {metric:<8}  {cells}  {fixed:6.3f}")
        lines.append(
            "random  map=%.3f mrr=%.3f ndcg=%.3f ndcg@10=%.3f" % self.baseline.as_row()
        )
        return "\n".join(lines)


def run(context: ExperimentContext, *, alpha: float = 0.5) -> Fig6Result:
    """Run the window sweep at distances 1 and 2."""
    sweeps: dict[int, dict[float, MetricsSummary]] = {}
    fixed: dict[int, MetricsSummary] = {}
    for distance in (1, 2):
        per_fraction: dict[float, MetricsSummary] = {}
        for fraction in WINDOW_FRACTIONS:
            config = FinderConfig(alpha=alpha, window=fraction, max_distance=distance)
            per_fraction[fraction] = context.runner.run(None, config).summary()
        sweeps[distance] = per_fraction
        fixed[distance] = context.runner.run(
            None, FinderConfig(alpha=alpha, window=100, max_distance=distance)
        ).summary()
    return Fig6Result(sweeps=sweeps, fixed_100=fixed, baseline=context.baseline)
