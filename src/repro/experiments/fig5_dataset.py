"""Fig. 5 — evaluation dataset distributions.

* **5a**: per social network, the number of expert candidates and the
  number of distinct resources reachable at distance 0, 1, and 2.
* **5b**: per domain, the number of experts, the average expertise of
  the whole population, and the average expertise of the experts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import ExperimentContext
from repro.socialgraph.distance import ResourceGatherer
from repro.socialgraph.metamodel import Platform
from repro.synthetic.ground_truth import DomainStats
from repro.synthetic.vocab import DOMAIN_LABELS, DOMAINS


@dataclass(frozen=True)
class NetworkDistribution:
    """One bar group of Fig. 5a."""

    network: str
    candidates: int
    resources_by_distance: tuple[int, int, int]

    @property
    def total_resources(self) -> int:
        return sum(self.resources_by_distance)


@dataclass
class Fig5Result:
    distributions: list[NetworkDistribution]
    domain_stats: list[DomainStats]
    avg_experts_per_domain: float
    avg_expertise: float

    def render(self) -> str:
        lines = ["Fig. 5a — resources and candidates per social network"]
        lines.append(f"{'network':<10} {'cand.':>6} {'dist0':>8} {'dist1':>8} {'dist2':>8} {'total':>8}")
        for dist in self.distributions:
            d0, d1, d2 = dist.resources_by_distance
            lines.append(
                f"{dist.network:<10} {dist.candidates:>6} {d0:>8} {d1:>8} {d2:>8}"
                f" {dist.total_resources:>8}"
            )
        lines.append("")
        lines.append("Fig. 5b — experts and expertise per domain")
        lines.append(f"{'domain':<24} {'experts':>8} {'avg exp.':>9} {'avg dom. exp.':>14}")
        for stats in self.domain_stats:
            lines.append(
                f"{DOMAIN_LABELS[stats.domain]:<24} {stats.expert_count:>8}"
                f" {stats.average_expertise:>9.2f} {stats.average_domain_expertise:>14.2f}"
            )
        lines.append(
            f"overall: avg {self.avg_experts_per_domain:.1f} experts/domain,"
            f" avg expertise {self.avg_expertise:.2f}"
        )
        return "\n".join(lines)


def run(context: ExperimentContext) -> Fig5Result:
    """Compute the Fig.-5 dataset statistics."""
    dataset = context.dataset
    distributions: list[NetworkDistribution] = []
    for platform in Platform:
        graph = dataset.graphs[platform]
        gatherer = ResourceGatherer(graph)
        candidates = dataset.candidates_for(platform)
        by_distance = [set(), set(), set()]
        for profile_ids in candidates.values():
            for pid in profile_ids:
                for item in gatherer.gather(pid, 2):
                    by_distance[item.distance].add(item.node_id)
        # a node reachable at several distances counts once, at its
        # minimum (gather already guarantees per-candidate minimality;
        # across candidates we keep the global minimum)
        seen: set[str] = set()
        counts = []
        for bucket in by_distance:
            fresh = bucket - seen
            counts.append(len(fresh))
            seen |= fresh
        distributions.append(
            NetworkDistribution(
                network=platform.short,
                candidates=len(candidates),
                resources_by_distance=(counts[0], counts[1], counts[2]),
            )
        )
    stats = [dataset.ground_truth.domain_stats(d) for d in DOMAINS]
    overall = dataset.ground_truth.overall_stats()
    return Fig5Result(
        distributions=distributions,
        domain_stats=stats,
        avg_experts_per_domain=overall["avg_experts_per_domain"],
        avg_expertise=overall["avg_expertise"],
    )
