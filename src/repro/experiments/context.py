"""Shared state for the experiment drivers.

Building the dataset and the per-configuration finders dominates the
cost of the reproduction, so all drivers share one context. The scale
can be forced through the ``REPRO_SCALE`` environment variable
(``tiny`` / ``small`` / ``paper``); benchmarks default to ``small``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache

from repro.evaluation.baselines import random_baseline, random_curves
from repro.evaluation.runner import ExperimentRunner, MetricsSummary
from repro.synthetic.dataset import DatasetScale, EvaluationDataset, build_dataset

#: default master seed of the reproduction
DEFAULT_SEED = 7


def scale_from_env(default: DatasetScale = DatasetScale.SMALL) -> DatasetScale:
    """The dataset scale selected by ``REPRO_SCALE``, or *default*."""
    value = os.environ.get("REPRO_SCALE", "").strip().lower()
    if not value:
        return default
    try:
        return DatasetScale(value)
    except ValueError:
        valid = ", ".join(s.value for s in DatasetScale)
        raise ValueError(f"REPRO_SCALE must be one of {valid}, got {value!r}") from None


@dataclass
class ExperimentContext:
    """Dataset + runner + cached random baseline."""

    dataset: EvaluationDataset
    runner: ExperimentRunner
    _baseline: MetricsSummary | None = field(default=None, repr=False)

    @classmethod
    def create(
        cls, scale: DatasetScale | None = None, seed: int = DEFAULT_SEED
    ) -> "ExperimentContext":
        dataset = build_dataset(scale or scale_from_env(), seed)
        return cls(dataset=dataset, runner=ExperimentRunner(dataset))

    @property
    def baseline(self) -> MetricsSummary:
        """The paper's random baseline (10 runs × 20 users per query)."""
        if self._baseline is None:
            self._baseline = random_baseline(
                self.dataset.person_ids,
                self.dataset.queries,
                self.dataset.ground_truth,
                seed=self.dataset.seed,
            )
        return self._baseline

    def baseline_curves(
        self, dcg_ks: tuple[int, ...] = (5, 10, 15, 20)
    ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """(11-point precision, DCG curve) of the random baseline."""
        return random_curves(
            self.dataset.person_ids,
            self.dataset.queries,
            self.dataset.ground_truth,
            seed=self.dataset.seed,
            dcg_ks=dcg_ks,
        )


@lru_cache(maxsize=2)
def shared_context(scale_value: str = "", seed: int = DEFAULT_SEED) -> ExperimentContext:
    """Process-wide context cache (keyed by scale string to stay
    hashable); used by the benchmark suite."""
    scale = DatasetScale(scale_value) if scale_value else scale_from_env()
    return ExperimentContext.create(scale, seed)
