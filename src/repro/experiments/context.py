"""Shared state for the experiment drivers.

Building the dataset and the per-configuration finders dominates the
cost of the reproduction, so all drivers share one context. The scale
can be forced through the ``REPRO_SCALE`` environment variable
(``tiny`` / ``small`` / ``paper``); benchmarks default to ``small``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

from repro.evaluation.baselines import random_baseline, random_curves
from repro.evaluation.runner import ExperimentRunner, MetricsSummary
from repro.synthetic.dataset import DatasetScale, EvaluationDataset, build_dataset

#: default master seed of the reproduction
DEFAULT_SEED = 7


def scale_from_env(default: DatasetScale = DatasetScale.SMALL) -> DatasetScale:
    """The dataset scale selected by ``REPRO_SCALE``, or *default*."""
    value = os.environ.get("REPRO_SCALE", "").strip().lower()
    if not value:
        return default
    try:
        return DatasetScale(value)
    except ValueError:
        valid = ", ".join(s.value for s in DatasetScale)
        raise ValueError(f"REPRO_SCALE must be one of {valid}, got {value!r}") from None


def workers_from_env(default: int = 1) -> int:
    """The cold-build worker count selected by ``REPRO_WORKERS``, or
    *default*. Sharding only affects build speed, never results."""
    value = os.environ.get("REPRO_WORKERS", "").strip()
    if not value:
        return default
    try:
        workers = int(value)
    except ValueError:
        raise ValueError(
            f"REPRO_WORKERS must be a positive integer, got {value!r}"
        ) from None
    if workers < 1:
        raise ValueError(f"REPRO_WORKERS must be >= 1, got {workers}")
    return workers


@dataclass
class ExperimentContext:
    """Dataset + runner + cached random baseline."""

    dataset: EvaluationDataset
    runner: ExperimentRunner
    _baseline: MetricsSummary | None = field(default=None, repr=False)

    @classmethod
    def create(
        cls,
        scale: DatasetScale | None = None,
        seed: int = DEFAULT_SEED,
        workers: int | None = None,
    ) -> "ExperimentContext":
        """Build the context; *workers* (default: ``REPRO_WORKERS``, else
        serial) shards the dataset's corpus-analysis stage, so every
        experiment sweeping this context benefits from the parallel
        cold build without any result change."""
        dataset = build_dataset(
            scale or scale_from_env(),
            seed,
            workers=workers if workers is not None else workers_from_env(),
        )
        return cls(dataset=dataset, runner=ExperimentRunner(dataset))

    @property
    def baseline(self) -> MetricsSummary:
        """The paper's random baseline (10 runs × 20 users per query)."""
        if self._baseline is None:
            self._baseline = random_baseline(
                self.dataset.person_ids,
                self.dataset.queries,
                self.dataset.ground_truth,
                seed=self.dataset.seed,
            )
        return self._baseline

    def baseline_curves(
        self, dcg_ks: tuple[int, ...] = (5, 10, 15, 20)
    ) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """(11-point precision, DCG curve) of the random baseline."""
        return random_curves(
            self.dataset.person_ids,
            self.dataset.queries,
            self.dataset.ground_truth,
            seed=self.dataset.seed,
            dcg_ks=dcg_ks,
        )


@lru_cache(maxsize=2)
def _shared_context(scale: DatasetScale, seed: int) -> ExperimentContext:
    return ExperimentContext.create(scale, seed)


class _SharedContext:
    """Process-wide context cache; used by the benchmark suite.

    The ``REPRO_SCALE`` environment variable is resolved to a concrete
    :class:`DatasetScale` *before* the cache lookup — caching on the raw
    string (where ``""`` means "whatever the env says") would keep
    returning a context built at a stale scale after the env changes.

    A callable class rather than attributes monkey-patched onto a
    function: ``cache_clear``/``cache_info`` (which the tests and REPL
    users rely on) are real, typed methods delegating to the underlying
    ``lru_cache``.
    """

    def __call__(
        self, scale_value: str = "", seed: int = DEFAULT_SEED
    ) -> ExperimentContext:
        scale = DatasetScale(scale_value) if scale_value else scale_from_env()
        return _shared_context(scale, seed)

    def cache_clear(self) -> None:
        _shared_context.cache_clear()

    def cache_info(self) -> Any:
        return _shared_context.cache_info()


shared_context = _SharedContext()
