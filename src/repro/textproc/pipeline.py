"""The composed text-analysis flow of paper Fig. 4 (language-dependent part).

``TextPipeline`` takes raw resource text and produces an ``AnalyzedText``:
the identified language, the normalized (sanitized) text used downstream
by the entity annotator, and the stemmed, stop-word-free term list used
by the term index.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.textproc.langid import LanguageIdentifier
from repro.textproc.sanitizer import sanitize
from repro.textproc.stemmer import PorterStemmer
from repro.textproc.stopwords import stopwords_for
from repro.textproc.tokenizer import tokenize


@dataclass(frozen=True)
class AnalyzedText:
    """Output of the text pipeline for one resource (or one query)."""

    language: str
    clean_text: str
    tokens: tuple[str, ...]
    terms: tuple[str, ...]

    @property
    def is_english(self) -> bool:
        return self.language == "en"


class TextPipeline:
    """Sanitize → identify language → tokenize → stop-words → stem.

    Only English gets stemmed (Porter is English-specific); other
    languages get stop-word removal only, which is enough because the
    system drops non-English resources before indexing (paper Sec. 3.1).

    >>> pipe = TextPipeline()
    >>> out = pipe.analyze("Just finished 30min freestyle training at the swimming pool!")
    >>> out.language
    'en'
    >>> 'swim' in out.terms
    True
    """

    def __init__(self, identifier: LanguageIdentifier | None = None):
        self._identifier = identifier or LanguageIdentifier()
        self._stemmer = PorterStemmer()
        # Short texts repeat heavily across a social corpus; memoize stems.
        self._stem = lru_cache(maxsize=65536)(self._stemmer.stem)

    def analyze(self, text: str, *, language: str | None = None) -> AnalyzedText:
        """Run the full flow on raw *text*.

        Pass *language* to skip identification (used when the platform
        already annotates the resource language).
        """
        clean = sanitize(text)
        lang = language if language is not None else self._identifier.identify(clean)
        tokens = tuple(tokenize(clean))
        # texts too short to identify ("und") are processed as English:
        # the indexed corpus is English-only, and unstemmed fragments
        # would otherwise never match stemmed query terms
        processing_lang = "en" if lang == LanguageIdentifier.UNKNOWN else lang
        stop = stopwords_for(processing_lang)
        content = (t for t in tokens if t not in stop)
        if processing_lang == "en":
            terms = tuple(self._stem(t) for t in content)
        else:
            terms = tuple(content)
        return AnalyzedText(language=lang, clean_text=clean, tokens=tokens, terms=terms)
