"""The Porter stemming algorithm (Porter, 1980), implemented from scratch.

This is the classic 5-step suffix-stripping stemmer used by the paper's
"Text Processing" stage. The implementation follows the original paper's
rule tables and measure definition exactly; behaviour is pinned by the
unit tests against the published examples.
"""

from __future__ import annotations

_VOWELS = frozenset("aeiou")


class PorterStemmer:
    """Stateless Porter stemmer; one instance can be shared freely.

    >>> stem = PorterStemmer().stem
    >>> stem("caresses")
    'caress'
    >>> stem("relational")
    'relat'
    >>> stem("swimming")
    'swim'
    """

    def stem(self, word: str) -> str:
        """Return the stem of *word* (expected lowercase)."""
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        return self._step5b(word)

    # -- Porter's (m, *v*, *d, *o) conditions ------------------------------

    @staticmethod
    def _is_consonant(word: str, i: int) -> bool:
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            return i == 0 or not PorterStemmer._is_consonant(word, i - 1)
        return True

    @classmethod
    def _measure(cls, stem: str) -> int:
        """The measure m of a stem: the number of VC sequences."""
        m = 0
        prev_vowel = False
        for i in range(len(stem)):
            consonant = cls._is_consonant(stem, i)
            if consonant and prev_vowel:
                m += 1
            prev_vowel = not consonant
        return m

    @classmethod
    def _contains_vowel(cls, stem: str) -> bool:
        return any(not cls._is_consonant(stem, i) for i in range(len(stem)))

    @classmethod
    def _ends_double_consonant(cls, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and cls._is_consonant(word, len(word) - 1)
        )

    @classmethod
    def _ends_cvc(cls, word: str) -> bool:
        """*o: stem ends consonant-vowel-consonant, final cons. not w/x/y."""
        if len(word) < 3:
            return False
        return (
            cls._is_consonant(word, len(word) - 3)
            and not cls._is_consonant(word, len(word) - 2)
            and cls._is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy"
        )

    # -- rule application ---------------------------------------------------

    @classmethod
    def _replace(cls, word: str, suffix: str, repl: str, m_min: int) -> str | None:
        """If *word* ends with *suffix* and the stem measure > m_min,
        return the replaced word; None if the suffix does not match."""
        if not word.endswith(suffix):
            return None
        stem = word[: len(word) - len(suffix)]
        if cls._measure(stem) > m_min:
            return stem + repl
        return word

    # -- steps --------------------------------------------------------------

    @staticmethod
    def _step1a(word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    @classmethod
    def _step1b(cls, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            return word[:-1] if cls._measure(stem) > 0 else word
        flag = False
        if word.endswith("ed") and cls._contains_vowel(word[:-2]):
            word, flag = word[:-2], True
        elif word.endswith("ing") and cls._contains_vowel(word[:-3]):
            word, flag = word[:-3], True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if cls._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if cls._measure(word) == 1 and cls._ends_cvc(word):
                return word + "e"
        return word

    @classmethod
    def _step1c(cls, word: str) -> str:
        if word.endswith("y") and cls._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_RULES = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"), ("ousli", "ous"),
        ("ization", "ize"), ("ation", "ate"), ("ator", "ate"),
        ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"),
        ("biliti", "ble"),
    )

    @classmethod
    def _step2(cls, word: str) -> str:
        for suffix, repl in cls._STEP2_RULES:
            result = cls._replace(word, suffix, repl, 0)
            if result is not None:
                return result
        return word

    _STEP3_RULES = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    @classmethod
    def _step3(cls, word: str) -> str:
        for suffix, repl in cls._STEP3_RULES:
            result = cls._replace(word, suffix, repl, 0)
            if result is not None:
                return result
        return word

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    @classmethod
    def _step4(cls, word: str) -> str:
        if word.endswith("ion") and len(word) > 3 and word[-4] in "st":
            stem = word[:-3]
            return stem if cls._measure(stem) > 1 else word
        for suffix in cls._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: len(word) - len(suffix)]
                return stem if cls._measure(stem) > 1 else word
        return word

    @classmethod
    def _step5a(cls, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = cls._measure(stem)
            if m > 1 or (m == 1 and not cls._ends_cvc(stem)):
                return stem
        return word

    @classmethod
    def _step5b(cls, word: str) -> str:
        if word.endswith("ll") and cls._measure(word) > 1:
            return word[:-1]
        return word
