"""Tokenization of sanitized text.

The tokenizer is deliberately simple and language-agnostic: lowercased
word tokens built from letter/digit runs, with apostrophe handling for
English clitics ("don't" → "don", "t" would lose information, so we keep
the leading part only when the suffix is a known clitic).
"""

from __future__ import annotations

import re

_TOKEN_RE = re.compile(r"[^\W_]+(?:'[^\W_]+)?", re.UNICODE)
_CLITICS = {"s", "t", "re", "ve", "ll", "d", "m"}


def tokenize(text: str, *, min_length: int = 1, max_length: int = 64) -> list[str]:
    """Split *text* into lowercase word tokens.

    Tokens shorter than *min_length* or longer than *max_length* are
    dropped (over-long tokens are almost always junk: hashes, DNA-like
    strings, concatenation artifacts).

    >>> tokenize("Michael Phelps is the best! Great freestyle gold medal")
    ['michael', 'phelps', 'is', 'the', 'best', 'great', 'freestyle', 'gold', 'medal']
    >>> tokenize("don't")
    ['don']
    """
    tokens: list[str] = []
    for match in _TOKEN_RE.finditer(text.lower()):
        token = match.group(0)
        if "'" in token:
            head, _, tail = token.partition("'")
            token = head if tail in _CLITICS else head + tail
        if min_length <= len(token) <= max_length:
            tokens.append(token)
    return tokens


def ngrams(tokens: list[str], n: int) -> list[tuple[str, ...]]:
    """Return the contiguous *n*-grams over *tokens* (used by the entity
    spotter for multi-word anchor matching).

    >>> ngrams(["a", "b", "c"], 2)
    [('a', 'b'), ('b', 'c')]
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]
