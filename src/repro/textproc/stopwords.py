"""Stop-word lists for the languages handled by the analysis pipeline.

Lists are intentionally compact (high-frequency function words only):
the paper's pipeline uses stop-word removal as standard IR preprocessing,
not as a linguistic resource.
"""

from __future__ import annotations

_ENGLISH = frozenset(
    """a about above after again against all am an and any are aren as at be
    because been before being below between both but by can cannot could
    couldn did didn do does doesn doing don down during each few for from
    further had hadn has hasn have haven having he her here hers herself him
    himself his how i if in into is isn it its itself just me more most
    mustn my myself no nor not now of off on once only or other our ours
    ourselves out over own same shan she should shouldn so some such than
    that the their theirs them themselves then there these they this those
    through to too under until up very was wasn we were weren what when
    where which while who whom why will with won would wouldn you your yours
    yourself yourselves""".split()
)

_ITALIAN = frozenset(
    """a ad al alla alle allo anche avere aveva c che chi ci come con cosa
    cui da dal dalla de degli dei del della delle dello di dove e ed era
    essere fa fra gli ha hanno ho i il in io l la le lei li lo loro lui ma
    mi mia mio ne nei nel nella no noi non nostro o per perche piu quale
    quando quello questa questo qui se sei si sia sono su sua sue sui sul
    sulla suo te ti tra tu tua tuo un una uno vi voi""".split()
)

_SPANISH = frozenset(
    """a al algo ante antes como con contra cual cuando de del desde donde
    durante e el ella ellas ellos en entre era es esa ese eso esta este
    esto estos fue ha han hasta hay la las le les lo los mas me mi mientras
    muy nada ni no nos nosotros o os otra otro para pero poco por porque
    que quien se ser si sin sobre son su sus te tiene todo tu tus un una
    uno unos vosotros y ya yo""".split()
)

_FRENCH = frozenset(
    """a au aux avec ce ces dans de des du elle elles en est et eux il ils
    je la le les leur lui ma mais me meme mes moi mon ne nos notre nous on
    ou par pas pour qu que qui sa se ses son sur ta te tes toi ton tu un
    une vos votre vous c d j l m n s t y etre avoir fait plus tout""".split()
)

_GERMAN = frozenset(
    """aber alle als also am an auch auf aus bei bin bis bist da damit dann
    das dass dein deine dem den der des dessen die dies diese dir doch dort
    du durch ein eine einem einen einer eines er es euer eure fur hatte
    hatten hattest hier hinter ich ihr ihre im in ist ja jede jedem jeden
    jeder jedes jener kann kein konnen machen mein meine mit muss nach
    nicht nichts noch nun nur ob oder ohne sehr sein seine sich sie sind
    so und uns unser unter vom von vor wann warum was weiter weitere wenn
    wer werde werden wie wieder will wir wird wirst wo zu zum zur""".split()
)

_BY_LANGUAGE: dict[str, frozenset[str]] = {
    "en": _ENGLISH,
    "it": _ITALIAN,
    "es": _SPANISH,
    "fr": _FRENCH,
    "de": _GERMAN,
}


def stopwords_for(language: str) -> frozenset[str]:
    """Return the stop-word set for an ISO-639-1 *language* code.

    Unknown languages get an empty set (no removal) rather than an error,
    because the pipeline must degrade gracefully on misidentified text.

    >>> "the" in stopwords_for("en")
    True
    >>> stopwords_for("zz")
    frozenset()
    """
    return _BY_LANGUAGE.get(language, frozenset())


def supported_languages() -> tuple[str, ...]:
    """Languages with a stop-word list, in stable order."""
    return tuple(sorted(_BY_LANGUAGE))
