"""Character-n-gram language identification (Cavnar & Trenkle, 1994).

The paper's pipeline classifies every resource by its main language and
keeps only English text. We implement the classic rank-order profile
method: a language profile is the frequency-ranked list of character
1–3-grams; a document is classified by the minimal "out-of-place"
distance between its profile and each language profile.

Profiles are trained from compact built-in seed texts, which is accurate
enough to separate the five supported European languages on the short,
noisy resources this system processes. Scores are exposed so callers can
apply a confidence threshold.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.textproc.stopwords import stopwords_for

_SEED_TEXTS: dict[str, str] = {
    "en": (
        "the quick brown fox jumps over the lazy dog and the people of the "
        "world know that this is the best way to learn about the things "
        "that happen every day when we are looking for answers to all of "
        "our questions about life science sport music and technology there "
        "is always someone who can help you find what you need because "
        "sharing knowledge with other people is one of the most important "
        "things that we can do together in this great community of friends"
    ),
    "it": (
        "la volpe veloce salta sopra il cane pigro e tutte le persone del "
        "mondo sanno che questo e il modo migliore per imparare le cose che "
        "succedono ogni giorno quando cerchiamo le risposte alle nostre "
        "domande sulla vita la scienza lo sport la musica e la tecnologia "
        "ce sempre qualcuno che puo aiutarti a trovare quello che ti serve "
        "perche condividere la conoscenza con gli altri e una delle cose "
        "piu importanti che possiamo fare insieme in questa grande comunita"
    ),
    "es": (
        "el zorro veloz salta sobre el perro perezoso y toda la gente del "
        "mundo sabe que esta es la mejor manera de aprender sobre las cosas "
        "que pasan cada dia cuando buscamos respuestas a todas nuestras "
        "preguntas sobre la vida la ciencia el deporte la musica y la "
        "tecnologia siempre hay alguien que puede ayudarte a encontrar lo "
        "que necesitas porque compartir el conocimiento con otras personas "
        "es una de las cosas mas importantes que podemos hacer juntos"
    ),
    "fr": (
        "le renard rapide saute par dessus le chien paresseux et tous les "
        "gens du monde savent que cest la meilleure facon dapprendre les "
        "choses qui arrivent chaque jour quand nous cherchons des reponses "
        "a toutes nos questions sur la vie la science le sport la musique "
        "et la technologie il y a toujours quelquun qui peut vous aider a "
        "trouver ce dont vous avez besoin parce que partager la "
        "connaissance avec les autres est une des choses les plus "
        "importantes que nous pouvons faire ensemble dans cette communaute"
    ),
    "de": (
        "der schnelle braune fuchs springt uber den faulen hund und alle "
        "menschen der welt wissen dass dies der beste weg ist um uber die "
        "dinge zu lernen die jeden tag passieren wenn wir nach antworten "
        "auf alle unsere fragen uber das leben die wissenschaft den sport "
        "die musik und die technologie suchen es gibt immer jemanden der "
        "dir helfen kann das zu finden was du brauchst denn das teilen von "
        "wissen mit anderen menschen ist eines der wichtigsten dinge die "
        "wir zusammen in dieser grossen gemeinschaft tun konnen"
    ),
}

_PROFILE_SIZE = 300
_MAX_NGRAM = 3


def _char_ngrams(text: str) -> Counter[str]:
    """Count padded character 1..3-grams of the word tokens in *text*."""
    counts: Counter[str] = Counter()
    for word in text.lower().split():
        if not word.isalpha():
            word = "".join(ch for ch in word if ch.isalpha())
            if not word:
                continue
        padded = f" {word} "
        for n in range(1, _MAX_NGRAM + 1):
            for i in range(len(padded) - n + 1):
                counts[padded[i : i + n]] += 1
    return counts


@dataclass(frozen=True)
class LanguageProfile:
    """A frequency-ranked n-gram profile for one language."""

    language: str
    ranks: dict[str, int] = field(repr=False)

    @classmethod
    def from_text(cls, language: str, text: str, size: int = _PROFILE_SIZE) -> "LanguageProfile":
        counts = _char_ngrams(text)
        top = [g for g, _ in counts.most_common(size)]
        return cls(language=language, ranks={g: i for i, g in enumerate(top)})

    def distance(self, document_profile: list[str]) -> int:
        """Out-of-place distance between this profile and a document's
        ranked n-gram list; unseen n-grams cost the maximum penalty."""
        max_penalty = len(self.ranks)
        total = 0
        for doc_rank, gram in enumerate(document_profile):
            lang_rank = self.ranks.get(gram)
            total += max_penalty if lang_rank is None else abs(lang_rank - doc_rank)
        return total


class LanguageIdentifier:
    """Classify short texts into one of the supported languages.

    >>> lid = LanguageIdentifier()
    >>> lid.identify("just finished thirty minutes of freestyle training at the pool")
    'en'
    >>> lid.identify("questa e una bella giornata per andare in piscina con gli amici")
    'it'
    """

    #: returned when the text carries too little signal to classify
    UNKNOWN = "und"

    def __init__(self, profiles: dict[str, str] | None = None, profile_size: int = _PROFILE_SIZE):
        seed = profiles if profiles is not None else _SEED_TEXTS
        self._profiles = [
            LanguageProfile.from_text(lang, text, profile_size)
            for lang, text in sorted(seed.items())
        ]

    @property
    def languages(self) -> tuple[str, ...]:
        return tuple(p.language for p in self._profiles)

    def scores(self, text: str) -> dict[str, float]:
        """Normalized similarity per language in [0, 1]; higher is better.

        Blends the n-gram profile similarity with function-word coverage
        (the fraction of tokens that are stop words of the language) —
        the n-gram signal alone is unreliable on content-word-heavy text
        such as professional profiles, where Latinate vocabulary mimics
        Romance-language character statistics.
        """
        counts = _char_ngrams(text)
        if not counts:
            return {p.language: 0.0 for p in self._profiles}
        doc_profile = [g for g, _ in counts.most_common(_PROFILE_SIZE)]
        worst = max(1, len(doc_profile) * _PROFILE_SIZE)
        tokens = [t for t in text.lower().split() if any(c.isalpha() for c in t)]
        out: dict[str, float] = {}
        for p in self._profiles:
            ngram_score = 1.0 - p.distance(doc_profile) / worst
            stop = stopwords_for(p.language)
            coverage = (
                sum(1 for t in tokens if t in stop) / len(tokens) if tokens else 0.0
            )
            out[p.language] = 0.5 * ngram_score + 0.5 * min(1.0, 3.0 * coverage)
        return out

    def identify(self, text: str, *, min_chars: int = 25) -> str:
        """Return the most likely ISO-639-1 code, or :data:`UNKNOWN` when
        *text* has fewer than *min_chars* alphabetic characters."""
        alpha = sum(1 for ch in text if ch.isalpha())
        if alpha < min_chars:
            return self.UNKNOWN
        scores = self.scores(text)
        return max(scores.items(), key=lambda kv: kv[1])[0]
