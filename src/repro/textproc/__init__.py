"""Text analysis substrate (paper Fig. 4).

Implements, from scratch, the language-dependent steps of the resource
analysis flow: sanitization, tokenization, stop-word removal, Porter
stemming, and character-n-gram language identification.

The composed flow lives in :mod:`repro.textproc.pipeline`.
"""

from repro.textproc.langid import LanguageIdentifier, LanguageProfile
from repro.textproc.pipeline import AnalyzedText, TextPipeline
from repro.textproc.sanitizer import sanitize
from repro.textproc.stemmer import PorterStemmer
from repro.textproc.stopwords import stopwords_for
from repro.textproc.tokenizer import tokenize

__all__ = [
    "AnalyzedText",
    "LanguageIdentifier",
    "LanguageProfile",
    "PorterStemmer",
    "TextPipeline",
    "sanitize",
    "stopwords_for",
    "tokenize",
]
