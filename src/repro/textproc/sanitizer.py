"""Sanitization of raw social-media text.

Social resources carry markup and platform artifacts that must be removed
before tokenization: HTML tags and entities, URLs, @-mentions, hashtag
markers (the tag word itself is kept, as it usually carries topic
information), and control characters.
"""

from __future__ import annotations

import html
import re
import unicodedata

_URL_RE = re.compile(r"""(?:https?://|www\.)[^\s<>"']+""", re.IGNORECASE)
_HTML_TAG_RE = re.compile(r"<[^>]{0,256}>")
_MENTION_RE = re.compile(r"(?<!\w)@\w{1,64}")
_HASHTAG_RE = re.compile(r"(?<!\w)#(\w{1,139})")
_RETWEET_RE = re.compile(r"(?<!\w)RT\s*:?\s+", re.UNICODE)
_WHITESPACE_RE = re.compile(r"\s+")


def strip_urls(text: str) -> str:
    """Remove URLs from *text* (their content is handled separately by
    :mod:`repro.extraction.url_content`)."""
    return _URL_RE.sub(" ", text)


def extract_urls(text: str) -> list[str]:
    """Return the URLs embedded in *text*, in order of appearance."""
    return _URL_RE.findall(text)


def strip_markup(text: str) -> str:
    """Remove HTML tags and decode HTML entities."""
    return html.unescape(_HTML_TAG_RE.sub(" ", text))


def strip_social_artifacts(text: str) -> str:
    """Remove platform artifacts: RT markers and @-mentions; unwrap hashtags
    so ``#freestyle`` contributes the term ``freestyle``."""
    text = _MENTION_RE.sub(" ", text)
    text = _RETWEET_RE.sub(" ", text)
    # unwrap nested markers ("##tag") to a fixpoint so sanitization is
    # idempotent
    while True:
        unwrapped = _HASHTAG_RE.sub(r"\1", text)
        if unwrapped == text:
            return text
        text = unwrapped


def strip_control_chars(text: str) -> str:
    """Drop non-printable/control characters, normalizing to NFC."""
    text = unicodedata.normalize("NFC", text)
    return "".join(ch for ch in text if unicodedata.category(ch)[0] != "C" or ch in "\t\n ")


def sanitize(text: str) -> str:
    """Run the full sanitization chain and collapse whitespace.

    >>> sanitize("RT @bob: <b>Great</b> #freestyle gold http://t.co/x !")
    'Great freestyle gold !'
    """
    # iterate to a fixpoint: decoding HTML entities can reveal new markup
    # ("&lt;b&gt;" → "<b>"), so one pass is not always enough
    for _ in range(4):
        previous = text
        text = strip_markup(text)
        text = strip_control_chars(text)
        text = strip_urls(text)
        text = strip_social_artifacts(text)
        text = _WHITESPACE_RE.sub(" ", text).strip()
        if text == previous:
            break
    return text
