"""Entity inverted index.

Symmetric to the term index, but each posting also carries the best
disambiguation confidence (``dScore``) with which the entity was
recognized in the document — the quantity Eq. 2 turns into the weight
``we(e, r) = 1 + dScore(e, r)``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class EntityPosting:
    """One document entry in an entity's postings list."""

    doc_id: str
    entity_frequency: int
    d_score: float

    def __post_init__(self) -> None:
        if self.entity_frequency <= 0:
            raise ValueError("entity_frequency must be positive")
        if not 0.0 <= self.d_score <= 1.0:
            raise ValueError(f"d_score must be in [0, 1], got {self.d_score}")


class EntityIndex:
    """Append-only entity → postings index."""

    def __init__(self) -> None:
        self._postings: dict[str, list[EntityPosting]] = {}
        self._doc_ids: set[str] = set()
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic write counter, bumped by every :meth:`add_document`
        and :meth:`merge`; same auto-invalidation contract as
        :attr:`repro.index.inverted.InvertedIndex.version`."""
        return self._version

    def add_document(self, doc_id: str, entity_counts: dict[str, tuple[int, float]]) -> None:
        """Index a document's entities: ``uri → (count, max dScore)``."""
        if doc_id in self._doc_ids:
            raise ValueError(f"document {doc_id!r} already indexed")
        self._doc_ids.add(doc_id)
        self._version += 1
        for uri, (count, d_score) in entity_counts.items():
            if count > 0:
                self._postings.setdefault(uri, []).append(
                    EntityPosting(doc_id, count, d_score)
                )

    @property
    def document_count(self) -> int:
        return len(self._doc_ids)

    @property
    def entity_count(self) -> int:
        return len(self._postings)

    def __contains__(self, uri: str) -> bool:
        return uri in self._postings

    def postings(self, uri: str) -> tuple[EntityPosting, ...]:
        return tuple(self._postings.get(uri, ()))

    def document_frequency(self, uri: str) -> int:
        return len(self._postings.get(uri, ()))

    def entities(self) -> tuple[str, ...]:
        return tuple(self._postings)

    def merge(self, other: "EntityIndex") -> None:
        """Append *other*'s postings into this index.

        Same contract as :meth:`repro.index.inverted.InvertedIndex.merge`:
        shard-order merging reproduces the serial postings order, a
        document present in both shards is an error, and the bumped
        :attr:`version` makes any
        :class:`~repro.index.statistics.CollectionStatistics` over this
        index refresh itself on its next read.
        """
        overlap = self._doc_ids & other._doc_ids
        if overlap:
            example = sorted(overlap)[0]
            raise ValueError(
                f"cannot merge: {len(overlap)} document(s) indexed by both "
                f"shards (e.g. {example!r})"
            )
        self._doc_ids |= other._doc_ids
        self._version += 1
        for uri, postings in other._postings.items():
            self._postings.setdefault(uri, []).extend(postings)

    # -- snapshot support ----------------------------------------------------------

    def doc_ids(self) -> frozenset[str]:
        """Every indexed document id (including entity-less documents)."""
        return frozenset(self._doc_ids)

    def items(self) -> Iterator[tuple[str, tuple[EntityPosting, ...]]]:
        """Iterate ``(uri, postings)`` pairs in index order."""
        for uri, postings in self._postings.items():
            yield uri, tuple(postings)

    @classmethod
    def restore(
        cls,
        doc_ids: Iterable[str],
        postings: Mapping[str, Sequence[EntityPosting]],
    ) -> "EntityIndex":
        """Rebuild an index from snapshot state, preserving postings
        order (which fixes the float summation order of retrieval)."""
        index = cls()
        index._doc_ids = set(doc_ids)
        for uri, plist in postings.items():
            for posting in plist:
                if posting.doc_id not in index._doc_ids:
                    raise ValueError(
                        f"posting for unknown document {posting.doc_id!r}"
                    )
            index._postings[uri] = list(plist)
        return index
