"""Vector-space resource retrieval — paper Eq. 1 and Eq. 2.

Given an analyzed expertise need *q* and the indexed collection, the
retriever computes, for each resource *r* touched by *q*'s terms or
entities::

    score(q, r) = α · Σ_t  tf(t, r) · irf(t)²
                + (1−α) · Σ_e  ef(e, r) · eirf(e)² · we(e, r)

with ``we(e, r) = 1 + dScore(e, r)`` when the entity was recognized with
positive confidence, 0 otherwise (Eq. 2). α balances keyword matching
against entity matching; the paper settles on α = 0.6 (Sec. 3.3.2).

The implementation is document-at-a-time over the union of the query's
postings lists, so cost scales with the number of matching resources,
not with the collection size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.analyzer import AnalyzedResource
from repro.index.entity_index import EntityIndex
from repro.index.inverted import InvertedIndex
from repro.index.statistics import CollectionStatistics


@dataclass(frozen=True)
class ResourceMatch:
    """One retrieved resource with its relevance breakdown."""

    doc_id: str
    score: float
    term_score: float
    entity_score: float


def entity_weight(d_score: float) -> float:
    """Eq. 2: ``we = 1 + dScore`` for a recognized entity.

    The annotator only emits entities with ``dScore > 0`` (ε-pruning), so
    the zero branch of Eq. 2 corresponds to entities absent from the
    resource, which simply contribute nothing to the sum.
    """
    if d_score < 0.0:
        raise ValueError(f"dScore must be non-negative, got {d_score}")
    return 1.0 + d_score if d_score > 0.0 else 0.0


class VectorSpaceRetriever:
    """Score and rank resources for an expertise need."""

    def __init__(
        self,
        term_index: InvertedIndex,
        entity_index: EntityIndex,
        statistics: CollectionStatistics | None = None,
        *,
        idf_exponent: float = 2.0,
    ):
        self._terms = term_index
        self._entities = entity_index
        self._stats = statistics or CollectionStatistics(term_index, entity_index)
        # Eq. 1 squares irf/eirf; the exponent is exposed for the
        # bench_ablation_scoring experiment.
        self._idf_exponent = idf_exponent

    @property
    def statistics(self) -> CollectionStatistics:
        return self._stats

    def add_document(self, analyzed: AnalyzedResource) -> None:
        """Append one document to both indexes (streaming updates) and
        invalidate the cached collection statistics."""
        self._terms.add_document(analyzed.doc_id, analyzed.term_counts)
        self._entities.add_document(analyzed.doc_id, analyzed.entity_counts)
        self._stats.invalidate()

    def retrieve(self, query: AnalyzedResource, alpha: float) -> list[ResourceMatch]:
        """All resources with positive score for *query*, best first.

        Ties are broken by doc id so rankings are fully deterministic.
        """
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        term_scores: dict[str, float] = {}
        entity_scores: dict[str, float] = {}

        if alpha > 0.0:
            for term in query.term_counts:
                weight = self._stats.irf(term) ** self._idf_exponent
                if weight == 0.0:
                    continue
                for posting in self._terms.postings(term):
                    term_scores[posting.doc_id] = (
                        term_scores.get(posting.doc_id, 0.0)
                        + posting.term_frequency * weight
                    )

        if alpha < 1.0:
            for uri in query.entity_counts:
                weight = self._stats.eirf(uri) ** self._idf_exponent
                if weight == 0.0:
                    continue
                for posting in self._entities.postings(uri):
                    entity_scores[posting.doc_id] = (
                        entity_scores.get(posting.doc_id, 0.0)
                        + posting.entity_frequency
                        * weight
                        * entity_weight(posting.d_score)
                    )

        matches = []
        for doc_id in term_scores.keys() | entity_scores.keys():
            t_score = term_scores.get(doc_id, 0.0)
            e_score = entity_scores.get(doc_id, 0.0)
            combined = alpha * t_score + (1.0 - alpha) * e_score
            if combined > 0.0:
                matches.append(
                    ResourceMatch(
                        doc_id=doc_id,
                        score=combined,
                        term_score=t_score,
                        entity_score=e_score,
                    )
                )
        matches.sort(key=lambda m: (-m.score, m.doc_id))
        return matches
