"""Vector-space resource retrieval — paper Eq. 1 and Eq. 2.

Given an analyzed expertise need *q* and the indexed collection, the
retriever computes, for each resource *r* touched by *q*'s terms or
entities::

    score(q, r) = α · Σ_t  tf(t, r) · irf(t)²
                + (1−α) · Σ_e  ef(e, r) · eirf(e)² · we(e, r)

with ``we(e, r) = 1 + dScore(e, r)`` when the entity was recognized with
positive confidence, 0 otherwise (Eq. 2). α balances keyword matching
against entity matching; the paper settles on α = 0.6 (Sec. 3.3.2).

The implementation is document-at-a-time over the union of the query's
postings lists, so cost scales with the number of matching resources,
not with the collection size. The per-posting products ``tf · irf²``
and ``ef · eirf² · we`` do not depend on the query, so they are
memoized per term/entity and invalidated together with the collection
statistics; :meth:`VectorSpaceRetriever.retrieve_top_k` additionally
replaces the full sort with a bounded heap for the serving hot path.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator
from dataclasses import dataclass

from repro.index.analyzer import AnalyzedResource
from repro.index.entity_index import EntityIndex
from repro.index.inverted import InvertedIndex
from repro.index.statistics import CollectionStatistics


@dataclass(frozen=True)
class ResourceMatch:
    """One retrieved resource with its relevance breakdown."""

    doc_id: str
    score: float
    term_score: float
    entity_score: float


def entity_weight(d_score: float) -> float:
    """Eq. 2: ``we = 1 + dScore`` for a recognized entity.

    The annotator only emits entities with ``dScore > 0`` (ε-pruning), so
    the zero branch of Eq. 2 corresponds to entities absent from the
    resource, which simply contribute nothing to the sum.
    """
    if d_score < 0.0:
        raise ValueError(f"dScore must be non-negative, got {d_score}")
    return 1.0 + d_score if d_score > 0.0 else 0.0


#: sort key shared by the full sort and the bounded heap, so
#: ``retrieve_top_k(q, α, k) == retrieve(q, α)[:k]`` holds exactly
def _match_order(match: ResourceMatch) -> tuple[float, str]:
    return (-match.score, match.doc_id)


class VectorSpaceRetriever:
    """Score and rank resources for an expertise need."""

    def __init__(
        self,
        term_index: InvertedIndex,
        entity_index: EntityIndex,
        statistics: CollectionStatistics | None = None,
        *,
        idf_exponent: float = 2.0,
    ):
        self._terms = term_index
        self._entities = entity_index
        self._stats = statistics or CollectionStatistics(term_index, entity_index)
        # Eq. 1 squares irf/eirf; the exponent is exposed for the
        # bench_ablation_scoring experiment.
        self._idf_exponent = idf_exponent
        # query-independent per-posting weights: term → ((doc, tf·irf^p)…)
        # and entity → ((doc, ef·eirf^p·we)…); valid only as long as the
        # collection statistics are, so both are invalidated together
        self._term_weights: dict[str, tuple[tuple[str, float], ...]] = {}
        self._entity_weights: dict[str, tuple[tuple[str, float], ...]] = {}
        self._versions = (term_index.version, entity_index.version)

    @property
    def statistics(self) -> CollectionStatistics:
        return self._stats

    @property
    def idf_exponent(self) -> float:
        """The exponent applied to irf/eirf in Eq. 1 (read-only use:
        engine compilation, which must repeat this retriever's float
        operations exactly)."""
        return self._idf_exponent

    @property
    def term_index(self) -> InvertedIndex:
        """The underlying term index (read-only use: snapshots, stats)."""
        return self._terms

    @property
    def entity_index(self) -> EntityIndex:
        """The underlying entity index (read-only use: snapshots, stats)."""
        return self._entities

    def invalidate(self) -> None:
        """Drop the collection statistics and the memoized per-posting
        weights. No longer required for correctness — every weight read
        compares the indexes' write versions and self-invalidates when
        documents were appended underneath (direct ``add_document`` on
        an index can never leave a stale irf observable)."""
        self._stats.invalidate()
        self._term_weights.clear()
        self._entity_weights.clear()

    def _refresh(self) -> None:
        versions = (self._terms.version, self._entities.version)
        if versions != self._versions:
            self._versions = versions
            self._term_weights.clear()
            self._entity_weights.clear()

    def add_document(self, analyzed: AnalyzedResource) -> None:
        """Append one document to both indexes (streaming updates) and
        invalidate the cached collection statistics."""
        self._terms.add_document(analyzed.doc_id, analyzed.term_counts)
        self._entities.add_document(analyzed.doc_id, analyzed.entity_counts)
        self.invalidate()

    # -- per-posting weight memoization -------------------------------------------

    def _weighted_term_postings(self, term: str) -> tuple[tuple[str, float], ...]:
        self._refresh()
        cached = self._term_weights.get(term)
        if cached is None:
            weight = self._stats.irf(term) ** self._idf_exponent
            if weight == 0.0:
                cached = ()
            else:
                cached = tuple(
                    (posting.doc_id, posting.term_frequency * weight)
                    for posting in self._terms.postings(term)
                )
            self._term_weights[term] = cached
        return cached

    def _weighted_entity_postings(self, uri: str) -> tuple[tuple[str, float], ...]:
        self._refresh()
        cached = self._entity_weights.get(uri)
        if cached is None:
            weight = self._stats.eirf(uri) ** self._idf_exponent
            if weight == 0.0:
                cached = ()
            else:
                cached = tuple(
                    (
                        posting.doc_id,
                        posting.entity_frequency
                        * weight
                        * entity_weight(posting.d_score),
                    )
                    for posting in self._entities.postings(uri)
                )
            self._entity_weights[uri] = cached
        return cached

    # -- retrieval -----------------------------------------------------------------

    def _matches(self, query: AnalyzedResource, alpha: float) -> Iterator[ResourceMatch]:
        """Accumulate Eq.-1 scores document-at-a-time; yields every
        resource with positive combined score, in no particular order."""
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        term_scores: dict[str, float] = {}
        entity_scores: dict[str, float] = {}

        if alpha > 0.0:
            for term in query.term_counts:
                for doc_id, weighted in self._weighted_term_postings(term):
                    term_scores[doc_id] = term_scores.get(doc_id, 0.0) + weighted

        if alpha < 1.0:
            for uri in query.entity_counts:
                for doc_id, weighted in self._weighted_entity_postings(uri):
                    entity_scores[doc_id] = entity_scores.get(doc_id, 0.0) + weighted

        # repro: lint-ok[determinism] every consumer re-sorts with the
        # total (-score, doc_id) key (_match_order), so emission order
        # here cannot reach a ranking
        for doc_id in term_scores.keys() | entity_scores.keys():
            t_score = term_scores.get(doc_id, 0.0)
            e_score = entity_scores.get(doc_id, 0.0)
            combined = alpha * t_score + (1.0 - alpha) * e_score
            if combined > 0.0:
                yield ResourceMatch(
                    doc_id=doc_id,
                    score=combined,
                    term_score=t_score,
                    entity_score=e_score,
                )

    def retrieve(self, query: AnalyzedResource, alpha: float) -> list[ResourceMatch]:
        """All resources with positive score for *query*, best first.

        Ties are broken by doc id so rankings are fully deterministic.
        """
        matches = list(self._matches(query, alpha))
        matches.sort(key=_match_order)
        return matches

    def retrieve_top_k(
        self, query: AnalyzedResource, alpha: float, k: int
    ) -> list[ResourceMatch]:
        """The best *k* resources for *query* — exactly
        ``retrieve(query, alpha)[:k]``, including the doc-id tie break,
        but selected with a bounded heap instead of a full sort, so the
        sort cost is O(n log k) over the n matching resources."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if k == 0:
            # still validates alpha, like the full retrieval would
            if not 0.0 <= alpha <= 1.0:
                raise ValueError(f"alpha must be in [0, 1], got {alpha}")
            return []
        return heapq.nsmallest(k, self._matches(query, alpha), key=_match_order)
