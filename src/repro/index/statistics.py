"""Collection statistics: the frequency functions of paper Eq. 1.

* ``tf(t, r)`` — term frequency of *t* in resource *r*;
* ``irf(t)``  — inverse resource frequency of *t* over the collection;
* ``ef(e, r)`` — entity frequency of *e* in *r*;
* ``eirf(e)`` — inverse resource frequency of *e* over the entity
  collection.

Both inverse frequencies use the smoothed logarithmic form
``log(1 + N / df)``, which is strictly positive for any indexed item
(an unseen item scores 0). The paper squares these values in Eq. 1;
the squaring lives in :mod:`repro.index.vsm`, keeping the statistics
reusable by the ablation benchmarks.
"""

from __future__ import annotations

import math

from repro.index.entity_index import EntityIndex
from repro.index.inverted import InvertedIndex


class CollectionStatistics:
    """Frequency statistics over one indexed resource collection."""

    def __init__(self, term_index: InvertedIndex, entity_index: EntityIndex):
        if term_index.document_count != entity_index.document_count:
            raise ValueError(
                "term and entity indexes must cover the same documents: "
                f"{term_index.document_count} != {entity_index.document_count}"
            )
        self._terms = term_index
        self._entities = entity_index
        self._irf_cache: dict[str, float] = {}
        self._eirf_cache: dict[str, float] = {}
        self._versions = (term_index.version, entity_index.version)

    @property
    def resource_count(self) -> int:
        return self._terms.document_count

    def invalidate(self) -> None:
        """Drop the cached irf/eirf values.

        Kept for explicit cache control, but no longer required for
        correctness: every read compares the indexes' write
        :attr:`~repro.index.inverted.InvertedIndex.version` counters and
        self-invalidates when documents were appended underneath —
        streaming updates change every document frequency ratio, and
        caller discipline is not a contract worth relying on."""
        self._irf_cache.clear()
        self._eirf_cache.clear()

    def _refresh(self) -> None:
        versions = (self._terms.version, self._entities.version)
        if versions != self._versions:
            self._versions = versions
            self.invalidate()

    def irf(self, term: str) -> float:
        """Inverse resource frequency of *term*; 0 for unseen terms."""
        self._refresh()
        cached = self._irf_cache.get(term)
        if cached is not None:
            return cached
        df = self._terms.document_frequency(term)
        value = math.log(1.0 + self.resource_count / df) if df else 0.0
        self._irf_cache[term] = value
        return value

    def eirf(self, entity_uri: str) -> float:
        """Inverse resource frequency of *entity_uri*; 0 for unseen
        entities."""
        self._refresh()
        cached = self._eirf_cache.get(entity_uri)
        if cached is not None:
            return cached
        df = self._entities.document_frequency(entity_uri)
        value = math.log(1.0 + self.resource_count / df) if df else 0.0
        self._eirf_cache[entity_uri] = value
        return value
