"""Parallel building blocks for the cold-build pipeline.

Two embarrassingly parallel stages dominate a cold build: analyzing raw
node text into :class:`AnalyzedResource` objects (Porter stemming +
entity annotation, pure CPU) and filling the two inverted indexes.
This module shards both across a ``ProcessPoolExecutor``:

* :func:`analyze_tasks` — run ``(doc_id, text, language)`` tasks through
  a :class:`ResourceAnalyzer`, chunked across workers, results returned
  in task order;
* :func:`build_indexes` — build per-chunk index shards and merge them
  (see :meth:`InvertedIndex.merge`) into one term + one entity index.

Determinism: the analyzer is a pure function of its input, chunks are
contiguous slices, and results are reassembled in submission order, so
the output is identical to the serial path no matter how many workers
run — ``workers=1`` short-circuits to the exact serial loop without
touching multiprocessing at all.

Worker processes are created with the ``fork`` start method so they
inherit the parent's analyzer (and its knowledge base) by copy-on-write
instead of pickling it. On platforms without ``fork`` an
*analyzer_factory* — a picklable zero-argument callable rebuilding an
equivalent analyzer — is required for parallel analysis; without one the
stage silently degrades to serial.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor

from repro.index.analyzer import AnalyzedResource, ResourceAnalyzer
from repro.index.entity_index import EntityIndex
from repro.index.inverted import InvertedIndex

#: one analysis task: (doc id, raw text, platform language annotation or None)
AnalysisTask = tuple[str, str, str | None]

#: default tasks per worker dispatch — large enough to amortize pickling,
#: small enough to load-balance a few thousand nodes over 4–16 workers
DEFAULT_CHUNK_SIZE = 256

#: analyzer inherited by fork-started workers (set just before the pool
#: is created, cleared right after; never used in the serial path)
_WORKER_ANALYZER: ResourceAnalyzer | None = None


def _check_pool_args(workers: int, chunk_size: int) -> None:
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")


def _chunked(items: Sequence, chunk_size: int) -> list[Sequence]:
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


def _init_worker_from_factory(factory: Callable[[], ResourceAnalyzer]) -> None:
    global _WORKER_ANALYZER
    _WORKER_ANALYZER = factory()


def _analyze_chunk(chunk: Sequence[AnalysisTask]) -> list[AnalyzedResource]:
    analyzer = _WORKER_ANALYZER
    if analyzer is None:  # pragma: no cover - misconfigured pool
        raise RuntimeError("worker has no analyzer (fork inheritance failed)")
    return [
        analyzer.analyze(doc_id, text, language=language)
        for doc_id, text, language in chunk
    ]


def analyze_tasks(
    analyzer: ResourceAnalyzer,
    tasks: Sequence[AnalysisTask],
    *,
    workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    analyzer_factory: Callable[[], ResourceAnalyzer] | None = None,
) -> list[AnalyzedResource]:
    """Analyze *tasks*, returning results in task order.

    ``workers=1`` (the default) runs the exact serial loop in-process.
    With more workers, contiguous chunks of *chunk_size* tasks are
    dispatched to a process pool; results are byte-identical to the
    serial run because the analyzer is deterministic and order is
    preserved.
    """
    _check_pool_args(workers, chunk_size)
    if workers == 1 or len(tasks) <= chunk_size:
        return [
            analyzer.analyze(doc_id, text, language=language)
            for doc_id, text, language in tasks
        ]

    global _WORKER_ANALYZER
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
        initializer, initargs = None, ()
    elif analyzer_factory is not None:  # pragma: no cover - non-fork platforms
        context = multiprocessing.get_context()
        initializer, initargs = _init_worker_from_factory, (analyzer_factory,)
    else:  # pragma: no cover - non-fork platforms
        # no way to get an analyzer into spawned workers: degrade to serial
        return analyze_tasks(analyzer, tasks, workers=1, chunk_size=chunk_size)

    _WORKER_ANALYZER = analyzer
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            results: list[AnalyzedResource] = []
            for chunk_result in pool.map(_analyze_chunk, _chunked(tasks, chunk_size)):
                results.extend(chunk_result)
            return results
    finally:
        _WORKER_ANALYZER = None


def _index_chunk(
    chunk: Sequence[tuple[str, dict[str, int], dict[str, tuple[int, float]]]],
) -> tuple[InvertedIndex, EntityIndex]:
    terms = InvertedIndex()
    entities = EntityIndex()
    for doc_id, term_counts, entity_counts in chunk:
        terms.add_document(doc_id, term_counts)
        entities.add_document(doc_id, entity_counts)
    return terms, entities


def build_indexes(
    documents: Sequence[AnalyzedResource],
    *,
    workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> tuple[InvertedIndex, EntityIndex]:
    """Index *documents* into a (term index, entity index) pair.

    ``workers=1`` fills both indexes serially; more workers build one
    shard pair per contiguous chunk in a process pool and merge the
    shards in chunk order, which reproduces the serial postings order
    exactly (see :meth:`InvertedIndex.merge`).
    """
    _check_pool_args(workers, chunk_size)
    payload = [(d.doc_id, d.term_counts, d.entity_counts) for d in documents]
    if workers == 1 or len(payload) <= chunk_size:
        return _index_chunk(payload)

    term_index = InvertedIndex()
    entity_index = EntityIndex()
    context = (
        multiprocessing.get_context("fork")
        if "fork" in multiprocessing.get_all_start_methods()
        else multiprocessing.get_context()
    )
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        for term_shard, entity_shard in pool.map(
            _index_chunk, _chunked(payload, chunk_size)
        ):
            term_index.merge(term_shard)
            entity_index.merge(entity_shard)
    return term_index, entity_index
