"""Candidate-sharded scatter-gather query execution.

The paper's pipeline decomposes cleanly over *candidate* partitions:
Eq. 1 scores resources, Eq. 3 folds each resource's score into the
candidates it is evidence for. Partition the candidates into K disjoint
shards and give each shard the resources supporting at least one of its
candidates, and every shard can evaluate Eq. 1 independently — provided
all shards score with the **union** collection statistics (irf/eirf over
the full collection, not the shard), because a resource duplicated into
two shards must produce the same float score in both. The coordinator
then deduplicates the per-shard ``(-score, doc_id)`` entries (duplicates
are identical tuples), applies the global window cut, and runs one Eq. 3
fold over its full evidence rows — byte-identical to the single-index
path (``tests/index/test_sharded.py`` pins this across shard counts,
engines, and interleaved observes).

Three layers:

* :class:`GlobalStatistics` — the union N / df tables every shard
  scores with; updated on observe, picklable for worker transit;
* :class:`ShardIndex` — a :class:`~repro.index.segments.SegmentedIndex`
  over one shard's resources whose ``_query_weights`` delegate to the
  shared global statistics; exposes :meth:`ShardIndex.shard_entries`
  (the scatter payload) on top of the inherited segment machinery
  (columnar compile, block-max metadata, write buffer, compaction);
* :class:`ShardedIndex` — the coordinator: partition, scatter (inline
  or through a :class:`ShardedQueryExecutor` process pool), exact merge
  + fold, and observe routing.

The executor forks K persistent workers (one pipe each). In-memory
shards are inherited copy-on-write; snapshot-backed shards are opened
*inside* each worker from the mmap-able v3 section files, so all
workers share the page cache and warm-up is one ``open``, not one
rebuild (``benchmarks/bench_sharded.py`` checks private RSS does not
scale with worker count). Pruned evaluation composes: each worker runs
its block-max agenda against a shared ``multiprocessing.Value`` floor,
so a shard that fills its window early raises the skip threshold for
every other shard mid-query.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from collections.abc import Iterable, Mapping, Sequence
from typing import Any
from dataclasses import dataclass

import heapq

# Direct submodule imports only — same cycle rule as repro.index.segments.
from repro.core.config import FinderConfig
from repro.core.ranking import ExpertScore
from repro.core.scoring import distance_weight_table, window_size
from repro.index.analyzer import AnalyzedResource
from repro.index.blockmax import PruningStats
from repro.index.entity_index import EntityIndex
from repro.index.inverted import InvertedIndex
from repro.index.segments import (
    DEFAULT_FANOUT,
    DEFAULT_SEAL_THRESHOLD,
    SegmentedIndex,
    _Rows,
)
from repro.index.vsm import ResourceMatch, _match_order

#: queries a scatter_many batch keeps in flight per worker; bounds both
#: pipe backlog and the coordinator's reply lag
DEFAULT_BATCH_INFLIGHT = 4

#: seconds a scatter waits on one worker before declaring it wedged
DEFAULT_WORKER_TIMEOUT = 120.0


def partition_candidates(
    candidates: Iterable[str], shards: int
) -> list[tuple[str, ...]]:
    """Deterministic round-robin partition of the sorted candidate ids.

    Depends only on the candidate *set* and the shard count, so a
    snapshot load recomputes the identical partition from the meta
    candidate records without storing per-candidate assignments.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    ordered = sorted(candidates)
    if not ordered:
        raise ValueError("cannot partition an empty candidate set")
    return [tuple(ordered[k::shards]) for k in range(shards)]


class GlobalStatistics:
    """Union collection statistics shared by every shard.

    Shards duplicate resources (a doc supporting candidates in two
    shards lives in both), so per-shard document frequencies are *not*
    additive — these tables are built from the full collection and only
    ever updated from the full stream. The irf/eirf ratios repeat the
    monolithic :class:`~repro.index.statistics.CollectionStatistics`
    integers, and therefore its floats, exactly.
    """

    __slots__ = (
        "idf_exponent",
        "doc_count",
        "_term_df",
        "_entity_df",
        "_tw_cache",
        "_ew_cache",
    )

    def __init__(
        self,
        idf_exponent: float,
        doc_count: int = 0,
        term_df: Mapping[str, int] | None = None,
        entity_df: Mapping[str, int] | None = None,
    ):
        self.idf_exponent = idf_exponent
        self.doc_count = doc_count
        self._term_df: dict[str, int] = dict(term_df or {})
        self._entity_df: dict[str, int] = dict(entity_df or {})
        self._tw_cache: dict[str, float] = {}
        self._ew_cache: dict[str, float] = {}

    @classmethod
    def from_indexes(
        cls,
        term_index: InvertedIndex,
        entity_index: EntityIndex,
        idf_exponent: float,
    ) -> "GlobalStatistics":
        """Build from the *unsharded* indexes of the full collection."""
        stats = cls(idf_exponent, doc_count=term_index.document_count)
        for term, postings in term_index.items():
            stats._term_df[term] = len(postings)
        for uri, postings in entity_index.items():
            stats._entity_df[uri] = len(postings)
        return stats

    def add_document(self, analyzed: AnalyzedResource) -> None:
        """Absorb one newly indexed document into N and the df tables
        (mirrors what the monolithic indexes would have recorded)."""
        self.doc_count += 1
        term_df = self._term_df
        for term, count in analyzed.term_counts.items():
            if count > 0:
                term_df[term] = term_df.get(term, 0) + 1
        entity_df = self._entity_df
        for uri, (count, _d_score) in analyzed.entity_counts.items():
            if count > 0:
                entity_df[uri] = entity_df.get(uri, 0) + 1
        self._tw_cache.clear()
        self._ew_cache.clear()

    def irf(self, term: str) -> float:
        df = self._term_df.get(term, 0)
        return math.log(1.0 + self.doc_count / df) if df else 0.0

    def eirf(self, entity_uri: str) -> float:
        df = self._entity_df.get(entity_uri, 0)
        return math.log(1.0 + self.doc_count / df) if df else 0.0

    def query_weights(
        self, query: AnalyzedResource, alpha: float
    ) -> tuple[list[tuple[str, float]], list[tuple[str, float]]]:
        """Per-query ``(term, irf^p)`` / ``(uri, eirf^p)`` lists —
        the same expression :meth:`SegmentedIndex._query_weights` forms
        from its per-source df sums."""
        exponent = self.idf_exponent
        terms: list[tuple[str, float]] = []
        if alpha > 0.0:
            tw_cache = self._tw_cache
            for term in query.term_counts:
                weight = tw_cache.get(term)
                if weight is None:
                    weight = tw_cache[term] = self.irf(term) ** exponent
                if weight:
                    terms.append((term, weight))
        entities: list[tuple[str, float]] = []
        if alpha < 1.0:
            ew_cache = self._ew_cache
            for uri in query.entity_counts:
                weight = ew_cache.get(uri)
                if weight is None:
                    weight = ew_cache[uri] = self.eirf(uri) ** exponent
                if weight:
                    entities.append((uri, weight))
        return terms, entities

    def term_df_items(self) -> list[tuple[str, int]]:
        """``(term, df)`` pairs in table order (snapshot serialization)."""
        return list(self._term_df.items())

    def entity_df_items(self) -> list[tuple[str, int]]:
        return list(self._entity_df.items())

    def __getstate__(self) -> tuple[Any, ...]:
        return (
            self.idf_exponent,
            self.doc_count,
            self._term_df,
            self._entity_df,
        )

    def __setstate__(self, state: tuple[Any, ...]) -> None:
        self.idf_exponent, self.doc_count, self._term_df, self._entity_df = state
        self._tw_cache = {}
        self._ew_cache = {}


class ShardIndex(SegmentedIndex):
    """One candidate shard: segments + buffer over the shard's resources,
    scored with the shared :class:`GlobalStatistics` instead of its own
    per-source df sums. Inherits the full segment machinery — columnar
    compile, block-max metadata, seal/compaction — unchanged."""

    #: the shared union statistics (attached by the factory methods)
    _global: GlobalStatistics | None = None
    #: this shard's candidate ids (attached by the factory methods)
    candidates: frozenset[str] = frozenset()

    @classmethod
    def build(
        cls,
        term_index: InvertedIndex,
        entity_index: EntityIndex,
        evidence_of: Mapping[str, _Rows],
        config: FinderConfig,
        stats: GlobalStatistics,
        candidates: Iterable[str],
        **kwargs: Any,
    ) -> "ShardIndex":
        shard = cls.from_built(term_index, entity_index, evidence_of, config, **kwargs)
        shard._global = stats
        shard.candidates = frozenset(candidates)
        return shard

    def _query_weights(
        self, query: AnalyzedResource, alpha: float
    ) -> tuple[list[tuple[str, float]], list[tuple[str, float]]]:
        stats = self._global
        if stats is None:
            raise RuntimeError("shard has no attached global statistics")
        return stats.query_weights(query, alpha)

    def shard_entries(
        self,
        query: AnalyzedResource,
        alpha: float,
        *,
        window: int | None = None,
        stats: PruningStats | None = None,
        shared_floor: Any = None,
    ) -> list[tuple[float, str]]:
        """The scatter payload: ``(-score, doc_id)`` pairs for this
        shard's matches, unsorted.

        ``window=None`` returns *every* positive match (the exhaustive
        scatter — exact for any window shape once the coordinator has
        all shards' entries). A positive int runs the block-max walk and
        returns a superset of the shard's local top-``window``; any doc
        it drops is strictly below the shard's local floor, which can
        never exceed the global one, so the coordinator's merge stays
        exact. Evidence rows are *not* shipped — the coordinator folds
        from its own full rows.
        """
        terms, entities = self._query_weights(query, alpha)
        segments = self._segments
        if stats is None:
            stats = self.pruning_stats
        try:
            if window is None:
                entries = self._scored_entries(segments, terms, entities, alpha)
            else:
                entries = self._scored_entries_pruned(
                    segments, terms, entities, alpha, window, stats, shared_floor
                )
        except BaseException:
            for segment in segments:
                segment._init_scratch()
            raise
        return [(neg_score, doc_id) for neg_score, doc_id, _rows in entries]

    def merged_slice(
        self,
    ) -> tuple[InvertedIndex, EntityIndex, dict[str, _Rows]]:
        """This shard's whole collection slice merged into one
        ``(term_index, entity_index, evidence)`` triple — the snapshot
        serialization form (hydrates column-restored segments)."""
        term_index = InvertedIndex()
        entity_index = EntityIndex()
        evidence: dict[str, _Rows] = {}
        for segment in self.iter_segments():
            term_index.merge(segment.term_index)
            entity_index.merge(segment.entity_index)
            evidence.update(segment.evidence)
        buffer = self.write_buffer
        term_index.merge(buffer.term_index)
        entity_index.merge(buffer.entity_index)
        evidence.update(buffer.evidence)
        return term_index, entity_index, evidence


@dataclass(frozen=True)
class ShardedStats:
    """Gauges of one :class:`ShardedIndex` (a point-in-time snapshot)."""

    #: shard count K
    shards: int
    #: indexed documents per shard (duplicates counted per shard)
    shard_docs: tuple[int, ...]
    #: unique indexed documents (the union N)
    documents: int
    #: unique admitted resources, including evidence-only ones
    resources: int
    #: whether a scatter pool is currently attached
    executor_alive: bool


class ShardedIndex:
    """Coordinator over K candidate shards: partition → scatter → exact
    merge. Use :meth:`from_built` to shard a cold build; the snapshot
    layer reassembles loaded shards through the bare constructor."""

    def __init__(
        self,
        config: FinderConfig,
        shards: Sequence[ShardIndex],
        statistics: GlobalStatistics,
        evidence_of: Mapping[str, Sequence[tuple[str, int]]],
        partition: Sequence[Sequence[str]],
    ):
        if len(shards) != len(partition):
            raise ValueError(
                f"{len(shards)} shards but {len(partition)} partition groups"
            )
        if not shards:
            raise ValueError("a sharded index needs at least one shard")
        self._config = config
        self._shards = list(shards)
        self._statistics = statistics
        # shared by reference with the owning finder: observe() keeps one
        # rows table that both the finder and this fold read
        self._evidence = evidence_of
        self._partition = [tuple(group) for group in partition]
        self._cand_shard: dict[str, int] = {}
        for k, group in enumerate(self._partition):
            for candidate_id in group:
                if candidate_id in self._cand_shard:
                    raise ValueError(
                        f"candidate {candidate_id!r} assigned to two shards"
                    )
                self._cand_shard[candidate_id] = k
        self._weight_of = distance_weight_table(
            config.max_distance, config.weight_interval
        )
        self._normalize = config.normalize
        self.pruning_stats = PruningStats()
        self._executor: ShardedQueryExecutor | None = None
        self._shard_openers: list | None = None
        # observes admitted after a snapshot load but before (or between)
        # executor runs — workers re-open the on-disk state, so the
        # coordinator replays this log to bring them level (in-memory
        # builds fork the live shards and need no replay)
        self._pending_observes: list[tuple[AnalyzedResource, _Rows, bool]] = []

    # -- construction --------------------------------------------------------------

    @classmethod
    def from_built(
        cls,
        term_index: InvertedIndex,
        entity_index: EntityIndex,
        evidence_of: Mapping[str, Sequence[tuple[str, int]]],
        candidates: Iterable[str],
        config: FinderConfig,
        *,
        shards: int,
        seal_threshold: int = DEFAULT_SEAL_THRESHOLD,
        compaction: str = "synchronous",
        fanout: int = DEFAULT_FANOUT,
        block_span: int | None = None,
    ) -> "ShardedIndex":
        """Partition a cold build into K shard indexes.

        Every indexed document must be evidence for at least one
        candidate — a doc with no supporters would land in no shard and
        silently vanish from rankings, so it is rejected loudly here.
        """
        partition = partition_candidates(candidates, shards)
        cand_shard = {
            cid: k for k, group in enumerate(partition) for cid in group
        }
        evidence = {
            doc_id: tuple((cid, distance) for cid, distance in rows)
            for doc_id, rows in evidence_of.items()
        }
        # which shards own each resource (duplicated when supporters span
        # shards); validated against the partition as we go
        shard_docs: list[set[str]] = [set() for _ in partition]
        shard_rows: list[dict[str, _Rows]] = [{} for _ in partition]
        for doc_id, rows in evidence.items():
            for candidate_id, _distance in rows:
                owner = cand_shard.get(candidate_id)
                if owner is None:
                    raise ValueError(
                        f"resource {doc_id!r} supports unknown candidate "
                        f"{candidate_id!r}"
                    )
            for k in range(len(partition)):
                restricted = tuple(
                    (cid, d) for cid, d in rows if cand_shard[cid] == k
                )
                if restricted:
                    shard_docs[k].add(doc_id)
                    shard_rows[k][doc_id] = restricted
        indexed_ids = term_index.doc_ids()
        # sorted so the reported unsupported resource is the same on
        # every run (doc_ids() is a frozenset)
        for doc_id in sorted(indexed_ids):
            if not evidence.get(doc_id):
                raise ValueError(
                    f"indexed resource {doc_id!r} has no supporters; "
                    "candidate sharding requires every indexed document "
                    "to be evidence for at least one candidate"
                )
        statistics = GlobalStatistics.from_indexes(
            term_index, entity_index, config.idf_exponent
        )
        shard_objs = []
        for k, group in enumerate(partition):
            docs = shard_docs[k]
            indexed = docs & indexed_ids
            shard_objs.append(
                ShardIndex.build(
                    _restrict_index(InvertedIndex, term_index, indexed),
                    _restrict_index(EntityIndex, entity_index, indexed),
                    shard_rows[k],
                    config,
                    statistics,
                    group,
                    seal_threshold=seal_threshold,
                    compaction=compaction,
                    fanout=fanout,
                    block_span=block_span,
                )
            )
        return cls(config, shard_objs, statistics, evidence_of, partition)

    # -- writes --------------------------------------------------------------------

    def add(
        self,
        analyzed: AnalyzedResource,
        supporters: Sequence[tuple[str, int]],
        *,
        index: bool = True,
    ) -> None:
        """Admit one streamed resource: update the union statistics, then
        route the restricted evidence rows to every shard owning at
        least one supporter (each shard's write buffer absorbs it like
        any segmented observe). With an active scatter pool the observe
        is also broadcast so worker shard copies stay in lockstep."""
        rows = tuple((cid, distance) for cid, distance in supporters)
        if not rows:
            raise ValueError("a resource must support at least one candidate")
        cand_shard = self._cand_shard
        for candidate_id, distance in rows:
            if candidate_id not in cand_shard:
                raise ValueError(f"unknown candidate {candidate_id!r}")
            if self._weight_of.get(distance) is None:
                raise ValueError(
                    f"distance {distance} outside 0..{self._config.max_distance}"
                )
        doc_id = analyzed.doc_id
        if doc_id in self._evidence:
            raise ValueError(f"resource {doc_id!r} already admitted")
        if index:
            self._statistics.add_document(analyzed)
        for k, shard in enumerate(self._shards):
            restricted = tuple(
                (cid, d) for cid, d in rows if cand_shard[cid] == k
            )
            if restricted:
                shard.add(analyzed, restricted, index=index)
        self._evidence[doc_id] = list(rows)
        if self._shard_openers is not None:
            self._pending_observes.append((analyzed, rows, index))
        if self._executor is not None:
            self._executor.observe(analyzed, rows, index)

    # -- query evaluation ----------------------------------------------------------

    def find_experts(
        self,
        query: AnalyzedResource,
        *,
        alpha: float,
        window: int | float | None,
        top_k: int | None = None,
        pruned: bool = False,
        stats: PruningStats | None = None,
    ) -> list[ExpertScore]:
        """Scatter *query* to every shard, merge exactly, fold Eq. 3 —
        byte-identical to the single-index path at the same collection
        state. ``pruned=True`` with an absolute window scatters the
        block-max mode (sharing one floor across workers); fractional
        and ``None`` windows take the exhaustive scatter, counted as
        fallbacks exactly like the segmented path."""
        if stats is None:
            stats = self.pruning_stats
        scatter_window = self._plan_query(window, alpha, pruned, stats, count=1)
        entries = self._scatter(query, alpha, scatter_window, stats)
        return self._merge(entries, window, top_k)

    def find_experts_many(
        self,
        queries: Sequence[AnalyzedResource],
        *,
        alpha: float,
        window: int | float | None,
        top_k: int | None = None,
        pruned: bool = False,
        stats: PruningStats | None = None,
    ) -> list[list[ExpertScore]]:
        """Batch counterpart of :meth:`find_experts`: with an active
        executor the queries are pipelined through the worker pool
        (:meth:`ShardedQueryExecutor.scatter_many`), overlapping the
        coordinator's merge/fold of one query with the workers' scoring
        of the next; results are identical to a serial loop."""
        if stats is None:
            stats = self.pruning_stats
        scatter_window = self._plan_query(
            window, alpha, pruned, stats, count=len(queries)
        )
        executor = self._executor
        if executor is not None and len(queries) > 1:
            batches = executor.scatter_many(
                [(query, alpha, scatter_window) for query in queries], stats
            )
        else:
            batches = [
                self._scatter(query, alpha, scatter_window, stats)
                for query in queries
            ]
        return [self._merge(entries, window, top_k) for entries in batches]

    def _plan_query(
        self,
        window: int | float | None,
        alpha: float,
        pruned: bool,
        stats: PruningStats,
        count: int,
    ) -> int | None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        window_size(window, 0)  # validate the window shape up front
        if pruned:
            # same routing rule as SegmentedIndex.find_experts: strictly
            # positive absolute counts prune, everything else falls back
            if type(window) is int and window > 0:
                stats.pruned_queries += count
                return window
            stats.fallback_queries += count
        return None

    def _scatter(
        self,
        query: AnalyzedResource,
        alpha: float,
        window: int | None,
        stats: PruningStats,
    ) -> list[tuple[float, str]]:
        executor = self._executor
        if executor is not None:
            return executor.scatter(query, alpha, window, stats)
        entries: list[tuple[float, str]] = []
        for shard in self._shards:
            entries.extend(
                shard.shard_entries(query, alpha, window=window, stats=stats)
            )
        return entries

    def _merge(
        self,
        entries: list[tuple[float, str]],
        window: int | float | None,
        top_k: int | None,
    ) -> list[ExpertScore]:
        # duplicated docs arrive as identical tuples (same union
        # statistics, same accumulation order) — keep the first
        seen: set[str] = set()
        merged: list[tuple[float, str]] = []
        keep = merged.append
        for item in entries:
            doc_id = item[1]
            if doc_id not in seen:
                seen.add(doc_id)
                keep(item)
        merged.sort()
        width = window_size(window, len(merged))
        if width < len(merged):
            del merged[width:]
        # Eq. 3 fold over the coordinator's *full* evidence rows, in rank
        # order — float-for-float the SegmentedIndex._fold_entries walk
        weight_of = self._weight_of
        evidence = self._evidence
        scores: dict[str, float] = {}
        support: dict[str, int] = {}
        for neg_score, doc_id in merged:
            match_score = -neg_score
            for candidate_id, distance in evidence.get(doc_id, ()):
                scores[candidate_id] = (
                    scores.get(candidate_id, 0.0)
                    + match_score * weight_of[distance]
                )
                support[candidate_id] = support.get(candidate_id, 0) + 1
        if self._normalize:
            scores = {
                cid: score / support[cid]
                for cid, score in scores.items()
                if support.get(cid)
            }
        ranked = [
            ExpertScore(
                candidate_id=cid,
                score=score,
                supporting_resources=support.get(cid, 0),
            )
            for cid, score in scores.items()
            if score > 0.0
        ]
        ranked.sort(key=lambda e: (-e.score, e.candidate_id))
        return ranked if top_k is None else ranked[:top_k]

    def _matches(
        self, query: AnalyzedResource, alpha: float
    ) -> list[ResourceMatch]:
        seen: set[str] = set()
        matches: list[ResourceMatch] = []
        for shard in self._shards:
            for match in shard._matches(query, alpha):
                if match.doc_id not in seen:
                    seen.add(match.doc_id)
                    matches.append(match)
        return matches

    def retrieve(
        self, query: AnalyzedResource, alpha: float
    ) -> list[ResourceMatch]:
        """All resources with positive score, best first — duplicated
        docs score identically in every owning shard, so the dedup'd
        union equals the monolithic retrieval."""
        matches = self._matches(query, alpha)
        matches.sort(key=_match_order)
        return matches

    def retrieve_top_k(
        self, query: AnalyzedResource, alpha: float, k: int
    ) -> list[ResourceMatch]:
        """The best *k* resources — exactly ``retrieve(query, alpha)[:k]``."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if k == 0:
            if not 0.0 <= alpha <= 1.0:
                raise ValueError(f"alpha must be in [0, 1], got {alpha}")
            return []
        return heapq.nsmallest(k, self._matches(query, alpha), key=_match_order)

    # -- the scatter pool ----------------------------------------------------------

    def start_executor(
        self, *, timeout: float = DEFAULT_WORKER_TIMEOUT
    ) -> "ShardedQueryExecutor":
        """Fork the persistent worker pool (idempotent). Snapshot-loaded
        indexes fork *openers* — each worker maps its shard's section
        file read-only inside the child, sharing the page cache; builds
        fork the in-memory shards copy-on-write."""
        if self._executor is None:
            sources = self._shard_openers or self._shards
            self._executor = ShardedQueryExecutor(sources, timeout=timeout)
            # snapshot-opened workers start from the on-disk state; catch
            # them up on everything admitted since the load
            for analyzed, rows, index in self._pending_observes:
                self._executor.observe(analyzed, rows, index)
        return self._executor

    def stop_executor(self) -> None:
        """Shut the worker pool down (idempotent)."""
        executor = self._executor
        if executor is not None:
            self._executor = None
            executor.close()

    @property
    def executor(self) -> "ShardedQueryExecutor | None":
        return self._executor

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop_executor()

    # -- introspection -------------------------------------------------------------

    @property
    def config(self) -> FinderConfig:
        return self._config

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def statistics(self) -> GlobalStatistics:
        return self._statistics

    @property
    def document_count(self) -> int:
        """Unique indexed documents — the N of every irf/eirf ratio."""
        return self._statistics.doc_count

    @property
    def partition(self) -> tuple[tuple[str, ...], ...]:
        return tuple(self._partition)

    def iter_shards(self) -> tuple[ShardIndex, ...]:
        return tuple(self._shards)

    @property
    def stats(self) -> ShardedStats:
        return ShardedStats(
            shards=len(self._shards),
            shard_docs=tuple(s.document_count for s in self._shards),
            documents=self._statistics.doc_count,
            resources=len(self._evidence),
            executor_alive=self._executor is not None,
        )


def _restrict_index(cls: type[Any], index: Any, doc_ids: set[str]) -> Any:
    """A new ``cls`` index holding only *doc_ids*' postings, in the
    original postings order (a filtered subsequence — per-document float
    accumulation is order-independent across documents, so restricted
    scores repeat the monolithic products exactly)."""
    postings = {}
    for key, plist in index.items():
        kept = [p for p in plist if p.doc_id in doc_ids]
        if kept:
            postings[key] = kept
    return cls.restore(doc_ids, postings)


def _worker_main(conn: Any, source: Any, shared_floor: Any) -> None:
    """Scatter-pool worker loop: open (or adopt) one shard, then serve
    query/observe/stop requests over the pipe until told to stop.

    Replies are ``("ok", entries, blocks_scanned, blocks_skipped)`` or
    ``("error", message, 0, 0)`` — never silence, so the coordinator can
    distinguish a failed request from a dead worker.
    """
    try:
        shard = source() if callable(source) else source
        stats = PruningStats()
        while True:
            request = conn.recv()
            op = request[0]
            if op == "stop":
                return
            try:
                if op == "query":
                    _op, query, alpha, window, share = request
                    stats.reset()
                    entries = shard.shard_entries(
                        query,
                        alpha,
                        window=window,
                        stats=stats,
                        shared_floor=shared_floor if share else None,
                    )
                    conn.send(
                        ("ok", entries, stats.blocks_scanned, stats.blocks_skipped)
                    )
                elif op == "observe":
                    _op, analyzed, rows, index = request
                    if index:
                        shard._global.add_document(analyzed)
                    restricted = tuple(
                        (cid, d) for cid, d in rows if cid in shard.candidates
                    )
                    if restricted:
                        shard.add(analyzed, restricted, index=index)
                    conn.send(("ok", None, 0, 0))
                else:
                    conn.send(("error", f"unknown request {op!r}", 0, 0))
            except Exception as exc:  # keep serving after a bad request
                conn.send(("error", f"{type(exc).__name__}: {exc}", 0, 0))
    except (EOFError, OSError, KeyboardInterrupt):
        return  # coordinator went away; nothing to report to


class ShardedQueryExecutor:
    """Persistent fork-based process pool, one worker per shard.

    Requires the ``fork`` start method: in-memory shards must be
    inherited copy-on-write (pickling a compiled shard would defeat the
    point), and the shared pruning floor is pre-fork state. Workers are
    daemons; a crashed worker surfaces as a ``RuntimeError`` on the next
    scatter, never a hang (`timeout` bounds a wedged-but-alive worker).
    """

    def __init__(
        self,
        sources: Sequence,
        *,
        timeout: float = DEFAULT_WORKER_TIMEOUT,
    ):
        if not sources:
            raise ValueError("executor needs at least one shard source")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "sharded query execution needs the 'fork' start method, "
                "which this platform does not provide"
            )
        ctx = multiprocessing.get_context("fork")
        self._timeout = timeout
        self._floor = ctx.Value("d", 0.0)
        self._conns = []
        self._procs = []
        #: mean in-flight depth of the last scatter_many (the service's
        #: batch_parallelism gauge reads this)
        self.last_batch_depth = 0.0
        for k, source in enumerate(sources):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, source, self._floor),
                name=f"shard-worker-{k}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    @property
    def worker_count(self) -> int:
        return len(self._procs)

    @property
    def pids(self) -> tuple[int, ...]:
        return tuple(proc.pid for proc in self._procs)

    def scatter(
        self,
        query: AnalyzedResource,
        alpha: float,
        window: int | None,
        stats: PruningStats | None = None,
    ) -> list[tuple[float, str]]:
        """One query to all workers; concatenated entries back. Pruned
        scatters (absolute *window*) share the floor, which is reset
        here — a query's floor must start from zero."""
        if window is not None:
            with self._floor.get_lock():
                self._floor.value = 0.0
        self._broadcast(("query", query, alpha, window, window is not None))
        entries: list[tuple[float, str]] = []
        for k in range(len(self._conns)):
            reply = self._recv(k)
            entries.extend(reply[1])
            if stats is not None:
                stats.blocks_scanned += reply[2]
                stats.blocks_skipped += reply[3]
        return entries

    def scatter_many(
        self,
        requests: Sequence[tuple[AnalyzedResource, float, int | None]],
        stats: PruningStats | None = None,
    ) -> list[list[tuple[float, str]]]:
        """Pipeline a batch: up to ``DEFAULT_BATCH_INFLIGHT`` queries are
        in flight per worker, replies are collected in order (pipes are
        FIFO and each worker serves requests in order). The shared floor
        cannot be reset per query mid-pipeline, so batched pruned
        queries run with their workers' *local* floors only — still
        exact, marginally less skipping."""
        results: list[list[tuple[float, str]]] = []
        n = len(requests)
        sent = 0
        depth_total = 0
        while len(results) < n:
            while sent < n and sent - len(results) < DEFAULT_BATCH_INFLIGHT:
                query, alpha, window = requests[sent]
                self._broadcast(("query", query, alpha, window, False))
                sent += 1
            depth_total += sent - len(results)
            entries: list[tuple[float, str]] = []
            for k in range(len(self._conns)):
                reply = self._recv(k)
                entries.extend(reply[1])
                if stats is not None:
                    stats.blocks_scanned += reply[2]
                    stats.blocks_skipped += reply[3]
            results.append(entries)
        self.last_batch_depth = depth_total / n if n else 0.0
        return results

    def observe(
        self, analyzed: AnalyzedResource, rows: _Rows, index: bool
    ) -> None:
        """Broadcast one admitted resource so worker shard copies (and
        their statistics) stay identical to the coordinator's."""
        self._broadcast(("observe", analyzed, rows, index))
        for k in range(len(self._conns)):
            self._recv(k)

    def _broadcast(self, request: tuple[Any, ...]) -> None:
        for k, conn in enumerate(self._conns):
            try:
                conn.send(request)
            except (BrokenPipeError, OSError) as exc:
                raise RuntimeError(
                    f"shard worker {k} (pid {self._procs[k].pid}) is gone: "
                    f"{exc}"
                ) from exc

    def _recv(self, k: int) -> tuple[Any, ...]:
        conn = self._conns[k]
        proc = self._procs[k]
        deadline = time.monotonic() + self._timeout
        while not conn.poll(0.05):
            if not proc.is_alive():
                raise RuntimeError(
                    f"shard worker {k} (pid {proc.pid}) died with exit code "
                    f"{proc.exitcode}"
                )
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"shard worker {k} (pid {proc.pid}) gave no reply "
                    f"within {self._timeout:.0f}s"
                )
        try:
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            raise RuntimeError(
                f"shard worker {k} (pid {proc.pid}) died mid-reply"
            ) from exc
        if reply[0] == "error":
            raise RuntimeError(f"shard worker {k} failed: {reply[1]}")
        return reply

    def close(self) -> None:
        """Stop all workers (idempotent, tolerant of already-dead ones)."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._procs = []
