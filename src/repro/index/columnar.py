"""Columnar query engine: the serving-tier fast path for Eq. 1 → window → Eq. 3.

The object path (``VectorSpaceRetriever`` + ``ExpertRanker``) walks
string-keyed dicts, materializes a :class:`~repro.index.vsm.ResourceMatch`
per matching document, and re-resolves every supporter relation through
the ``evidence_of`` mapping on each query. That representation is ideal
for explainability (``match_resources`` returns the per-resource score
breakdown) but pays object churn on every cache miss.

:class:`ColumnarQueryEngine` is *compiled* from a built retriever +
evidence relation + config into flat, query-independent columns
(cf. production expert-mining systems, which serve from dense integer
ids and precomputed per-candidate arrays — Spasojevic et al.):

* **interning** — doc ids and candidate ids become dense integer
  indexes, assigned in sorted-id order so integer comparisons reproduce
  the object path's ``(-score, id)`` string tie-breaks exactly;
* **flat postings** — each term's / entity's weighted postings
  (``tf·irf²`` and ``ef·eirf²·we``, the same memoized products the
  retriever uses) are stored as parallel ``array('l')`` /``array('d')``
  columns;
* **fused scoring** — Eq. 1 accumulates document-at-a-time into a flat
  float accumulator plus a touched-docs list (no string-keyed dicts, no
  per-document objects), the window selects top docs over ``(-score,
  doc index)`` tuples, and Eq. 3 walks a CSR supporters layout
  (per-doc offsets → candidate index + precomputed ``wr`` weight)
  straight into a flat per-candidate accumulator.

Rankings are **byte-identical** to the object path: the engine repeats
its float operations in the same order — per-posting products from the
same collection statistics, per-document accumulation in postings
order, ``α·t + (1−α)·e`` combination, rank-ordered Eq.-3 folding with
table-looked-up ``wr`` — and breaks ties on interned ids, which order
exactly like the underlying strings. ``tests/index/test_columnar.py``
pins the equivalence over randomized collections and parameter sweeps.

The engine is a *snapshot* of the collection: after streaming updates
(``ExpertFinder.observe``) it must be recompiled (the finder does this
lazily). Scratch accumulators are reused across queries, so one engine
instance must not be shared across threads.
"""

from __future__ import annotations

from array import array
from collections.abc import Mapping, Sequence

# Direct submodule imports only — ``repro.index`` is imported by
# ``repro.core``, so pulling core *package* attributes here would cycle.
from repro.core.config import FinderConfig
from repro.core.ranking import ExpertScore
from repro.core.scoring import distance_weight_table, window_size
from repro.index.analyzer import AnalyzedResource
from repro.index.vsm import VectorSpaceRetriever, entity_weight


class ColumnarQueryEngine:
    """Compiled columnar form of one finder's query evaluation.

    Build instances with :meth:`compile`; one engine answers queries for
    any ``alpha``/``window``/``top_k`` (the compiled columns keep the
    term and entity legs separate, so α is applied at query time), but
    bakes in the config's ``max_distance``, ``weight_interval`` and
    ``normalize`` — the rank-time parameters ``find_experts`` never
    overrides per call.
    """

    def __init__(
        self,
        *,
        doc_ids: list[str],
        cand_ids: list[str],
        term_cols: dict[str, tuple[array, array]],
        entity_cols: dict[str, tuple[array, array]],
        sup_offsets: array,
        sup_cand: array,
        sup_weight: array,
        normalize: bool,
    ):
        self._doc_ids = doc_ids
        self._cand_ids = cand_ids
        self._term_cols = term_cols
        self._entity_cols = entity_cols
        self._sup_offsets = sup_offsets
        self._sup_cand = sup_cand
        self._sup_weight = sup_weight
        #: per-doc iteration windows over the CSR columns, precreated so
        #: the rank loop pays one list getitem instead of two offset
        #: reads and a range allocation per windowed document
        self._sup_ranges = [
            range(sup_offsets[i], sup_offsets[i + 1])
            for i in range(len(doc_ids))
        ]
        self._normalize = normalize
        self._init_scratch()

    def _init_scratch(self) -> None:
        # scratch accumulators are plain lists: element access on a list
        # returns the stored float object directly, where array('d')
        # would box a fresh one per read — and these are the hottest
        # reads in the engine (reset per query via the touched lists)
        n_docs = len(self._doc_ids)
        n_cands = len(self._cand_ids)
        self._term_acc = [0.0] * n_docs
        self._entity_acc = [0.0] * n_docs
        self._doc_flags = bytearray(n_docs)
        self._cand_acc = [0.0] * n_cands
        self._cand_support = [0] * n_cands
        self._cand_flags = bytearray(n_cands)

    # -- compilation ---------------------------------------------------------------

    @classmethod
    def compile(
        cls,
        retriever: VectorSpaceRetriever,
        evidence_of: Mapping[str, Sequence[tuple[str, int]]],
        config: FinderConfig,
    ) -> "ColumnarQueryEngine":
        """Compile *retriever* + *evidence_of* under *config*.

        The per-posting weights are computed with the retriever's own
        :class:`~repro.index.statistics.CollectionStatistics` and
        exponent, repeating ``tf·irf^p`` / ``ef·eirf^p·we`` with the
        exact float operations of the object path.
        """
        term_index = retriever.term_index
        entity_index = retriever.entity_index
        stats = retriever.statistics
        exponent = retriever.idf_exponent

        doc_ids = sorted(term_index.doc_ids() | entity_index.doc_ids())
        doc_of = {doc_id: i for i, doc_id in enumerate(doc_ids)}

        term_cols: dict[str, tuple[array, array]] = {}
        for term, postings in term_index.items():
            weight = stats.irf(term) ** exponent
            if weight == 0.0:
                continue
            term_cols[term] = (
                array("l", (doc_of[p.doc_id] for p in postings)),
                array("d", (p.term_frequency * weight for p in postings)),
            )

        entity_cols: dict[str, tuple[array, array]] = {}
        for uri, postings in entity_index.items():
            weight = stats.eirf(uri) ** exponent
            if weight == 0.0:
                continue
            entity_cols[uri] = (
                array("l", (doc_of[p.doc_id] for p in postings)),
                array(
                    "d",
                    (
                        p.entity_frequency * weight * entity_weight(p.d_score)
                        for p in postings
                    ),
                ),
            )

        # CSR supporters: per-doc offsets into parallel candidate-index
        # and wr columns, preserving the evidence list order (which fixes
        # the Eq.-3 float summation order). Evidence for non-indexed
        # resources (e.g. non-English observes) can never match and is
        # simply not compiled in.
        cand_ids = sorted(
            {cid for supporters in evidence_of.values() for cid, _ in supporters}
        )
        cand_of = {cid: i for i, cid in enumerate(cand_ids)}
        weight_of = distance_weight_table(config.max_distance, config.weight_interval)
        sup_offsets = array("l", [0])
        sup_cand = array("l")
        sup_weight = array("d")
        for doc_id in doc_ids:
            for cid, distance in evidence_of.get(doc_id, ()):
                weight = weight_of.get(distance)
                if weight is None:
                    raise ValueError(
                        f"distance {distance} outside 0..{config.max_distance}"
                    )
                sup_cand.append(cand_of[cid])
                sup_weight.append(weight)
            sup_offsets.append(len(sup_cand))

        return cls(
            doc_ids=doc_ids,
            cand_ids=cand_ids,
            term_cols=term_cols,
            entity_cols=entity_cols,
            sup_offsets=sup_offsets,
            sup_cand=sup_cand,
            sup_weight=sup_weight,
            normalize=config.normalize,
        )

    # -- introspection -------------------------------------------------------------

    def snapshot_columns(self) -> dict[str, object]:
        """The compiled columns, keyed for the snapshot-v3 writer.

        Exposes the exact interned ids and weighted columns this engine
        computed — serializing *these* float64 values (rather than
        recomputing weights at load) is what keeps v3 rankings
        byte-identical to a freshly compiled engine.
        """
        return {
            "doc_ids": self._doc_ids,
            "cand_ids": self._cand_ids,
            "term_cols": self._term_cols,
            "entity_cols": self._entity_cols,
            "sup_offsets": self._sup_offsets,
            "sup_cand": self._sup_cand,
            "sup_weight": self._sup_weight,
            "normalize": self._normalize,
        }

    @property
    def document_count(self) -> int:
        return len(self._doc_ids)

    @property
    def candidate_count(self) -> int:
        return len(self._cand_ids)

    # -- query evaluation ----------------------------------------------------------

    def find_experts(
        self,
        query: AnalyzedResource,
        *,
        alpha: float,
        window: int | float | None,
        top_k: int | None = None,
    ) -> list[ExpertScore]:
        """Rank the candidate experts for an analyzed *query* — exactly
        the object path's ``retrieve → apply_window → ExpertRanker.rank``
        result (scores, support counts, and order), without materializing
        per-resource match objects."""
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        window_size(window, 0)  # validate the window shape up front
        try:
            return self._find_experts(query, alpha, window, top_k)
        except BaseException:
            # scratch accumulators may be mid-query; rebuild them clean
            self._init_scratch()
            raise

    def _find_experts(
        self,
        query: AnalyzedResource,
        alpha: float,
        window: int | float | None,
        top_k: int | None,
    ) -> list[ExpertScore]:
        # Eq. 1, document-at-a-time: flat accumulators + touched list.
        # Accumulation order matches the object path: query terms in
        # need order, postings in index order, entities after terms.
        term_acc = self._term_acc
        entity_acc = self._entity_acc
        flags = self._doc_flags
        touched: list[int] = []
        touch = touched.append
        if alpha > 0.0:
            term_cols = self._term_cols
            for term in query.term_counts:
                cols = term_cols.get(term)
                if cols is None:
                    continue
                for doc, weighted in zip(cols[0], cols[1]):
                    term_acc[doc] += weighted
                    if not flags[doc]:
                        flags[doc] = 1
                        touch(doc)
        if alpha < 1.0:
            entity_cols = self._entity_cols
            for uri in query.entity_counts:
                cols = entity_cols.get(uri)
                if cols is None:
                    continue
                for doc, weighted in zip(cols[0], cols[1]):
                    entity_acc[doc] += weighted
                    if not flags[doc]:
                        flags[doc] = 1
                        touch(doc)

        # combine the two legs, keep positive scores, reset the scratch
        one_minus_alpha = 1.0 - alpha
        entries: list[tuple[float, int]] = []
        entry = entries.append
        for doc in touched:
            score = alpha * term_acc[doc] + one_minus_alpha * entity_acc[doc]
            if score > 0.0:
                entry((-score, doc))
            term_acc[doc] = 0.0
            entity_acc[doc] = 0.0
            flags[doc] = 0

        # window cut over (-score, doc index): interned index order is
        # sorted-id order, so this is the object path's (-score, doc_id);
        # sort + truncate picks exactly ``sorted(entries)[:width]``
        entries.sort()
        width = window_size(window, len(entries))
        if width < len(entries):
            del entries[width:]

        # Eq. 3 fused over the windowed docs (rank order) via CSR
        sup_ranges = self._sup_ranges
        sup_cand = self._sup_cand
        sup_weight = self._sup_weight
        cand_acc = self._cand_acc
        cand_support = self._cand_support
        cand_flags = self._cand_flags
        cand_touched: list[int] = []
        cand_touch = cand_touched.append
        for neg_score, doc in entries:
            score = -neg_score
            for j in sup_ranges[doc]:
                cand = sup_cand[j]
                cand_acc[cand] += score * sup_weight[j]
                cand_support[cand] += 1
                if not cand_flags[cand]:
                    cand_flags[cand] = 1
                    cand_touch(cand)

        # EX: positive-score candidates, (-score, candidate) order
        normalize = self._normalize
        results: list[tuple[float, int, int]] = []
        result = results.append
        for cand in cand_touched:
            support = cand_support[cand]
            score = cand_acc[cand]
            if normalize and support:
                score = score / support
            if score > 0.0:
                result((-score, cand, support))
            cand_acc[cand] = 0.0
            cand_support[cand] = 0
            cand_flags[cand] = 0
        results.sort()
        if top_k is not None:
            results = results[:top_k]
        cand_ids = self._cand_ids
        return [
            ExpertScore(
                candidate_id=cand_ids[cand],
                score=-neg_score,
                supporting_resources=support,
            )
            for neg_score, cand, support in results
        ]
