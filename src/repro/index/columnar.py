"""Columnar query engine: the serving-tier fast path for Eq. 1 → window → Eq. 3.

The object path (``VectorSpaceRetriever`` + ``ExpertRanker``) walks
string-keyed dicts, materializes a :class:`~repro.index.vsm.ResourceMatch`
per matching document, and re-resolves every supporter relation through
the ``evidence_of`` mapping on each query. That representation is ideal
for explainability (``match_resources`` returns the per-resource score
breakdown) but pays object churn on every cache miss.

:class:`ColumnarQueryEngine` is *compiled* from a built retriever +
evidence relation + config into flat, query-independent columns
(cf. production expert-mining systems, which serve from dense integer
ids and precomputed per-candidate arrays — Spasojevic et al.):

* **interning** — doc ids and candidate ids become dense integer
  indexes, assigned in sorted-id order so integer comparisons reproduce
  the object path's ``(-score, id)`` string tie-breaks exactly;
* **flat postings** — each term's / entity's weighted postings
  (``tf·irf²`` and ``ef·eirf²·we``, the same memoized products the
  retriever uses) are stored as parallel int64/float64 columns, iterated
  through ``memoryview`` casts (measurably faster than raw ``array``
  iteration, and the natural form for mmap-backed v3 snapshots);
* **fused scoring** — Eq. 1 accumulates document-at-a-time into a flat
  float accumulator plus a touched-docs list (no string-keyed dicts, no
  per-document objects), the window selects top docs over ``(-score,
  doc index)`` tuples, and Eq. 3 walks per-doc supporter pair lists
  (candidate index + precomputed ``wr`` weight, prebuilt from the CSR
  layout) straight into a flat per-candidate accumulator.

Two evaluation modes share that skeleton:

* the **exhaustive** mode scores every posting of every query item;
* the **block-max pruned** mode (``pruned=True``, exact top-k for
  absolute-count windows) sorts each column by doc index, chunks the
  doc-index space into shared spans of ``block_span`` (see
  :mod:`repro.index.blockmax`), and processes blocks in descending
  order of their summed per-item upper bounds, maintaining a
  size-``width`` min-heap of block-complete scores; once the heap is
  full, every remaining block whose inflated bound cannot reach the
  heap floor is skipped outright. Fractional and ``None`` windows fall
  back to the exhaustive path automatically (their width depends on the
  total match count, which pruning never learns).

Rankings are **byte-identical** to the object path in both modes: the
engine repeats its float operations in the same order — per-posting
products from the same collection statistics, per-document accumulation
(each doc appears at most once per column, so column order is
irrelevant to its sums), ``α·t + (1−α)·e`` combination, rank-ordered
Eq.-3 folding with table-looked-up ``wr`` — and breaks ties on interned
ids, which order exactly like the underlying strings.
``tests/index/test_columnar.py`` pins the equivalence over randomized
collections and parameter sweeps, for all engine modes.

The engine is a *snapshot* of the collection: after streaming updates
(``ExpertFinder.observe``) it must be recompiled (the finder does this
lazily). Scratch accumulators are reused across queries, so one engine
instance must not be shared across threads.
"""

from __future__ import annotations

import heapq
from array import array
from collections.abc import Mapping, Sequence

# Direct submodule imports only — ``repro.index`` is imported by
# ``repro.core``, so pulling core *package* attributes here would cycle.
from repro.core.config import FinderConfig
from repro.core.ranking import ExpertScore
from repro.core.scoring import distance_weight_table, window_size
from repro.index.analyzer import AnalyzedResource
from repro.index.blockmax import (
    DEFAULT_BLOCK_SPAN,
    PruningStats,
    compute_blocks,
    is_doc_sorted,
    sort_column,
    ub_slack,
)
from repro.index.vsm import VectorSpaceRetriever, entity_weight


def _pair_weight(pair: tuple[int, float]) -> float:
    return pair[1]


class ColumnarQueryEngine:
    """Compiled columnar form of one finder's query evaluation.

    Build instances with :meth:`compile`; one engine answers queries for
    any ``alpha``/``window``/``top_k`` (the compiled columns keep the
    term and entity legs separate, so α is applied at query time), but
    bakes in the config's ``max_distance``, ``weight_interval`` and
    ``normalize`` — the rank-time parameters ``find_experts`` never
    overrides per call.
    """

    def __init__(
        self,
        *,
        doc_ids: list[str],
        cand_ids: list[str],
        term_cols: dict[str, tuple],
        entity_cols: dict[str, tuple],
        sup_offsets: "Sequence[int]",
        sup_cand: "Sequence[int]",
        sup_weight: "Sequence[float]",
        normalize: bool,
        block_span: int | None = None,
        term_blocks: Mapping[str, tuple] | None = None,
        entity_blocks: Mapping[str, tuple] | None = None,
    ):
        self._doc_ids = doc_ids
        self._cand_ids = cand_ids
        # memoryview casts for the Eq. 1 hot loop; mmap-backed columns
        # arrive as memoryviews already, arrays are wrapped zero-copy
        # (the cast keeps the underlying buffer alive)
        self._term_cols = {
            key: (memoryview(docs), memoryview(ws))
            for key, (docs, ws) in term_cols.items()
        }
        self._entity_cols = {
            key: (memoryview(docs), memoryview(ws))
            for key, (docs, ws) in entity_cols.items()
        }
        self._sup_offsets = sup_offsets
        self._sup_cand = sup_cand
        self._sup_weight = sup_weight
        #: per-doc supporter (candidate, wr) pair lists prebuilt from the
        #: CSR columns: the Eq. 3 fold pays one list iteration per
        #: windowed doc instead of two indexed reads per supporter
        self._sup_pairs = [
            list(
                zip(
                    sup_cand[sup_offsets[i] : sup_offsets[i + 1]],
                    sup_weight[sup_offsets[i] : sup_offsets[i + 1]],
                )
            )
            for i in range(len(doc_ids))
        ]
        self._normalize = normalize
        if block_span is not None and block_span <= 0:
            raise ValueError(f"block_span must be positive, got {block_span}")
        self._block_span = block_span or DEFAULT_BLOCK_SPAN
        self._n_blocks = (
            len(doc_ids) + self._block_span - 1
        ) // self._block_span or 1
        #: per-column ``(bids, boff, bmax)`` adopted from a v3 snapshot
        #: (columns doc-sorted by the writer) or computed on first pruned
        #: use — the recompute-on-absent compatibility rule
        self._term_blocks: dict[str, tuple] = dict(term_blocks or ())
        self._entity_blocks: dict[str, tuple] = dict(entity_blocks or ())
        #: lazily built pruned-mode records: (bids, bmax, span pair lists)
        self._term_pruned: dict[str, tuple] = {}
        self._entity_pruned: dict[str, tuple] = {}
        self.pruning_stats = PruningStats()
        self._init_scratch()

    def _init_scratch(self) -> None:
        # scratch accumulators are plain lists: element access on a list
        # returns the stored float object directly, where array('d')
        # would box a fresh one per read — and these are the hottest
        # reads in the engine (reset per query via the touched lists)
        n_docs = len(self._doc_ids)
        n_cands = len(self._cand_ids)
        self._term_acc = [0.0] * n_docs
        self._entity_acc = [0.0] * n_docs
        self._doc_flags = bytearray(n_docs)
        self._cand_acc = [0.0] * n_cands
        self._cand_support = [0] * n_cands
        self._cand_flags = bytearray(n_cands)
        self._block_ub = [0.0] * self._n_blocks
        self._block_flags = bytearray(self._n_blocks)

    # -- compilation ---------------------------------------------------------------

    @classmethod
    def compile(
        cls,
        retriever: VectorSpaceRetriever,
        evidence_of: Mapping[str, Sequence[tuple[str, int]]],
        config: FinderConfig,
        *,
        block_span: int | None = None,
    ) -> "ColumnarQueryEngine":
        """Compile *retriever* + *evidence_of* under *config*.

        The per-posting weights are computed with the retriever's own
        :class:`~repro.index.statistics.CollectionStatistics` and
        exponent, repeating ``tf·irf^p`` / ``ef·eirf^p·we`` with the
        exact float operations of the object path; columns are stored
        doc-sorted (the order blocks are chunked in — per-doc sums and
        all downstream sorts are order-invariant, see
        :mod:`repro.index.blockmax`).
        """
        term_index = retriever.term_index
        entity_index = retriever.entity_index
        stats = retriever.statistics
        exponent = retriever.idf_exponent

        doc_ids = sorted(term_index.doc_ids() | entity_index.doc_ids())
        doc_of = {doc_id: i for i, doc_id in enumerate(doc_ids)}

        term_cols: dict[str, tuple[array, array]] = {}
        for term, postings in term_index.items():
            weight = stats.irf(term) ** exponent
            if weight == 0.0:
                continue
            pairs = sorted(
                (doc_of[p.doc_id], p.term_frequency * weight) for p in postings
            )
            term_cols[term] = (
                array("l", (d for d, _ in pairs)),
                array("d", (w for _, w in pairs)),
            )

        entity_cols: dict[str, tuple[array, array]] = {}
        for uri, postings in entity_index.items():
            weight = stats.eirf(uri) ** exponent
            if weight == 0.0:
                continue
            pairs = sorted(
                (
                    doc_of[p.doc_id],
                    p.entity_frequency * weight * entity_weight(p.d_score),
                )
                for p in postings
            )
            entity_cols[uri] = (
                array("l", (d for d, _ in pairs)),
                array("d", (w for _, w in pairs)),
            )

        # CSR supporters: per-doc offsets into parallel candidate-index
        # and wr columns, preserving the evidence list order (which fixes
        # the Eq.-3 float summation order). Evidence for non-indexed
        # resources (e.g. non-English observes) can never match and is
        # simply not compiled in.
        cand_ids = sorted(
            {cid for supporters in evidence_of.values() for cid, _ in supporters}
        )
        cand_of = {cid: i for i, cid in enumerate(cand_ids)}
        weight_of = distance_weight_table(config.max_distance, config.weight_interval)
        sup_offsets = array("l", [0])
        sup_cand = array("l")
        sup_weight = array("d")
        for doc_id in doc_ids:
            for cid, distance in evidence_of.get(doc_id, ()):
                weight = weight_of.get(distance)
                if weight is None:
                    raise ValueError(
                        f"distance {distance} outside 0..{config.max_distance}"
                    )
                sup_cand.append(cand_of[cid])
                sup_weight.append(weight)
            sup_offsets.append(len(sup_cand))

        return cls(
            doc_ids=doc_ids,
            cand_ids=cand_ids,
            term_cols=term_cols,
            entity_cols=entity_cols,
            sup_offsets=sup_offsets,
            sup_cand=sup_cand,
            sup_weight=sup_weight,
            normalize=config.normalize,
            block_span=block_span,
        )

    # -- introspection -------------------------------------------------------------

    def snapshot_columns(self) -> dict[str, object]:
        """The compiled columns, keyed for the snapshot-v3 writer.

        Exposes the exact interned ids and weighted columns this engine
        computed — serializing *these* float64 values (rather than
        recomputing weights at load) is what keeps v3 rankings
        byte-identical to a freshly compiled engine. Block metadata is
        materialized for every column first (sorting any column that a
        pre-block snapshot delivered in postings order), so the written
        sections always describe doc-sorted columns.
        """
        for term in self._term_cols:
            self._pruned_term(term)
        for uri in self._entity_cols:
            self._pruned_entity(uri)
        return {
            "doc_ids": self._doc_ids,
            "cand_ids": self._cand_ids,
            "term_cols": self._term_cols,
            "entity_cols": self._entity_cols,
            "sup_offsets": self._sup_offsets,
            "sup_cand": self._sup_cand,
            "sup_weight": self._sup_weight,
            "normalize": self._normalize,
            "block_span": self._block_span,
            "term_blocks": self._term_blocks,
            "entity_blocks": self._entity_blocks,
        }

    @property
    def document_count(self) -> int:
        return len(self._doc_ids)

    @property
    def candidate_count(self) -> int:
        return len(self._cand_ids)

    @property
    def block_span(self) -> int:
        return self._block_span

    # -- pruned-mode column records ------------------------------------------------

    def _build_pruned(self, key: str, col_dict: dict, blocks: dict) -> tuple:
        docs, ws = col_dict[key]
        blk = blocks.get(key)
        if blk is None:
            # recompute-on-absent: columns from pre-block snapshots may
            # still be in postings order — re-sort by doc index (per-doc
            # sums and every downstream sort are order-invariant)
            if not is_doc_sorted(docs):
                sdocs, sws = sort_column(docs, ws)
                docs, ws = memoryview(sdocs), memoryview(sws)
                col_dict[key] = (docs, ws)
            blk = compute_blocks(docs, ws, self._block_span)
            blocks[key] = blk
        bids, boff, bmax = blk
        pairs = list(zip(docs, ws))
        # two per-column structures: pre-zipped (block id, block max)
        # pairs for the agenda's upper-bound walk, and a block → span
        # map consulted only for blocks that survive pruning — skipped
        # blocks never touch their postings. Spans are kept
        # weight-descending: multi-item accumulation is
        # order-insensitive (flags dedup in any order), and single-item
        # blocks can stop at the first posting whose score falls below
        # the heap floor (multiplication rounding is monotone, so every
        # later posting scores no higher).
        spans = {
            bids[i]: sorted(
                pairs[boff[i] : boff[i + 1]], key=_pair_weight, reverse=True
            )
            for i in range(len(bids))
        }
        # trailing dict caches leg-scaled upper-bound lists per leg
        # factor (α for terms, 1−α for entities) — the scaling floats
        # are identical to computing them inline, queries just stop
        # repeating the multiply
        return (list(zip(bids, bmax)), spans, {})

    def _pruned_term(self, term: str) -> tuple | None:
        rec = self._term_pruned.get(term)
        if rec is None:
            if term not in self._term_cols:
                return None
            rec = self._build_pruned(term, self._term_cols, self._term_blocks)
            self._term_pruned[term] = rec
        return rec

    def _pruned_entity(self, uri: str) -> tuple | None:
        rec = self._entity_pruned.get(uri)
        if rec is None:
            if uri not in self._entity_cols:
                return None
            rec = self._build_pruned(uri, self._entity_cols, self._entity_blocks)
            self._entity_pruned[uri] = rec
        return rec

    # -- query evaluation ----------------------------------------------------------

    def find_experts(
        self,
        query: AnalyzedResource,
        *,
        alpha: float,
        window: int | float | None,
        top_k: int | None = None,
        pruned: bool = False,
        stats: PruningStats | None = None,
    ) -> list[ExpertScore]:
        """Rank the candidate experts for an analyzed *query* — exactly
        the object path's ``retrieve → apply_window → ExpertRanker.rank``
        result (scores, support counts, and order), without materializing
        per-resource match objects. With ``pruned=True``, absolute-count
        windows are evaluated in the block-max mode (identical output,
        fewer postings touched); other window shapes fall back to the
        exhaustive path and are counted in *stats*."""
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        window_size(window, 0)  # validate the window shape up front
        try:
            if pruned:
                if stats is None:
                    stats = self.pruning_stats
                # strictly-positive absolute counts only (bools excluded:
                # type(True) is bool); every other shape — fractional or
                # None — takes the exhaustive path
                if type(window) is int and window > 0:
                    stats.pruned_queries += 1
                    return self._find_experts_pruned(
                        query, alpha, window, top_k, stats
                    )
                stats.fallback_queries += 1
            return self._find_experts(query, alpha, window, top_k)
        except BaseException:
            # scratch accumulators may be mid-query; rebuild them clean
            self._init_scratch()
            raise

    def _find_experts(
        self,
        query: AnalyzedResource,
        alpha: float,
        window: int | float | None,
        top_k: int | None,
    ) -> list[ExpertScore]:
        # Eq. 1, document-at-a-time: flat accumulators + touched list.
        # Accumulation order matches the object path: query terms in
        # need order, entities after terms (column order is per-doc
        # irrelevant — at most one posting per doc per column).
        term_acc = self._term_acc
        entity_acc = self._entity_acc
        flags = self._doc_flags
        touched: list[int] = []
        touch = touched.append
        if alpha > 0.0:
            term_cols = self._term_cols
            for term in query.term_counts:
                cols = term_cols.get(term)
                if cols is None:
                    continue
                for doc, weighted in zip(cols[0], cols[1]):
                    term_acc[doc] += weighted
                    if not flags[doc]:
                        flags[doc] = 1
                        touch(doc)
        if alpha < 1.0:
            entity_cols = self._entity_cols
            for uri in query.entity_counts:
                cols = entity_cols.get(uri)
                if cols is None:
                    continue
                for doc, weighted in zip(cols[0], cols[1]):
                    entity_acc[doc] += weighted
                    if not flags[doc]:
                        flags[doc] = 1
                        touch(doc)

        # combine the two legs, keep positive scores, reset the scratch
        one_minus_alpha = 1.0 - alpha
        entries: list[tuple[float, int]] = []
        entry = entries.append
        for doc in touched:
            score = alpha * term_acc[doc] + one_minus_alpha * entity_acc[doc]
            if score > 0.0:
                entry((-score, doc))
            term_acc[doc] = 0.0
            entity_acc[doc] = 0.0
            flags[doc] = 0

        # window cut over (-score, doc index): interned index order is
        # sorted-id order, so this is the object path's (-score, doc_id);
        # sort + truncate picks exactly ``sorted(entries)[:width]``
        entries.sort()
        width = window_size(window, len(entries))
        if width < len(entries):
            del entries[width:]
        return self._fold_entries(entries, top_k)

    def _find_experts_pruned(
        self,
        query: AnalyzedResource,
        alpha: float,
        window: int,
        top_k: int | None,
        stats: PruningStats,
    ) -> list[ExpertScore]:
        # agenda build: per query item, accumulate the leg-weighted block
        # maxima into the shared per-block upper bound and collect the
        # item's block → span map (consulted only for processed blocks)
        term_acc = self._term_acc
        entity_acc = self._entity_acc
        flags = self._doc_flags
        one_minus_alpha = 1.0 - alpha
        ub = self._block_ub
        bflags = self._block_flags
        tblocks: list[int] = []
        tblock = tblocks.append
        tmaps: list[dict] = []
        emaps: list[dict] = []
        n_items = 0
        if alpha > 0.0:
            for term in query.term_counts:
                rec = self._pruned_term(term)
                if rec is None:
                    continue
                n_items += 1
                ubrec, smap, scaled = rec
                tmaps.append(smap)
                sub = scaled.get(alpha)
                if sub is None:
                    sub = [(b, alpha * mx) for b, mx in ubrec]
                    scaled[alpha] = sub
                for b, smx in sub:
                    if bflags[b]:
                        ub[b] += smx
                    else:
                        bflags[b] = 1
                        ub[b] = smx
                        tblock(b)
        if alpha < 1.0:
            for uri in query.entity_counts:
                rec = self._pruned_entity(uri)
                if rec is None:
                    continue
                n_items += 1
                ubrec, smap, scaled = rec
                emaps.append(smap)
                sub = scaled.get(one_minus_alpha)
                if sub is None:
                    sub = [(b, one_minus_alpha * mx) for b, mx in ubrec]
                    scaled[one_minus_alpha] = sub
                for b, smx in sub:
                    if bflags[b]:
                        ub[b] += smx
                    else:
                        bflags[b] = 1
                        ub[b] = smx
                        tblock(b)
        slack = ub_slack(n_items)
        tblocks.sort(key=ub.__getitem__, reverse=True)

        # Process blocks best-bound first, maintaining a min-heap of
        # ``(score, -doc)`` pairs: the heap minimum is exactly the worst
        # element under the window order ``(-score, doc)``, so the heap
        # *is* the current window set — a candidate enters iff its pair
        # beats the floor (score ties resolved toward lower doc index,
        # as in the exhaustive sort) and no separate entry list or final
        # selection pass is needed. Once the heap holds ``window`` docs,
        # a block whose inflated bound is below the floor *score* — and
        # every later block, bounds are descending — cannot contribute a
        # window doc even on ties (its scores sit strictly below all
        # kept scores) and is skipped outright.
        W = window
        heappush = heapq.heappush
        heapreplace = heapq.heapreplace
        heap: list[tuple[float, int]] = []
        nheap = 0
        floor = 0.0
        h0 = (0.0, 0)
        btouched: list[int] = []
        btouch = btouched.append
        scanned = 0
        for bi, b in enumerate(tblocks):
            if nheap == W and ub[b] * slack < floor:
                scanned = bi
                break
            ts = []
            for m in tmaps:
                sp = m.get(b)
                if sp is not None:
                    ts.append(sp)
            es = []
            for m in emaps:
                sp = m.get(b)
                if sp is not None:
                    es.append(sp)
            if not es and len(ts) == 1:
                # single-item block: the combined score collapses to
                # α·w + (1−α)·0.0 == α·w, bit for bit — and the span is
                # weight-descending, so the first posting below the heap
                # floor (or at 0.0 before the heap fills) ends the block
                for d, w in ts[0]:
                    sc = alpha * w
                    if nheap == W:
                        if sc < floor:
                            break
                        pair = (sc, -d)
                        if pair > h0:
                            heapreplace(heap, pair)
                            h0 = heap[0]
                            floor = h0[0]
                    elif sc > 0.0:
                        heappush(heap, (sc, -d))
                        nheap += 1
                        if nheap == W:
                            h0 = heap[0]
                            floor = h0[0]
                    else:
                        break
                continue
            if not ts and len(es) == 1:
                for d, w in es[0]:
                    sc = one_minus_alpha * w
                    if nheap == W:
                        if sc < floor:
                            break
                        pair = (sc, -d)
                        if pair > h0:
                            heapreplace(heap, pair)
                            h0 = heap[0]
                            floor = h0[0]
                    elif sc > 0.0:
                        heappush(heap, (sc, -d))
                        nheap += 1
                        if nheap == W:
                            h0 = heap[0]
                            floor = h0[0]
                    else:
                        break
                continue
            # multi-item block: accumulate into the preallocated per-doc
            # scratch (allocation-free — temp dicts measured slower at
            # block granularity), then finalize each touched doc. Blocks
            # are doc-range complete — every posting of a block's
            # documents sits in this block — so scores are final here
            # and the heap floor may rise before the next block. One-leg
            # blocks skip the other leg's accumulator: its slots are all
            # zero, and α·T + (1−α)·0.0 == α·T (and its mirror), bit
            # for bit.
            for sp in ts:
                for d, w in sp:
                    term_acc[d] += w
                    if not flags[d]:
                        flags[d] = 1
                        btouch(d)
            for sp in es:
                for d, w in sp:
                    entity_acc[d] += w
                    if not flags[d]:
                        flags[d] = 1
                        btouch(d)
            for d in btouched:
                if not es:
                    sc = alpha * term_acc[d]
                    term_acc[d] = 0.0
                elif not ts:
                    sc = one_minus_alpha * entity_acc[d]
                    entity_acc[d] = 0.0
                else:
                    sc = alpha * term_acc[d] + one_minus_alpha * entity_acc[d]
                    term_acc[d] = 0.0
                    entity_acc[d] = 0.0
                flags[d] = 0
                if nheap < W:
                    if sc > 0.0:
                        heappush(heap, (sc, -d))
                        nheap += 1
                        if nheap == W:
                            h0 = heap[0]
                            floor = h0[0]
                elif sc >= floor:
                    pair = (sc, -d)
                    if pair > h0:
                        heapreplace(heap, pair)
                        h0 = heap[0]
                        floor = h0[0]
            del btouched[:]
        else:
            scanned = len(tblocks)
        for b in tblocks:
            bflags[b] = 0
        stats.blocks_scanned += scanned
        stats.blocks_skipped += len(tblocks) - scanned

        # the heap holds min(window, total matches) docs — exactly the
        # exhaustive path's window cut (``window_size`` would return
        # ``len(entries)`` here); re-key to its ``(-score, doc)`` order
        entries = [(-sc, -nd) for sc, nd in heap]
        entries.sort()
        return self._fold_entries(entries, top_k)

    def _fold_entries(
        self, entries: list[tuple[float, int]], top_k: int | None
    ) -> list[ExpertScore]:
        # Eq. 3 fused over the windowed docs (rank order) via the
        # per-doc supporter pair lists
        sup_pairs = self._sup_pairs
        cand_acc = self._cand_acc
        cand_support = self._cand_support
        cand_flags = self._cand_flags
        cand_touched: list[int] = []
        cand_touch = cand_touched.append
        for neg_score, doc in entries:
            score = -neg_score
            for cand, weight in sup_pairs[doc]:
                cand_acc[cand] += score * weight
                cand_support[cand] += 1
                if not cand_flags[cand]:
                    cand_flags[cand] = 1
                    cand_touch(cand)

        # EX: positive-score candidates, (-score, candidate) order
        normalize = self._normalize
        results: list[tuple[float, int, int]] = []
        result = results.append
        for cand in cand_touched:
            support = cand_support[cand]
            score = cand_acc[cand]
            if normalize and support:
                score = score / support
            if score > 0.0:
                result((-score, cand, support))
            cand_acc[cand] = 0.0
            cand_support[cand] = 0
            cand_flags[cand] = 0
        results.sort()
        if top_k is not None:
            results = results[:top_k]
        cand_ids = self._cand_ids
        return [
            ExpertScore(cand_ids[cand], -neg_score, support)
            for neg_score, cand, support in results
        ]
