"""Block-max metadata for dynamic pruning: shared by the columnar
engine, sealed segments, and any future shard finders.

The pruning design is **document-range aligned**: the interned doc-index
space is cut into fixed spans of ``block_span`` consecutive indexes, and
every posting column of a collection slice is sorted by doc index and
chunked on those *shared* boundaries. Because the boundaries are shared
across columns, the per-block maxima of different query items can be
*summed*: for block ``r`` the combined Eq. 1 score of any document in it
is bounded by

    UB(r) = Σ_terms α · max_r(tf·irf^p)  +  Σ_entities (1−α) · max_r(ef·eirf^p·we)

which is computable from block metadata alone — the property that makes
skipping whole blocks sound. (Per-list 128-posting chunks, the classic
layout for document-at-a-time WAND, do *not* have this property under
term-at-a-time evaluation: their boundaries disagree across columns, so
no per-block bound exists for the combined score.)

Re-sorting a column by doc index is invisible in the rankings: each
document appears at most once per column, so its accumulated leg sum is
the same float regardless of where in the column its posting sits, and
every downstream sort key — ``(-score, doc)``, ``(-score, candidate)``
— is unique. The engines therefore stay byte-identical to the object
path on doc-sorted columns.

Exactness under floats needs one guard: a document's final score is
combined as ``α·T + (1−α)·E`` while the bound accumulates
``Σ leg·max`` incrementally, and the two associate differently — the
exact score can exceed the bound by a few ulps (observed in practice).
:func:`ub_slack` returns a multiplicative inflation, linear in the query
item count, that dominates the worst-case relative rounding gap; blocks
are skipped only when ``UB·slack`` still cannot reach the heap
threshold, so ulp-level disagreement can never drop a window document.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence

#: default doc-index span per block. Tuned on the tiny synthetic scale
#: (732 docs): spans of 32 keep per-block agenda overhead low while
#: leaving enough blocks (~23) for the upper-bound ordering to separate
#: item-co-occurrence clusters from one-item tails.
DEFAULT_BLOCK_SPAN = 32


def ub_slack(n_items: int) -> float:
    """Multiplicative inflation for block upper bounds.

    Covers the relative rounding gap between a document's exact combined
    score (``α·Σtf·tw + (1−α)·Σef·ew·we``, two scaled leg sums) and the
    incrementally summed per-item bound: both are sums/products of the
    same ≤ ``n_items`` nonnegative addends, so their relative float
    disagreement is below ``n_items`` ulps on either side;
    ``4·2^-52 ≈ 8.9e-16`` per item is a ≥4× overestimate of one side's
    unit error, leaving margin for the other.
    """
    return 1.0 + 8.9e-16 * (n_items + 8)


def sort_column(
    docs: Sequence[int], *value_cols: Sequence
) -> tuple[array, ...]:
    """Reorder parallel posting columns by doc index (ascending).

    Returns ``(docs, *value_cols)`` as fresh arrays; value columns keep
    their original typecodes (int64 → ``"l"``, float64 → ``"d"``).
    """
    order = sorted(range(len(docs)), key=docs.__getitem__)
    out: list[array] = [array("l", (docs[i] for i in order))]
    for col in value_cols:
        code = "d" if isinstance(col[0] if len(col) else 0.0, float) else "l"
        out.append(array(code, (col[i] for i in order)))
    return tuple(out)


def is_doc_sorted(docs: Sequence[int]) -> bool:
    """True when the doc-index column is already ascending."""
    prev = -1
    for d in docs:
        if d < prev:
            return False
        prev = d
    return True


def compute_blocks(
    docs: Sequence[int], values: Sequence, block_span: int
) -> tuple[array, array, array]:
    """Per-column block metadata over a **doc-sorted** column.

    Returns ``(bids, boff, bmax)``: the distinct block ids the column's
    postings fall into (ascending), posting offsets delimiting each
    block's run (``len(bids) + 1`` entries), and the per-block maximum of
    *values*. ``bmax`` adopts the value column's typecode, so raw integer
    frequencies stay integers (segments scale them by the per-query
    weight at evaluation time).
    """
    if block_span <= 0:
        raise ValueError(f"block_span must be positive, got {block_span}")
    bids = array("l")
    boff = array("l", [0])
    code = "d" if isinstance(values[0] if len(values) else 0.0, float) else "l"
    bmax = array(code)
    cur = -1
    for i, d in enumerate(docs):
        b = d // block_span
        if b != cur:
            if b < cur:
                raise ValueError("compute_blocks requires a doc-sorted column")
            if cur >= 0:
                boff.append(i)
            bids.append(b)
            bmax.append(values[i])
            cur = b
        elif values[i] > bmax[-1]:
            bmax[-1] = values[i]
    boff.append(len(docs))
    return bids, boff, bmax


class PruningStats:
    """Cumulative counters for the block-max evaluation mode.

    ``fallback_queries`` counts pruned-mode requests that routed to the
    exhaustive path because the window was fractional or ``None`` (their
    width depends on the total match count, which pruning never learns).
    """

    __slots__ = (
        "pruned_queries",
        "fallback_queries",
        "blocks_scanned",
        "blocks_skipped",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.pruned_queries = 0
        self.fallback_queries = 0
        self.blocks_scanned = 0
        self.blocks_skipped = 0

    @property
    def skip_rate(self) -> float:
        total = self.blocks_scanned + self.blocks_skipped
        return self.blocks_skipped / total if total else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "pruned_queries": self.pruned_queries,
            "fallback_queries": self.fallback_queries,
            "blocks_scanned": self.blocks_scanned,
            "blocks_skipped": self.blocks_skipped,
            "block_skip_rate": self.skip_rate,
        }
