"""Resource analysis: raw text → terms + entities.

Bridges the text pipeline (Fig. 4, language-dependent steps) and the
entity annotator into the representation the indexes store: a term
frequency bag and, per entity, an occurrence count and the best
disambiguation confidence seen in the resource.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.entity.annotator import EntityAnnotator
from repro.textproc.pipeline import TextPipeline


@dataclass(frozen=True)
class AnalyzedResource:
    """Index-ready representation of one resource (or one query)."""

    doc_id: str
    language: str
    term_counts: dict[str, int] = field(default_factory=dict)
    #: entity_uri → (occurrence count, max dScore in this document)
    entity_counts: dict[str, tuple[int, float]] = field(default_factory=dict)

    @property
    def length(self) -> int:
        """Number of term occurrences (document length)."""
        return sum(self.term_counts.values())

    @property
    def is_english(self) -> bool:
        return self.language == "en"


class ResourceAnalyzer:
    """Analyze resource/query text into an :class:`AnalyzedResource`.

    The same analyzer processes expertise needs and resources — the paper
    stresses the analysis is "symmetrically performed on both" (Sec. 2.3).
    """

    def __init__(self, pipeline: TextPipeline, annotator: EntityAnnotator):
        self._pipeline = pipeline
        self._annotator = annotator

    def analyze(self, doc_id: str, text: str, *, language: str | None = None) -> AnalyzedResource:
        """Run text processing and entity annotation on *text*."""
        analyzed = self._pipeline.analyze(text, language=language)
        term_counts: Counter[str] = Counter(analyzed.terms)
        entity_counts: dict[str, tuple[int, float]] = {}
        # Entities are recognized on unstemmed tokens (anchors are surface
        # forms); only English (or too-short-to-identify) text is
        # annotated, mirroring the paper's English-only corpus.
        if analyzed.language in ("en", "und"):
            for ann in self._annotator.annotate_tokens(analyzed.tokens):
                count, best = entity_counts.get(ann.entity_uri, (0, 0.0))
                entity_counts[ann.entity_uri] = (count + 1, max(best, ann.d_score))
        return AnalyzedResource(
            doc_id=doc_id,
            language=analyzed.language,
            term_counts=dict(term_counts),
            entity_counts=entity_counts,
        )
