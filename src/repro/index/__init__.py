"""Indexing & retrieval substrate (paper Sec. 2.4).

Resources are analyzed into bags of stemmed terms *and* sets of
disambiguated entities, stored in two inverted indexes. The vector-space
retriever implements the paper's Eq. 1–2: the relevance of a resource is
an ``α``-weighted combination of the term contribution
(``tf · irf²``) and the entity contribution (``ef · eirf² · we``), where
``we = 1 + dScore``.
"""

from repro.index.analyzer import AnalyzedResource, ResourceAnalyzer
from repro.index.entity_index import EntityIndex, EntityPosting
from repro.index.inverted import InvertedIndex, Posting
from repro.index.parallel import analyze_tasks, build_indexes
from repro.index.statistics import CollectionStatistics
from repro.index.vsm import ResourceMatch, VectorSpaceRetriever

# NOTE: repro.index.columnar and repro.index.segments are deliberately
# NOT imported here — they depend on core.* submodules, which import
# this package mid-init (see "Layering rules" in docs/architecture.md).
# Import them directly:
# ``from repro.index.columnar import ColumnarQueryEngine``
# ``from repro.index.segments import SegmentedIndex``.

__all__ = [
    "AnalyzedResource",
    "CollectionStatistics",
    "EntityIndex",
    "EntityPosting",
    "InvertedIndex",
    "Posting",
    "ResourceAnalyzer",
    "ResourceMatch",
    "VectorSpaceRetriever",
    "analyze_tasks",
    "build_indexes",
]
