"""Segmented incremental index: sealed segments + write buffer + compaction.

The monolithic serving path compiles the whole collection into one
:class:`~repro.index.columnar.ColumnarQueryEngine`; a single streamed
resource invalidates the compiled form and the next query pays a full
recompile. This module adds the Lucene-style alternative (cf. production
expert-mining systems, which absorb half a billion streamed signals this
way — Spasojevic et al.):

* **write buffer** — streamed resources (Eq. 1 term/entity postings plus
  Eq. 3 evidence rows) land in a small mutable :class:`_WriteBuffer`,
  scored with plain dict walks; an ``observe`` touches nothing else;
* **sealed segments** — when the buffer reaches ``seal_threshold``
  resources it seals into an immutable :class:`Segment` whose postings
  are compiled once into flat columns (interned doc indexes, ``array``
  frequency columns) and never touched again;
* **tiered compaction** — segments of the same size tier are merged
  (reusing :meth:`InvertedIndex.merge` / :meth:`EntityIndex.merge`, which
  preserve postings order) either synchronously after a seal, from a
  background thread, or only on explicit :meth:`SegmentedIndex.compact`.

Queries evaluate document-at-a-time across every live segment plus the
buffer under **shared collection statistics**: ``irf``/``eirf`` use the
union document count and the summed per-source document frequencies, so
every per-posting product repeats the monolithic float operations
exactly. Each document lives in exactly one source, its per-term
accumulation order is the query's term order (one posting per term per
document), and the global window cut and Eq.-3 fold order on the actual
``(-score, doc_id)`` strings — rankings are therefore **byte-identical**
to a monolithic cold rebuild at the same collection state, on both the
columnar and the object engine (``tests/core/test_streaming.py`` pins
this over interleaved streams).

Thread model: one thread queries and writes; only compaction may run on
a background thread. The live-segment list is swapped immutably under a
lock, so a query holds a consistent snapshot while the compactor
replaces merged runs; sealed segments are never mutated.
"""

from __future__ import annotations

import heapq
import math
import threading
from array import array
from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any
from dataclasses import dataclass

# Direct submodule imports only — ``repro.index`` is imported by
# ``repro.core``, so pulling core *package* attributes here would cycle.
from repro.core.config import FinderConfig
from repro.core.ranking import ExpertScore
from repro.core.scoring import distance_weight_table, window_size
from repro.index.analyzer import AnalyzedResource
from repro.index.blockmax import (
    DEFAULT_BLOCK_SPAN,
    PruningStats,
    compute_blocks,
    is_doc_sorted,
    sort_column,
    ub_slack,
)
from repro.index.entity_index import EntityIndex
from repro.index.inverted import InvertedIndex
from repro.index.vsm import ResourceMatch, _match_order, entity_weight

#: default buffer size (in resources) at which the buffer seals
DEFAULT_SEAL_THRESHOLD = 256

#: default tier fanout: a run of this many same-tier segments is merged
DEFAULT_FANOUT = 4

_COMPACTION_MODES = ("synchronous", "background", "manual")

#: agenda blocks between shared-floor lock round-trips (see
#: :meth:`SegmentedIndex._scored_entries_pruned`)
_FLOOR_STRIDE = 32

#: evidence rows: ``((candidate_id, distance), ...)`` in stream order
_Rows = tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class SegmentStats:
    """Gauges of one :class:`SegmentedIndex` (a point-in-time snapshot)."""

    #: number of live sealed segments
    segments: int
    #: indexed documents per live segment, in segment order
    segment_docs: tuple[int, ...]
    #: resources currently in the write buffer (indexed or evidence-only)
    buffered: int
    #: indexed documents across all segments plus the buffer
    documents: int
    #: all resources ever admitted (indexed + evidence-only)
    resources: int
    #: buffer seals performed
    seals: int
    #: compaction merges performed
    compactions: int


class Segment:
    """One immutable, columnar-compiled slice of the collection.

    Holds the slice's term/entity indexes (for union statistics, merges,
    and snapshots) plus compiled flat columns for query evaluation:
    interned doc indexes with *raw* frequencies — unlike the monolithic
    engine the collection statistics keep moving as the buffer grows, so
    ``tf·irf^p`` / ``ef·eirf^p·we`` are formed at query time from the
    shared per-query weights (the identical float operations, deferred).
    """

    __slots__ = (
        "segment_id",
        "evidence",
        "_term_index",
        "_entity_index",
        "_hydrate",
        "_doc_ids",
        "_term_cols",
        "_entity_cols",
        "_resource_ids",
        "_term_acc",
        "_entity_acc",
        "_doc_flags",
        "_block_span",
        "_term_blocks",
        "_entity_blocks",
        "_term_pruned",
        "_entity_pruned",
    )

    def __init__(
        self,
        segment_id: int,
        term_index: InvertedIndex,
        entity_index: EntityIndex,
        evidence: Mapping[str, _Rows],
        *,
        block_span: int | None = None,
    ):
        if term_index.doc_ids() != entity_index.doc_ids():
            raise ValueError(
                "term and entity indexes disagree on the segment's doc ids "
                f"({term_index.document_count} vs {entity_index.document_count})"
            )
        self.segment_id = segment_id
        self._term_index: InvertedIndex | None = term_index
        self._entity_index: EntityIndex | None = entity_index
        self._hydrate = None
        self.evidence = dict(evidence)
        self._resource_ids = frozenset(self.evidence) | term_index.doc_ids()

        # compile: dense doc indexes in sorted-id order + raw-frequency
        # columns (the d_score is folded to we = 1 + dScore once; the
        # posting product at query time is ef · weight · we, exactly the
        # monolithic engine's compile-time expression)
        doc_ids = sorted(term_index.doc_ids())
        doc_of = {doc_id: i for i, doc_id in enumerate(doc_ids)}
        self._doc_ids: list[str] = doc_ids
        self._term_cols: dict[str, tuple[array, array]] = {}
        for term, postings in term_index.items():
            self._term_cols[term] = (
                array("l", (doc_of[p.doc_id] for p in postings)),
                array("l", (p.term_frequency for p in postings)),
            )
        self._entity_cols: dict[str, tuple[array, array, array]] = {}
        for uri, postings in entity_index.items():
            self._entity_cols[uri] = (
                array("l", (doc_of[p.doc_id] for p in postings)),
                array("l", (p.entity_frequency for p in postings)),
                array("d", (entity_weight(p.d_score) for p in postings)),
            )
        self._init_blocks(block_span)
        self._init_scratch()

    @classmethod
    def from_columns(
        cls,
        segment_id: int,
        doc_ids: Sequence[str],
        term_cols: Mapping[str, tuple],
        entity_cols: Mapping[str, tuple],
        evidence: Mapping[str, _Rows],
        hydrate: "Callable[[], tuple[InvertedIndex, EntityIndex]] | None",
        *,
        block_span: int | None = None,
        term_blocks: Mapping[str, tuple] | None = None,
        entity_blocks: Mapping[str, tuple] | None = None,
    ) -> "Segment":
        """Adopt already-compiled columns (a v3 snapshot's mapped buffers)
        without building the posting-object indexes.

        *doc_ids* must be the segment's indexed doc ids in sorted order
        (the interning order the columns were compiled under); column
        values may be ``array``s or zero-copy ``memoryview`` casts.
        *hydrate* is a zero-argument callable returning the
        ``(InvertedIndex, EntityIndex)`` pair — invoked at most once, only
        if a merge or snapshot re-save actually needs posting objects.
        *term_blocks*/*entity_blocks* adopt per-column ``(bids, boff,
        bmax)`` block metadata written by a v3+blocks snapshot (whose
        columns are doc-sorted); when absent, pruning recomputes it on
        first use — the recompute-on-absent compatibility rule.
        """
        segment = cls.__new__(cls)
        segment.segment_id = segment_id
        segment._term_index = None
        segment._entity_index = None
        segment._hydrate = hydrate
        segment.evidence = dict(evidence)
        segment._doc_ids = list(doc_ids)
        segment._resource_ids = frozenset(segment.evidence) | frozenset(
            segment._doc_ids
        )
        segment._term_cols = dict(term_cols)
        segment._entity_cols = dict(entity_cols)
        segment._init_blocks(block_span)
        if term_blocks:
            segment._term_blocks.update(term_blocks)
        if entity_blocks:
            segment._entity_blocks.update(entity_blocks)
        segment._init_scratch()
        return segment

    def _init_blocks(self, block_span: int | None) -> None:
        if block_span is not None and block_span <= 0:
            raise ValueError(f"block_span must be positive, got {block_span}")
        self._block_span = block_span or DEFAULT_BLOCK_SPAN
        #: per-column ``(bids, boff, bmax)`` with *raw* maxima — max
        #: ``tf`` per block for terms, max ``ef·we`` for entities — the
        #: collection statistics (and so ``tw``/``ew``) keep moving as
        #: the buffer grows, so bounds are scaled per query
        self._term_blocks: dict[str, tuple] = {}
        self._entity_blocks: dict[str, tuple] = {}
        #: lazily built pruned-mode records: ((bid, raw max) pairs for
        #: the agenda walk, block id → posting-span map)
        self._term_pruned: dict[str, tuple] = {}
        self._entity_pruned: dict[str, tuple] = {}

    def _init_scratch(self) -> None:
        n_docs = len(self._doc_ids)
        self._term_acc = [0.0] * n_docs
        self._entity_acc = [0.0] * n_docs
        self._doc_flags = bytearray(n_docs)

    @property
    def term_index(self) -> InvertedIndex:
        """The posting-object term index, hydrating it on first use for
        column-restored segments (merges and jsonl re-saves need it;
        query evaluation and statistics never do)."""
        if self._term_index is None:
            self._run_hydrate()
        return self._term_index

    @property
    def entity_index(self) -> EntityIndex:
        if self._entity_index is None:
            self._run_hydrate()
        return self._entity_index

    def _run_hydrate(self) -> None:
        hydrate = self._hydrate
        if hydrate is None:
            raise RuntimeError(
                f"segment {self.segment_id} has no hydrator for its indexes"
            )
        self._hydrate = None
        self._term_index, self._entity_index = hydrate()

    def term_df(self, term: str) -> int:
        """Documents of this segment containing *term* — served from the
        compiled column lengths, never hydrating."""
        cols = self._term_cols.get(term)
        return len(cols[0]) if cols is not None else 0

    def entity_df(self, entity_uri: str) -> int:
        """Documents of this segment annotated with *entity_uri*."""
        cols = self._entity_cols.get(entity_uri)
        return len(cols[0]) if cols is not None else 0

    @property
    def block_span(self) -> int:
        return self._block_span

    @property
    def document_count(self) -> int:
        return len(self._doc_ids)

    @property
    def resource_count(self) -> int:
        return len(self._resource_ids)

    @property
    def resource_ids(self) -> frozenset[str]:
        return self._resource_ids

    def _score_docs(
        self,
        terms: Sequence[tuple[str, float]],
        entities: Sequence[tuple[str, float]],
        out: list[tuple[str, float, float]],
    ) -> None:
        """Append ``(doc_id, term_score, entity_score)`` for every doc of
        this segment touched by the weighted query items; scratch is
        reset on the way out."""
        term_acc = self._term_acc
        entity_acc = self._entity_acc
        flags = self._doc_flags
        touched: list[int] = []
        touch = touched.append
        term_cols = self._term_cols
        for term, tw in terms:
            cols = term_cols.get(term)
            if cols is None:
                continue
            for doc, tf in zip(cols[0], cols[1]):
                term_acc[doc] += tf * tw
                if not flags[doc]:
                    flags[doc] = 1
                    touch(doc)
        entity_cols = self._entity_cols
        for uri, ew in entities:
            cols = entity_cols.get(uri)
            if cols is None:
                continue
            for doc, ef, we in zip(cols[0], cols[1], cols[2]):
                entity_acc[doc] += ef * ew * we
                if not flags[doc]:
                    flags[doc] = 1
                    touch(doc)
        doc_ids = self._doc_ids
        emit = out.append
        for doc in touched:
            emit((doc_ids[doc], term_acc[doc], entity_acc[doc]))
            term_acc[doc] = 0.0
            entity_acc[doc] = 0.0
            flags[doc] = 0

    # -- block-max metadata (see repro.index.blockmax) -----------------------------

    def _pruned_term(self, term: str) -> tuple | None:
        """The term's agenda record ``((bid, max tf) pairs, block id →
        span map)``, built on first pruned use from compiled columns only
        — column-restored segments stay unhydrated."""
        rec = self._term_pruned.get(term)
        if rec is None:
            cols = self._term_cols.get(term)
            if cols is None:
                return None
            docs, tf = cols
            blk = self._term_blocks.get(term)
            if blk is None:
                if not is_doc_sorted(docs):
                    docs, tf = sort_column(docs, tf)
                    self._term_cols[term] = (docs, tf)
                blk = compute_blocks(docs, tf, self._block_span)
                self._term_blocks[term] = blk
            bids, boff, bmax = blk
            pairs = list(zip(docs, tf))
            spans = {
                bids[i]: pairs[boff[i] : boff[i + 1]] for i in range(len(bids))
            }
            rec = (list(zip(bids, bmax)), spans)
            self._term_pruned[term] = rec
        return rec

    def _pruned_entity(self, uri: str) -> tuple | None:
        """The entity's agenda record; block maxima bound the raw
        ``ef·we`` product (its ``·ew`` scaling happens per query, and the
        association difference against the evaluated ``ef·ew·we`` is
        ulp-level — covered by :func:`~repro.index.blockmax.ub_slack`)."""
        rec = self._entity_pruned.get(uri)
        if rec is None:
            cols = self._entity_cols.get(uri)
            if cols is None:
                return None
            docs, ef, we = cols
            blk = self._entity_blocks.get(uri)
            if blk is None:
                if not is_doc_sorted(docs):
                    docs, ef, we = sort_column(docs, ef, we)
                    self._entity_cols[uri] = (docs, ef, we)
                raw = array("d", (f * w for f, w in zip(ef, we)))
                blk = compute_blocks(docs, raw, self._block_span)
                self._entity_blocks[uri] = blk
            bids, boff, bmax = blk
            triples = list(zip(docs, ef, we))
            spans = {
                bids[i]: triples[boff[i] : boff[i + 1]]
                for i in range(len(bids))
            }
            rec = (list(zip(bids, bmax)), spans)
            self._entity_pruned[uri] = rec
        return rec


class _WriteBuffer:
    """The mutable tail of the collection: plain indexes + evidence rows."""

    __slots__ = ("term_index", "entity_index", "evidence")

    def __init__(self) -> None:
        self.term_index = InvertedIndex()
        self.entity_index = EntityIndex()
        self.evidence: dict[str, _Rows] = {}

    @classmethod
    def restore(
        cls,
        term_index: InvertedIndex,
        entity_index: EntityIndex,
        evidence: Mapping[str, _Rows],
    ) -> "_WriteBuffer":
        if term_index.doc_ids() != entity_index.doc_ids():
            raise ValueError(
                "term and entity indexes disagree on the buffer's doc ids "
                f"({term_index.document_count} vs {entity_index.document_count})"
            )
        buffer = cls()
        buffer.term_index = term_index
        buffer.entity_index = entity_index
        buffer.evidence = dict(evidence)
        return buffer

    @property
    def document_count(self) -> int:
        return self.term_index.document_count

    @property
    def resource_count(self) -> int:
        return len(self.evidence)

    @property
    def resource_ids(self) -> frozenset[str]:
        return frozenset(self.evidence) | self.term_index.doc_ids()

    def add(self, analyzed: AnalyzedResource, rows: _Rows, index: bool) -> None:
        self.evidence[analyzed.doc_id] = rows
        if index:
            self.term_index.add_document(analyzed.doc_id, analyzed.term_counts)
            self.entity_index.add_document(analyzed.doc_id, analyzed.entity_counts)

    def _score_docs(
        self,
        terms: Sequence[tuple[str, float]],
        entities: Sequence[tuple[str, float]],
        out: list[tuple[str, float, float]],
    ) -> None:
        """Dict-walk counterpart of :meth:`Segment._score_docs` — the
        buffer is small and changes on every observe, so it is never
        compiled."""
        term_scores: dict[str, float] = {}
        entity_scores: dict[str, float] = {}
        term_index = self.term_index
        for term, tw in terms:
            for posting in term_index.postings(term):
                doc_id = posting.doc_id
                term_scores[doc_id] = (
                    term_scores.get(doc_id, 0.0) + posting.term_frequency * tw
                )
        entity_index = self.entity_index
        for uri, ew in entities:
            for posting in entity_index.postings(uri):
                doc_id = posting.doc_id
                entity_scores[doc_id] = (
                    entity_scores.get(doc_id, 0.0)
                    + posting.entity_frequency * ew * entity_weight(posting.d_score)
                )
        emit = out.append
        # repro: lint-ok[determinism] emission order is scratch only —
        # SegmentedIndex merges all segments' rows and sorts with the
        # total (-score, doc_id) key before any cut
        for doc_id in term_scores.keys() | entity_scores.keys():
            emit(
                (
                    doc_id,
                    term_scores.get(doc_id, 0.0),
                    entity_scores.get(doc_id, 0.0),
                )
            )


class SegmentedIndex:
    """Sealed segments + write buffer behind one query interface.

    Construction: :meth:`from_built` wraps a cold build's indexes as the
    base segment; :meth:`restore` rebuilds from snapshot state; the bare
    constructor starts empty. ``compaction`` is one of ``"synchronous"``
    (merge inline after each seal), ``"background"`` (a daemon thread
    merges after seals; call :meth:`close` or use the index as a context
    manager to stop it), or ``"manual"`` (only explicit :meth:`compact`).
    """

    def __init__(
        self,
        config: FinderConfig,
        *,
        seal_threshold: int = DEFAULT_SEAL_THRESHOLD,
        compaction: str = "synchronous",
        fanout: int = DEFAULT_FANOUT,
        block_span: int | None = None,
    ):
        if seal_threshold < 1:
            raise ValueError(f"seal_threshold must be >= 1, got {seal_threshold}")
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        if compaction not in _COMPACTION_MODES:
            raise ValueError(
                f"compaction must be one of {_COMPACTION_MODES}, got {compaction!r}"
            )
        if block_span is not None and block_span <= 0:
            raise ValueError(f"block_span must be positive, got {block_span}")
        self._block_span = block_span or DEFAULT_BLOCK_SPAN
        self.pruning_stats = PruningStats()
        self._config = config
        self._idf_exponent = config.idf_exponent
        self._normalize = config.normalize
        self._weight_of = distance_weight_table(
            config.max_distance, config.weight_interval
        )
        self._seal_threshold = seal_threshold
        self._fanout = fanout
        self._compaction = compaction
        self._segments: list[Segment] = []  # replaced immutably under _lock
        self._buffer = _WriteBuffer()
        self._resource_ids: set[str] = set()
        self._doc_count = 0
        self._irf_cache: dict[str, float] = {}
        self._eirf_cache: dict[str, float] = {}
        self._tw_cache: dict[str, float] = {}
        self._ew_cache: dict[str, float] = {}
        self._seals = 0
        self._compactions = 0
        self._next_segment_id = 0
        self._lock = threading.Lock()  # guards _segments/_buffer swaps + ids
        self._compact_lock = threading.Lock()  # serializes compaction passes
        self._closed = False
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None
        if compaction == "background":
            self._thread = threading.Thread(
                target=self._compact_loop, name="segment-compactor", daemon=True
            )
            self._thread.start()

    # -- construction --------------------------------------------------------------

    @classmethod
    def from_built(
        cls,
        term_index: InvertedIndex,
        entity_index: EntityIndex,
        evidence_of: Mapping[str, Sequence[tuple[str, int]]],
        config: FinderConfig,
        *,
        seal_threshold: int = DEFAULT_SEAL_THRESHOLD,
        compaction: str = "synchronous",
        fanout: int = DEFAULT_FANOUT,
        block_span: int | None = None,
    ) -> "SegmentedIndex":
        """Wrap a cold build's indexes + evidence as the base segment."""
        index = cls(
            config,
            seal_threshold=seal_threshold,
            compaction=compaction,
            fanout=fanout,
            block_span=block_span,
        )
        if evidence_of or term_index.document_count:
            evidence = {
                doc_id: tuple((cid, distance) for cid, distance in rows)
                for doc_id, rows in evidence_of.items()
            }
            index._register(
                Segment(
                    index._next_id(),
                    term_index,
                    entity_index,
                    evidence,
                    block_span=index._block_span,
                )
            )
        return index

    @classmethod
    def restore(
        cls,
        config: FinderConfig,
        segments: Iterable[tuple[int, InvertedIndex, EntityIndex, Mapping[str, _Rows]]],
        buffer: tuple[InvertedIndex, EntityIndex, Mapping[str, _Rows]] | None,
        *,
        seal_threshold: int = DEFAULT_SEAL_THRESHOLD,
        compaction: str = "synchronous",
        fanout: int = DEFAULT_FANOUT,
        block_span: int | None = None,
    ) -> "SegmentedIndex":
        """Rebuild from snapshot state: sealed segments in manifest order
        (each ``(segment_id, term_index, entity_index, evidence)``) plus
        an optional unsealed buffer. Postings and evidence orders are
        preserved, so restored rankings are byte-identical."""
        index = cls(
            config,
            seal_threshold=seal_threshold,
            compaction=compaction,
            fanout=fanout,
            block_span=block_span,
        )
        for segment_id, term_index, entity_index, evidence in segments:
            index._register(
                Segment(
                    segment_id,
                    term_index,
                    entity_index,
                    evidence,
                    block_span=index._block_span,
                )
            )
            index._next_segment_id = max(index._next_segment_id, segment_id + 1)
        if buffer is not None:
            term_index, entity_index, evidence = buffer
            restored = _WriteBuffer.restore(term_index, entity_index, evidence)
            index._absorb_ids(restored.resource_ids, "the write buffer")
            index._validate_rows(restored.evidence.values())
            index._buffer = restored
            index._doc_count += restored.document_count
        return index

    @classmethod
    def restore_compiled(
        cls,
        config: FinderConfig,
        segments: Iterable[Segment],
        buffer: tuple[InvertedIndex, EntityIndex, Mapping[str, _Rows]] | None,
        *,
        seal_threshold: int = DEFAULT_SEAL_THRESHOLD,
        compaction: str = "synchronous",
        fanout: int = DEFAULT_FANOUT,
        block_span: int | None = None,
    ) -> "SegmentedIndex":
        """Rebuild from already-compiled :class:`Segment` objects (the
        snapshot-v3 mmap path, via :meth:`Segment.from_columns`) plus an
        optional unsealed buffer; the same overlap/evidence validation as
        :meth:`restore` applies."""
        index = cls(
            config,
            seal_threshold=seal_threshold,
            compaction=compaction,
            fanout=fanout,
            block_span=block_span,
        )
        for segment in segments:
            index._register(segment)
            index._next_segment_id = max(
                index._next_segment_id, segment.segment_id + 1
            )
        if buffer is not None:
            term_index, entity_index, evidence = buffer
            restored = _WriteBuffer.restore(term_index, entity_index, evidence)
            index._absorb_ids(restored.resource_ids, "the write buffer")
            index._validate_rows(restored.evidence.values())
            index._buffer = restored
            index._doc_count += restored.document_count
        return index

    def _register(self, segment: Segment) -> None:
        self._absorb_ids(segment.resource_ids, f"segment {segment.segment_id}")
        self._validate_rows(segment.evidence.values())
        self._segments = [*self._segments, segment]
        self._doc_count += segment.document_count

    def _absorb_ids(self, resource_ids: frozenset[str], where: str) -> None:
        overlap = self._resource_ids & resource_ids
        if overlap:
            example = sorted(overlap)[0]
            raise ValueError(
                f"resource {example!r} appears in more than one place "
                f"(while adding {where})"
            )
        self._resource_ids |= resource_ids

    def _validate_rows(self, rows_of: Iterable[_Rows]) -> None:
        weight_of = self._weight_of
        for rows in rows_of:
            for _candidate_id, distance in rows:
                if weight_of.get(distance) is None:
                    raise ValueError(
                        f"distance {distance} outside 0..{self._config.max_distance}"
                    )

    def _next_id(self) -> int:
        with self._lock:
            segment_id = self._next_segment_id
            self._next_segment_id += 1
        return segment_id

    # -- writes --------------------------------------------------------------------

    def add(
        self,
        analyzed: AnalyzedResource,
        supporters: Sequence[tuple[str, int]],
        *,
        index: bool = True,
    ) -> None:
        """Admit one streamed resource into the write buffer.

        *supporters* are the resource's Eq.-3 evidence rows; with
        ``index=False`` the resource is evidence-only (the build-time
        language cut). Indexed adds shift every irf/eirf ratio, so the
        shared statistics caches are invalidated here — stale statistics
        cannot be observed through this class. Reaching the seal
        threshold seals the buffer and (mode permitting) compacts.
        """
        doc_id = analyzed.doc_id
        if doc_id in self._resource_ids:
            raise ValueError(f"resource {doc_id!r} already admitted")
        rows = tuple((cid, distance) for cid, distance in supporters)
        if not rows:
            raise ValueError("a resource must support at least one candidate")
        self._validate_rows((rows,))
        self._buffer.add(analyzed, rows, index)
        self._resource_ids.add(doc_id)
        if index:
            self._doc_count += 1
            self._invalidate_statistics()
        if self._buffer.resource_count >= self._seal_threshold:
            self.seal()

    def _invalidate_statistics(self) -> None:
        self._irf_cache.clear()
        self._eirf_cache.clear()
        self._tw_cache.clear()
        self._ew_cache.clear()

    def seal(self) -> Segment | None:
        """Seal the buffer into a segment now (no-op when empty), then
        trigger compaction per the configured mode."""
        segment = self._seal()
        if segment is not None:
            if self._compaction == "synchronous":
                self.compact()
            elif self._compaction == "background":
                self._wake.set()
        return segment

    def _seal(self) -> Segment | None:
        # compaction-free inner seal, shared with compact(full=True)
        buffer = self._buffer
        if buffer.resource_count == 0:
            return None
        segment = Segment(
            self._next_id(),
            buffer.term_index,
            buffer.entity_index,
            buffer.evidence,
            block_span=self._block_span,
        )
        with self._lock:
            self._segments = [*self._segments, segment]
            self._buffer = _WriteBuffer()
        self._seals += 1
        return segment

    # -- compaction ----------------------------------------------------------------

    def _tier(self, segment: Segment) -> int:
        # floor(log_fanout(resource_count)) without float logarithms
        count = segment.resource_count
        fanout = self._fanout
        tier = 0
        bound = fanout
        while bound <= count:
            tier += 1
            bound *= fanout
        return tier

    def _plan(self, segments: Sequence[Segment]) -> tuple[int, int] | None:
        """The first adjacent run of >= fanout same-tier segments, as a
        ``[start, stop)`` index range — or None when nothing qualifies.
        Only adjacent segments merge, so the stream order of evidence
        (and therefore the snapshot layout) is preserved."""
        tiers = [self._tier(segment) for segment in segments]
        start = 0
        while start < len(segments):
            stop = start
            while stop < len(tiers) and tiers[stop] == tiers[start]:
                stop += 1
            if stop - start >= self._fanout:
                return start, stop
            start = stop
        return None

    def compact(self, *, full: bool = False) -> int:
        """Run compaction to quiescence; returns the merges performed.

        ``full=True`` first seals the buffer, then merges *all* live
        segments into one — the "optimize" path behind
        ``repro index --compact``.
        """
        with self._compact_lock:
            if full:
                self._seal()
                if len(self._segments) <= 1:
                    return 0
                self._merge_range(0, len(self._segments))
                return 1
            merges = 0
            while True:
                plan = self._plan(self._segments)
                if plan is None:
                    return merges
                self._merge_range(*plan)
                merges += 1

    def _merge_range(self, start: int, stop: int) -> None:
        # seals only append at the tail, so [start, stop) stays valid for
        # the duration of the merge even when writes race the background
        # compactor; the swap below re-reads the live list under the lock
        run = self._segments[start:stop]
        term_index = InvertedIndex()
        entity_index = EntityIndex()
        evidence: dict[str, _Rows] = {}
        for segment in run:
            term_index.merge(segment.term_index)
            entity_index.merge(segment.entity_index)
            evidence.update(segment.evidence)
        merged = Segment(
            self._next_id(),
            term_index,
            entity_index,
            evidence,
            block_span=self._block_span,
        )
        with self._lock:
            live = self._segments
            self._segments = [*live[:start], merged, *live[stop:]]
        self._compactions += 1

    def _compact_loop(self) -> None:
        while True:
            self._wake.wait()
            self._wake.clear()
            if self._closed:
                return
            self.compact()

    def await_compactions(self) -> None:
        """Block until no compaction work remains (a background pass in
        flight finishes first; then any residual plan runs inline)."""
        self.compact()

    def close(self, timeout: float = 10.0) -> None:
        """Stop the background compactor, if any. Idempotent.

        Raises :class:`RuntimeError` if the compactor thread is still
        alive after *timeout* seconds — a wedged merge must surface, not
        be silently abandoned mid-flight. The thread handle is kept so a
        later :meth:`close` can retry the join.
        """
        self._closed = True
        thread = self._thread
        if thread is not None:
            self._wake.set()
            thread.join(timeout=timeout)
            if thread.is_alive():
                raise RuntimeError(
                    f"segment compactor did not stop within {timeout} s; "
                    "a compaction pass is still running"
                )
            self._thread = None

    def __enter__(self) -> "SegmentedIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- shared collection statistics ----------------------------------------------

    @property
    def block_span(self) -> int:
        """Doc-index span per pruning block, shared by every segment."""
        return self._block_span

    @property
    def document_count(self) -> int:
        """Indexed documents across all segments plus the buffer — the N
        of the shared irf/eirf ratios."""
        return self._doc_count

    @property
    def resource_count(self) -> int:
        """All admitted resources, including evidence-only ones."""
        return len(self._resource_ids)

    def irf(self, term: str) -> float:
        """Inverse resource frequency of *term* over the union — the same
        integers (and therefore the same float) as a monolithic
        :class:`~repro.index.statistics.CollectionStatistics` over the
        merged collection."""
        cached = self._irf_cache.get(term)
        if cached is not None:
            return cached
        df = self._buffer.term_index.document_frequency(term)
        for segment in self._segments:
            df += segment.term_df(term)
        value = math.log(1.0 + self._doc_count / df) if df else 0.0
        self._irf_cache[term] = value
        return value

    def eirf(self, entity_uri: str) -> float:
        """Inverse resource frequency of *entity_uri* over the union."""
        cached = self._eirf_cache.get(entity_uri)
        if cached is not None:
            return cached
        df = self._buffer.entity_index.document_frequency(entity_uri)
        for segment in self._segments:
            df += segment.entity_df(entity_uri)
        value = math.log(1.0 + self._doc_count / df) if df else 0.0
        self._eirf_cache[entity_uri] = value
        return value

    def _powered_irf(self, term: str) -> float:
        cached = self._tw_cache.get(term)
        if cached is None:
            cached = self._tw_cache[term] = self.irf(term) ** self._idf_exponent
        return cached

    def _powered_eirf(self, uri: str) -> float:
        cached = self._ew_cache.get(uri)
        if cached is None:
            cached = self._ew_cache[uri] = self.eirf(uri) ** self._idf_exponent
        return cached

    def _query_weights(
        self, query: AnalyzedResource, alpha: float
    ) -> tuple[list[tuple[str, float]], list[tuple[str, float]]]:
        terms: list[tuple[str, float]] = []
        if alpha > 0.0:
            for term in query.term_counts:
                weight = self._powered_irf(term)
                if weight:
                    terms.append((term, weight))
        entities: list[tuple[str, float]] = []
        if alpha < 1.0:
            for uri in query.entity_counts:
                weight = self._powered_eirf(uri)
                if weight:
                    entities.append((uri, weight))
        return terms, entities

    # -- query evaluation ----------------------------------------------------------

    def find_experts(
        self,
        query: AnalyzedResource,
        *,
        alpha: float,
        window: int | float | None,
        top_k: int | None = None,
        pruned: bool = False,
        stats: PruningStats | None = None,
    ) -> list[ExpertScore]:
        """Rank the candidate experts for an analyzed *query* across all
        live segments plus the buffer — byte-identical to the monolithic
        engines at the same collection state. With ``pruned=True``,
        absolute-count windows evaluate in the block-max mode (identical
        output, fewer segment postings touched); other window shapes
        fall back to the exhaustive path and are counted in *stats*."""
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        window_size(window, 0)  # validate the window shape up front
        segments = self._segments
        try:
            if pruned:
                if stats is None:
                    stats = self.pruning_stats
                # strictly-positive absolute counts only (bools excluded);
                # every other shape — fractional or None — takes the
                # exhaustive path
                if type(window) is int and window > 0:
                    stats.pruned_queries += 1
                    return self._find_experts_pruned(
                        segments, query, alpha, window, top_k, stats
                    )
                stats.fallback_queries += 1
            return self._find_experts(segments, query, alpha, window, top_k)
        except BaseException:
            for segment in segments:
                segment._init_scratch()
            raise

    def _find_experts(
        self,
        segments: Sequence[Segment],
        query: AnalyzedResource,
        alpha: float,
        window: int | float | None,
        top_k: int | None,
    ) -> list[ExpertScore]:
        terms, entities = self._query_weights(query, alpha)
        entries = self._scored_entries(segments, terms, entities, alpha)
        entries.sort()
        width = window_size(window, len(entries))
        if width < len(entries):
            del entries[width:]
        return self._fold_entries(entries, top_k)

    def _scored_entries(
        self,
        segments: Sequence[Segment],
        terms: Sequence[tuple[str, float]],
        entities: Sequence[tuple[str, float]],
        alpha: float,
    ) -> list[tuple[float, str, _Rows]]:
        """Every positive Eq.-1 match as ``(-score, doc_id, rows)``,
        unsorted. Each doc lives in exactly one source, so a global
        ``(-score, doc_id)`` sort of the result reproduces the monolithic
        window cut — entries carry their source's evidence rows for Eq. 3
        (never compared: doc ids are unique, so the sort stops earlier)."""
        one_minus_alpha = 1.0 - alpha
        entries: list[tuple[float, str, _Rows]] = []
        entry = entries.append
        scored: list[tuple[str, float, float]] = []
        for source in (*segments, self._buffer):
            del scored[:]
            source._score_docs(terms, entities, scored)
            evidence = source.evidence
            for doc_id, term_score, entity_score in scored:
                score = alpha * term_score + one_minus_alpha * entity_score
                if score > 0.0:
                    entry((-score, doc_id, evidence.get(doc_id, ())))
        return entries

    def _find_experts_pruned(
        self,
        segments: Sequence[Segment],
        query: AnalyzedResource,
        alpha: float,
        window: int,
        top_k: int | None,
        stats: PruningStats,
    ) -> list[ExpertScore]:
        """Block-max evaluation across segments (exact, absolute windows).

        The buffer — small, uncompiled, and touched by every observe —
        is scored exhaustively first, seeding the window-floor heap; the
        segments' blocks then evaluate in one global best-bound-first
        agenda, and once ``window`` positive matches are held, every
        block whose inflated upper bound sits below the worst kept
        *score* is skipped without touching its postings. Scores of
        processed docs repeat the exhaustive float operations exactly,
        skipped docs are strictly below the final window threshold, and
        the final sort + cut resolves score ties on ``doc_id`` exactly
        as the exhaustive path does — rankings stay byte-identical.
        """
        terms, entities = self._query_weights(query, alpha)
        entries = self._scored_entries_pruned(
            segments, terms, entities, alpha, window, stats
        )

        # entries hold every processed positive match; once any block
        # was skipped the heap is full, so min(window, len(entries)) is
        # exactly the exhaustive path's window_size
        entries.sort()
        width = window_size(window, len(entries))
        if width < len(entries):
            del entries[width:]
        return self._fold_entries(entries, top_k)

    def _scored_entries_pruned(
        self,
        segments: Sequence[Segment],
        terms: Sequence[tuple[str, float]],
        entities: Sequence[tuple[str, float]],
        alpha: float,
        window: int,
        stats: PruningStats,
        shared_floor: Any = None,
    ) -> list[tuple[float, str, _Rows]]:
        """Block-max walk returning every *processed* positive match as
        ``(-score, doc_id, rows)``, unsorted — a superset of the best
        ``window`` matches; every skipped doc is strictly below the final
        window threshold.

        *shared_floor* (a ``multiprocessing.Value('d')`` or None) lets
        concurrent shard workers share one pruning threshold: a worker
        publishes its local floor once its heap holds ``window`` scores,
        and skips blocks whose inflated bound sits below the best floor
        published by *any* worker. The shared value only ever rises
        within a query, so the break stays exact (see
        ``docs/architecture.md``).
        """
        one_minus_alpha = 1.0 - alpha
        W = window
        heappush = heapq.heappush
        heapreplace = heapq.heapreplace

        entries: list[tuple[float, str, _Rows]] = []
        entry = entries.append
        heap: list[float] = []  # the W best scores seen (floor = heap[0])
        nheap = 0
        floor = 0.0

        buffer = self._buffer
        scored: list[tuple[str, float, float]] = []
        buffer._score_docs(terms, entities, scored)
        evidence = buffer.evidence
        for doc_id, term_score, entity_score in scored:
            score = alpha * term_score + one_minus_alpha * entity_score
            if score > 0.0:
                entry((-score, doc_id, evidence.get(doc_id, ())))
                if nheap < W:
                    heappush(heap, score)
                    nheap += 1
                elif score > heap[0]:
                    heapreplace(heap, score)
        if nheap == W:
            floor = heap[0]

        # global agenda: per segment, fold each item's leg-scaled raw
        # block maxima into a per-block bound, then merge all segments'
        # blocks into one descending-bound order
        agenda: list[tuple[float, int, int]] = []
        per_seg: list[tuple[Segment, list, list]] = []
        for si, segment in enumerate(segments):
            ubmap: dict[int, float] = {}
            tsp: list[tuple[dict, float]] = []
            esp: list[tuple[dict, float]] = []
            for term, tw in terms:
                rec = segment._pruned_term(term)
                if rec is None:
                    continue
                ubrec, smap = rec
                tsp.append((smap, tw))
                factor = alpha * tw
                for b, mx in ubrec:
                    ubmap[b] = ubmap.get(b, 0.0) + factor * mx
            for uri, ew in entities:
                rec = segment._pruned_entity(uri)
                if rec is None:
                    continue
                ubrec, smap = rec
                esp.append((smap, ew))
                factor = one_minus_alpha * ew
                for b, mx in ubrec:
                    ubmap[b] = ubmap.get(b, 0.0) + factor * mx
            per_seg.append((segment, tsp, esp))
            for b, bound in ubmap.items():
                agenda.append((bound, si, b))
        agenda.sort(reverse=True)
        slack = ub_slack(len(terms) + len(entities))

        # cross-worker floor: read the best published floor, publish our
        # own (both only rise); refreshed every _FLOOR_STRIDE blocks so
        # the lock stays off the hot path
        shared_val = 0.0
        if shared_floor is not None:
            with shared_floor.get_lock():
                shared_val = shared_floor.value
                if nheap == W and floor > shared_val:
                    shared_floor.value = shared_val = floor

        scanned = 0
        for bound, si, b in agenda:
            if nheap == W and bound * slack < floor:
                break  # bounds are descending: every later block is below too
            if shared_floor is not None:
                if not scanned % _FLOOR_STRIDE:
                    with shared_floor.get_lock():
                        if nheap == W and floor > shared_floor.value:
                            shared_floor.value = floor
                        shared_val = shared_floor.value
                if bound * slack < shared_val:
                    break  # some worker's floor already rules this out
            scanned += 1
            segment, tsp, esp = per_seg[si]
            term_acc = segment._term_acc
            entity_acc = segment._entity_acc
            flags = segment._doc_flags
            btouched: list[int] = []
            btouch = btouched.append
            for smap, tw in tsp:
                span = smap.get(b)
                if span is None:
                    continue
                for d, tf in span:
                    term_acc[d] += tf * tw
                    if not flags[d]:
                        flags[d] = 1
                        btouch(d)
            for smap, ew in esp:
                span = smap.get(b)
                if span is None:
                    continue
                for d, ef, we in span:
                    entity_acc[d] += ef * ew * we
                    if not flags[d]:
                        flags[d] = 1
                        btouch(d)
            # blocks are doc-range complete (every posting of a block's
            # documents sits in this block), so scores are final here
            doc_ids = segment._doc_ids
            evidence = segment.evidence
            for d in btouched:
                score = alpha * term_acc[d] + one_minus_alpha * entity_acc[d]
                term_acc[d] = 0.0
                entity_acc[d] = 0.0
                flags[d] = 0
                if score > 0.0:
                    doc_id = doc_ids[d]
                    entry((-score, doc_id, evidence.get(doc_id, ())))
                    if nheap < W:
                        heappush(heap, score)
                        nheap += 1
                        if nheap == W:
                            floor = heap[0]
                    elif score > floor:
                        heapreplace(heap, score)
                        floor = heap[0]
        stats.blocks_scanned += scanned
        stats.blocks_skipped += len(agenda) - scanned
        if shared_floor is not None and nheap == W:
            with shared_floor.get_lock():
                if floor > shared_floor.value:
                    shared_floor.value = floor
        return entries

    def _fold_entries(
        self, entries: list[tuple[float, str, _Rows]], top_k: int | None
    ) -> list[ExpertScore]:
        # Eq. 3 fold in rank order, mirroring ExpertRanker.rank
        weight_of = self._weight_of
        scores: dict[str, float] = {}
        support: dict[str, int] = {}
        for neg_score, _doc_id, rows in entries:
            match_score = -neg_score
            for candidate_id, distance in rows:
                scores[candidate_id] = (
                    scores.get(candidate_id, 0.0)
                    + match_score * weight_of[distance]
                )
                support[candidate_id] = support.get(candidate_id, 0) + 1
        if self._normalize:
            scores = {
                cid: score / support[cid]
                for cid, score in scores.items()
                if support.get(cid)
            }
        ranked = [
            ExpertScore(
                candidate_id=cid,
                score=score,
                supporting_resources=support.get(cid, 0),
            )
            for cid, score in scores.items()
            if score > 0.0
        ]
        ranked.sort(key=lambda e: (-e.score, e.candidate_id))
        return ranked if top_k is None else ranked[:top_k]

    def _matches(self, query: AnalyzedResource, alpha: float) -> list[ResourceMatch]:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        terms, entities = self._query_weights(query, alpha)
        one_minus_alpha = 1.0 - alpha
        segments = self._segments
        scored: list[tuple[str, float, float]] = []
        try:
            for source in (*segments, self._buffer):
                source._score_docs(terms, entities, scored)
        except BaseException:
            for segment in segments:
                segment._init_scratch()
            raise
        matches: list[ResourceMatch] = []
        for doc_id, term_score, entity_score in scored:
            combined = alpha * term_score + one_minus_alpha * entity_score
            if combined > 0.0:
                matches.append(
                    ResourceMatch(
                        doc_id=doc_id,
                        score=combined,
                        term_score=term_score,
                        entity_score=entity_score,
                    )
                )
        return matches

    def retrieve(self, query: AnalyzedResource, alpha: float) -> list[ResourceMatch]:
        """All resources with positive score for *query*, best first —
        the segmented counterpart of
        :meth:`~repro.index.vsm.VectorSpaceRetriever.retrieve`."""
        matches = self._matches(query, alpha)
        matches.sort(key=_match_order)
        return matches

    def retrieve_top_k(
        self, query: AnalyzedResource, alpha: float, k: int
    ) -> list[ResourceMatch]:
        """The best *k* resources — exactly ``retrieve(query, alpha)[:k]``."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if k == 0:
            if not 0.0 <= alpha <= 1.0:
                raise ValueError(f"alpha must be in [0, 1], got {alpha}")
            return []
        return heapq.nsmallest(k, self._matches(query, alpha), key=_match_order)

    # -- introspection -------------------------------------------------------------

    @property
    def config(self) -> FinderConfig:
        return self._config

    @property
    def seal_threshold(self) -> int:
        return self._seal_threshold

    @property
    def compaction_mode(self) -> str:
        return self._compaction

    @property
    def fanout(self) -> int:
        return self._fanout

    @property
    def write_buffer(self) -> _WriteBuffer:
        """The live write buffer (read-only use: snapshots, stats)."""
        return self._buffer

    def iter_segments(self) -> tuple[Segment, ...]:
        """The live sealed segments, oldest first (a stable snapshot)."""
        return tuple(self._segments)

    @property
    def stats(self) -> SegmentStats:
        segments = self._segments
        return SegmentStats(
            segments=len(segments),
            segment_docs=tuple(s.document_count for s in segments),
            buffered=self._buffer.resource_count,
            documents=self._doc_count,
            resources=len(self._resource_ids),
            seals=self._seals,
            compactions=self._compactions,
        )
