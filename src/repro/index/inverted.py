"""Term inverted index.

Maps each stemmed term to its postings list — the documents containing
it and the in-document term frequency. Postings are kept in document
insertion order, which the append-only build makes deterministic.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class Posting:
    """One document entry in a term's postings list."""

    doc_id: str
    term_frequency: int

    def __post_init__(self) -> None:
        if self.term_frequency <= 0:
            raise ValueError("term_frequency must be positive")


class InvertedIndex:
    """Append-only term → postings index."""

    def __init__(self) -> None:
        self._postings: dict[str, list[Posting]] = {}
        self._doc_ids: set[str] = set()
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic write counter, bumped by every :meth:`add_document`
        and :meth:`merge`. Derived caches (collection statistics,
        memoized posting weights) compare it to auto-invalidate, so a
        direct write can never leave stale irf values observable."""
        return self._version

    def add_document(self, doc_id: str, term_counts: dict[str, int]) -> None:
        """Index a document's term bag. Re-adding a doc id is an error —
        the collection is immutable once built."""
        if doc_id in self._doc_ids:
            raise ValueError(f"document {doc_id!r} already indexed")
        self._doc_ids.add(doc_id)
        self._version += 1
        for term, count in term_counts.items():
            if count > 0:
                self._postings.setdefault(term, []).append(Posting(doc_id, count))

    @property
    def document_count(self) -> int:
        return len(self._doc_ids)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    def __contains__(self, term: str) -> bool:
        return term in self._postings

    def postings(self, term: str) -> tuple[Posting, ...]:
        """The postings list for *term* (empty if unseen)."""
        return tuple(self._postings.get(term, ()))

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def terms(self) -> tuple[str, ...]:
        return tuple(self._postings)

    def merge(self, other: "InvertedIndex") -> None:
        """Append *other*'s postings into this index.

        Built for the sharded cold build: each worker indexes a
        contiguous slice of the document stream, and merging the shards
        in slice order reproduces the serial postings order exactly —
        *other*'s postings go after this index's for every shared term,
        and previously unseen terms keep *other*'s first-seen order.
        A document indexed by both shards is an error (the collection
        is append-only; nothing may be indexed twice).

        The merge bumps :attr:`version`, so any
        :class:`~repro.index.statistics.CollectionStatistics` over this
        index refreshes itself on its next read — every
        document-frequency ratio changes.
        """
        overlap = self._doc_ids & other._doc_ids
        if overlap:
            example = sorted(overlap)[0]
            raise ValueError(
                f"cannot merge: {len(overlap)} document(s) indexed by both "
                f"shards (e.g. {example!r})"
            )
        self._doc_ids |= other._doc_ids
        self._version += 1
        for term, postings in other._postings.items():
            self._postings.setdefault(term, []).extend(postings)

    # -- snapshot support ----------------------------------------------------------

    def doc_ids(self) -> frozenset[str]:
        """Every indexed document id (including term-less documents)."""
        return frozenset(self._doc_ids)

    def items(self) -> Iterator[tuple[str, tuple[Posting, ...]]]:
        """Iterate ``(term, postings)`` pairs in index order."""
        for term, postings in self._postings.items():
            yield term, tuple(postings)

    @classmethod
    def restore(
        cls,
        doc_ids: Iterable[str],
        postings: Mapping[str, Sequence[Posting]],
    ) -> "InvertedIndex":
        """Rebuild an index from snapshot state, preserving postings
        order (which fixes the float summation order of retrieval)."""
        index = cls()
        index._doc_ids = set(doc_ids)
        for term, plist in postings.items():
            for posting in plist:
                if posting.doc_id not in index._doc_ids:
                    raise ValueError(
                        f"posting for unknown document {posting.doc_id!r}"
                    )
            index._postings[term] = list(plist)
        return index
