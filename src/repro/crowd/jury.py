"""The Jury Selection Problem (Cao, She, Tong & Chen, VLDB 2012 —
paper ref [8]).

A decision-making task is given to a *jury* of crowd members who vote;
the task outcome is the majority vote. Each juror *j* has an individual
error rate ``ε_j``; the **Jury Error Rate** (JER) is the probability
that the majority is wrong. JSP asks for the jury (of odd size, within
budget) minimizing the JER.

``majority_error_rate`` computes the JER exactly via the
Poisson-binomial distribution (dynamic programming over jurors), and
:class:`JurySelector` implements the monotonicity result of Cao et al.:
with majority voting and independent jurors, the optimal jury of size
*k* consists of the *k* members with the smallest error rates — so
selection reduces to a sort plus a sweep over odd jury sizes.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass


@dataclass(frozen=True)
class JurorProfile:
    """One candidate juror."""

    candidate_id: str
    error_rate: float
    cost: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError(f"error_rate must be in [0, 1], got {self.error_rate}")
        if self.cost < 0:
            raise ValueError("cost must be non-negative")


def majority_error_rate(error_rates: Sequence[float]) -> float:
    """Probability that the majority vote of independent jurors with
    the given individual *error_rates* is wrong.

    Exact Poisson-binomial computation: DP over the number of wrong
    votes. Ties (even juries) count half — a tie is resolved by a coin
    flip, as in Cao et al.'s formulation.

    >>> round(majority_error_rate([0.3, 0.3, 0.3]), 4)
    0.216
    >>> majority_error_rate([0.0])
    0.0
    """
    if not error_rates:
        raise ValueError("at least one juror is required")
    for rate in error_rates:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"error rate {rate} outside [0, 1]")
    # dp[k] = P(exactly k wrong votes so far)
    dp = [1.0]
    for rate in error_rates:
        nxt = [0.0] * (len(dp) + 1)
        for wrong, p in enumerate(dp):
            nxt[wrong] += p * (1.0 - rate)
            nxt[wrong + 1] += p * rate
        dp = nxt
    n = len(error_rates)
    jer = 0.0
    for wrong, p in enumerate(dp):
        if 2 * wrong > n:
            jer += p
        elif 2 * wrong == n:  # even-jury tie → coin flip
            jer += 0.5 * p
    return jer


@dataclass(frozen=True)
class JuryDecision:
    """The selected jury and its error rate."""

    members: tuple[str, ...]
    jury_error_rate: float
    total_cost: float


class JurySelector:
    """Select the jury minimizing the majority error under a budget."""

    def __init__(self, jurors: Sequence[JurorProfile]):
        if not jurors:
            raise ValueError("juror pool must be non-empty")
        self._jurors = sorted(jurors, key=lambda j: (j.error_rate, j.candidate_id))

    @classmethod
    def from_expertise(
        cls,
        likert: Mapping[str, int],
        *,
        best_error: float = 0.05,
        worst_error: float = 0.45,
    ) -> "JurySelector":
        """Build juror profiles from 7-point Likert expertise: the error
        rate interpolates linearly from *worst_error* (Likert 1) down to
        *best_error* (Likert 7) — knowledgeable members err less, but
        nobody is perfect and nobody is (quite) a coin flip."""
        if not 0.0 <= best_error <= worst_error <= 0.5:
            raise ValueError("need 0 <= best_error <= worst_error <= 0.5")
        for cid, score in likert.items():
            if not isinstance(score, int) or isinstance(score, bool) or not 1 <= score <= 7:
                raise ValueError(
                    f"likert score for {cid!r} must be an integer in 1..7, "
                    f"got {score!r}"
                )
        jurors = [
            JurorProfile(
                candidate_id=cid,
                error_rate=worst_error - (worst_error - best_error) * (score - 1) / 6.0,
            )
            for cid, score in likert.items()
        ]
        return cls(jurors)

    def select(self, *, budget: float = float("inf"), max_size: int | None = None) -> JuryDecision:
        """The jury minimizing JER among odd-sized prefixes of the
        error-sorted pool that fit the *budget* (Cao et al.'s
        monotonicity makes prefixes sufficient)."""
        if max_size is not None and max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        limit = len(self._jurors) if max_size is None else min(max_size, len(self._jurors))
        best: JuryDecision | None = None
        members: list[JurorProfile] = []
        total_cost = 0.0
        for juror in self._jurors[:limit]:
            if total_cost + juror.cost > budget:
                break
            members.append(juror)
            total_cost += juror.cost
            if len(members) % 2 == 1:
                jer = majority_error_rate([j.error_rate for j in members])
                if best is None or jer < best.jury_error_rate:
                    best = JuryDecision(
                        members=tuple(j.candidate_id for j in members),
                        jury_error_rate=jer,
                        total_cost=total_cost,
                    )
        if best is None:
            raise ValueError("budget admits no juror at all")
        return best
