"""Crowd-selection applications on top of expert finding.

The paper motivates expert ranking as the core of several applications
(Sec. 1 and related work): routing crowd-search questions to the right
people, assembling teams, and selecting juries for decision-making
tasks. This package implements those consumers of the expert ranking:

* :mod:`team_formation` — the Expert Team Formation problem of Lappas,
  Liu & Terzi (KDD 2009, the paper's reference [15]): cover a set of
  required skills with a team that minimizes communication cost over
  the social graph;
* :mod:`jury` — the Jury Selection Problem of Cao et al. (VLDB 2012,
  reference [8]): pick the jury whose majority vote minimizes the
  decision error rate;
* :mod:`routing` — crowd-search question routing (the paper's Fig.-1
  scenario): given the ranked experts, decide whom to ask, in which
  order or in parallel, under per-candidate availability and response
  models.
"""

from repro.crowd.jury import JurorProfile, JurySelector, majority_error_rate
from repro.crowd.routing import (
    ContactModel,
    QuestionRouter,
    RoutingPlan,
    RoutingStrategy,
    default_contact_models,
)
from repro.crowd.team_formation import Team, TeamFormation

__all__ = [
    "ContactModel",
    "JurorProfile",
    "JurySelector",
    "QuestionRouter",
    "RoutingPlan",
    "RoutingStrategy",
    "Team",
    "TeamFormation",
    "default_contact_models",
    "majority_error_rate",
]
