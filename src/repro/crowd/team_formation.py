"""Expert Team Formation (Lappas, Liu & Terzi, KDD 2009 — paper ref [15]).

Given a task requiring a set of skills and a pool of candidates — each
holding some skills — find a team that *covers* every required skill
while minimizing the *communication cost* over the social graph:

* **diameter cost** — the longest shortest-path distance between any
  two team members (Lappas' ``RarestFirst`` approximates the optimum
  within a factor of 2);
* **MST cost** — the weight of a minimum spanning tree over the team's
  pairwise graph distances (Lappas' ``EnhancedSteiner`` heuristic; we
  implement the classic greedy cover + Steiner-tree refinement).

Skills here are expertise domains, and a candidate "holds" a skill when
the expert finder ranks them for it — so the module composes directly
with :class:`repro.core.ExpertFinder` output.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence, Set
from dataclasses import dataclass

import networkx as nx


class SkillCoverageError(ValueError):
    """No candidate holds one of the required skills."""


@dataclass(frozen=True)
class Team:
    """A formed team with its communication costs."""

    members: frozenset[str]
    required_skills: frozenset[str]
    diameter_cost: float
    mst_cost: float

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a team needs at least one member")


class TeamFormation:
    """Form teams over a candidate pool and a social graph.

    *skills* maps each candidate to the skills they hold; *graph* is an
    undirected communication graph over candidates (edges = social
    bonds; unconnected pairs communicate at a large finite penalty, as
    in Lappas' evaluation).
    """

    #: distance charged for pairs with no connecting path
    DISCONNECTED_PENALTY = 10.0

    def __init__(
        self,
        skills: Mapping[str, Set[str]],
        graph: nx.Graph,
    ):
        if not skills:
            raise ValueError("candidate skill map must be non-empty")
        self._skills = {cid: frozenset(s) for cid, s in skills.items()}
        self._graph = graph
        self._distance_cache: dict[str, dict[str, float]] = {}

    # -- distances -------------------------------------------------------------

    def distance(self, a: str, b: str) -> float:
        """Shortest-path distance between two candidates (hop count),
        with the disconnected penalty when no path exists."""
        if a == b:
            return 0.0
        lengths = self._distance_cache.get(a)
        if lengths is None:
            if a in self._graph:
                lengths = dict(nx.single_source_shortest_path_length(self._graph, a))
            else:
                lengths = {}
            self._distance_cache[a] = lengths
        return float(lengths.get(b, self.DISCONNECTED_PENALTY))

    def _diameter(self, members: Set[str]) -> float:
        members = list(members)
        worst = 0.0
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                worst = max(worst, self.distance(a, b))
        return worst

    def _mst_cost(self, members: Set[str]) -> float:
        members = list(members)
        if len(members) <= 1:
            return 0.0
        complete = nx.Graph()
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                complete.add_edge(a, b, weight=self.distance(a, b))
        tree = nx.minimum_spanning_tree(complete)
        return float(sum(d["weight"] for _, _, d in tree.edges(data=True)))

    def _team(self, members: Set[str], required: frozenset[str]) -> Team:
        return Team(
            members=frozenset(members),
            required_skills=required,
            diameter_cost=self._diameter(members),
            mst_cost=self._mst_cost(members),
        )

    def _holders(self, skill: str) -> list[str]:
        holders = [cid for cid, skills in self._skills.items() if skill in skills]
        if not holders:
            raise SkillCoverageError(f"no candidate holds skill {skill!r}")
        return holders

    # -- algorithms -------------------------------------------------------------------

    def rarest_first(self, required_skills: Sequence[str]) -> Team:
        """Lappas' ``RarestFirst``: anchor on the rarest skill, then for
        every other skill pick the holder closest to the anchor.
        2-approximation for the diameter cost."""
        required = frozenset(required_skills)
        if not required:
            raise ValueError("required_skills must be non-empty")
        holders = {skill: self._holders(skill) for skill in required}
        rarest = min(sorted(required), key=lambda s: len(holders[s]))

        best_team: set[str] | None = None
        best_cost = float("inf")
        for anchor in holders[rarest]:
            team = {anchor}
            for skill in sorted(required - {rarest}):
                closest = min(
                    holders[skill], key=lambda c: (self.distance(anchor, c), c)
                )
                team.add(closest)
            cost = self._diameter(team)
            if cost < best_cost:
                best_team, best_cost = team, cost
        assert best_team is not None
        return self._team(best_team, required)

    def greedy_cover(self, required_skills: Sequence[str]) -> Team:
        """Steiner-flavoured greedy: grow the team by always adding the
        candidate that covers the most missing skills, breaking ties by
        the smallest distance increase to the current team (minimizes
        the MST-style cost in practice)."""
        required = frozenset(required_skills)
        if not required:
            raise ValueError("required_skills must be non-empty")
        for skill in required:
            self._holders(skill)  # raises early if uncoverable

        team: set[str] = set()
        missing = set(required)
        while missing:
            def gain(candidate: str) -> tuple[int, float, str]:
                covered = len(self._skills.get(candidate, frozenset()) & missing)
                if team:
                    added_cost = min(self.distance(candidate, m) for m in team)
                else:
                    added_cost = 0.0
                # maximize coverage, minimize cost; the name breaks ties
                return (-covered, added_cost, candidate)

            best = min(
                (c for c in sorted(self._skills) if self._skills[c] & missing),
                key=gain,
            )
            team.add(best)
            missing -= self._skills[best]
        return self._team(team, required)
