"""Crowd-search question routing.

The paper's Fig.-1 scenario ends with a decision the ranking alone does
not make: "Anna will then address her question according to the ranking
(e.g., just to Alice, or to Alice and then Charlie, or to both of them
at the same time, and so on)". Social contacts are responsive but "not
available on a continuous and demanding basis" (Sec. 1), so the router
combines the expertise ranking with per-candidate availability and
response models and plans who to contact, how:

* ``SEQUENTIAL`` — ask one expert at a time, escalate on no-answer:
  cheapest in contacts, slowest;
* ``PARALLEL`` — ask the top-k at once: fastest, most intrusive;
* ``HYBRID`` — small parallel waves until the target answer probability
  is reached: the middle ground.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.ranking import ExpertScore


class RoutingStrategy(enum.Enum):
    SEQUENTIAL = "sequential"
    PARALLEL = "parallel"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class ContactModel:
    """Availability/response behaviour of one candidate."""

    #: probability the candidate answers when asked
    answer_probability: float
    #: expected time-to-answer when they do answer (arbitrary units)
    response_time: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.answer_probability <= 1.0:
            raise ValueError("answer_probability must be in [0, 1]")
        if self.response_time <= 0:
            raise ValueError("response_time must be positive")


@dataclass(frozen=True)
class RoutingPlan:
    """A concrete contact plan with its predicted behaviour."""

    strategy: RoutingStrategy
    #: contact waves, in order; a wave is contacted simultaneously
    waves: tuple[tuple[str, ...], ...]
    #: probability at least one contacted expert answers
    answer_probability: float
    #: expected latency until the first answer (None if answering is
    #: impossible)
    expected_latency: float | None
    #: total number of people contacted in the worst case
    contacts: int


class QuestionRouter:
    """Plan who to contact for a ranked expert list."""

    def __init__(self, contact_models: Mapping[str, ContactModel]):
        if not contact_models:
            raise ValueError("contact models must be non-empty")
        self._models = dict(contact_models)

    def _model(self, candidate_id: str) -> ContactModel:
        model = self._models.get(candidate_id)
        if model is None:
            raise KeyError(f"no contact model for {candidate_id!r}")
        return model

    @staticmethod
    def _combined_answer_probability(models: Sequence[ContactModel]) -> float:
        miss = 1.0
        for model in models:
            miss *= 1.0 - model.answer_probability
        return 1.0 - miss

    def _wave_latency(self, wave: Sequence[ContactModel]) -> float | None:
        """Expected first-answer time within one wave: approximated by
        the fastest responder among those who answer (min of expected
        times, weighted by the chance anyone answers at all)."""
        answering = [m for m in wave if m.answer_probability > 0]
        if not answering:
            return None
        return min(m.response_time for m in answering)

    def plan(
        self,
        ranked: Sequence[ExpertScore],
        strategy: RoutingStrategy,
        *,
        top_k: int = 5,
        target_probability: float = 0.9,
        wave_size: int = 2,
    ) -> RoutingPlan:
        """Build a plan over the *top_k* ranked experts."""
        if top_k <= 0 or wave_size <= 0:
            raise ValueError("top_k and wave_size must be positive")
        if not 0.0 < target_probability < 1.0:
            raise ValueError("target_probability must be in (0, 1)")
        chosen = [e.candidate_id for e in ranked[:top_k]]
        if not chosen:
            raise ValueError("the ranking is empty — nobody to contact")
        models = {cid: self._model(cid) for cid in chosen}

        if strategy is RoutingStrategy.PARALLEL:
            waves: list[tuple[str, ...]] = [tuple(chosen)]
        elif strategy is RoutingStrategy.SEQUENTIAL:
            waves = [(cid,) for cid in chosen]
        else:  # HYBRID: waves until the target probability is reached
            waves = []
            reached = 0.0
            for start in range(0, len(chosen), wave_size):
                wave = tuple(chosen[start : start + wave_size])
                waves.append(wave)
                reached = self._combined_answer_probability(
                    [models[c] for w in waves for c in w]
                )
                if reached >= target_probability:
                    break

        contacted = [cid for wave in waves for cid in wave]
        answer_probability = self._combined_answer_probability(
            [models[c] for c in contacted]
        )
        expected_latency = self._expected_latency(waves, models)
        return RoutingPlan(
            strategy=strategy,
            waves=tuple(waves),
            answer_probability=answer_probability,
            expected_latency=expected_latency,
            contacts=len(contacted),
        )

    def _expected_latency(
        self,
        waves: Sequence[Sequence[str]],
        models: Mapping[str, ContactModel],
    ) -> float | None:
        """Expected time to the first answer: each wave w starts after
        the previous waves stayed silent; within a wave the fastest
        answering member sets the clock."""
        total = 0.0
        silent_so_far = 1.0
        elapsed = 0.0
        any_answer = False
        for wave in waves:
            wave_models = [models[c] for c in wave]
            p_wave = self._combined_answer_probability(wave_models)
            latency = self._wave_latency(wave_models)
            if latency is not None and p_wave > 0:
                total += silent_so_far * p_wave * (elapsed + latency)
                any_answer = True
            # a silent wave costs its full timeout before escalation
            timeout = max((m.response_time for m in wave_models), default=0.0)
            elapsed += timeout
            silent_so_far *= 1.0 - p_wave
        if not any_answer:
            return None
        answered = 1.0 - silent_so_far
        return total / answered if answered > 0 else None

    def compare(
        self, ranked: Sequence[ExpertScore], *, top_k: int = 5
    ) -> dict[RoutingStrategy, RoutingPlan]:
        """All three strategies side by side for one ranking."""
        return {
            strategy: self.plan(ranked, strategy, top_k=top_k)
            for strategy in RoutingStrategy
        }


def default_contact_models(
    candidate_ids: Sequence[str], *, seed: int = 0
) -> dict[str, ContactModel]:
    """Seeded synthetic availability models: most contacts answer with
    probability 0.3–0.9 within 1–12 time units (social contacts are
    responsive but not on-demand, paper Sec. 1)."""
    import random

    rng = random.Random(seed)
    return {
        cid: ContactModel(
            answer_probability=rng.uniform(0.3, 0.9),
            response_time=rng.uniform(1.0, 12.0),
        )
        for cid in candidate_ids
    }
