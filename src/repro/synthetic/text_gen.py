"""Expertise-conditioned text generation.

All resource, profile, container, and web-page texts come from here.
The central property — the one the paper's whole method relies on — is
that text topicality reflects the author's latent expertise: a resource
about a domain mixes that domain's content words with entity mentions
and general filler, while chit-chat carries no topical signal at all.
"""

from __future__ import annotations

import random

from repro.extraction.url_content import WebPage
from repro.synthetic.population import Person, WORK_DOMAINS
from repro.synthetic.vocab import (
    CAREER_WORDS,
    DOMAIN_WORDS,
    DOMAINS,
    ENTITY_SEEDS,
    FUNCTION_WORDS,
    GENERAL_WORDS,
    NON_ENGLISH_SENTENCES,
    EntitySeed,
)

#: per-domain entity seeds, precomputed once
_DOMAIN_ENTITIES: dict[str, tuple[EntitySeed, ...]] = {
    d: tuple(s for s in ENTITY_SEEDS if s.domain == d) for d in DOMAINS
}


class TextGenerator:
    """Seeded generator for every kind of text in the dataset."""

    def __init__(self, rng: random.Random):
        self._rng = rng

    # -- building blocks -----------------------------------------------------

    def _words(self, pool: tuple[str, ...], n: int) -> list[str]:
        return self._rng.choices(pool, k=n)

    def _glue(self, words: list[str]) -> str:
        """Interleave English function words so generated text reads (and
        language-identifies) as English rather than as a bare word bag."""
        out: list[str] = []
        for word in words:
            if self._rng.random() < 0.4:
                out.append(self._rng.choice(FUNCTION_WORDS))
            out.append(word)
        return " ".join(out)

    def entity_mention(self, domain: str) -> str:
        """The primary surface form of a random entity of *domain*."""
        seed = self._rng.choice(_DOMAIN_ENTITIES[domain])
        # the highest-count anchor is the canonical surface
        return max(seed.anchors, key=lambda a: a[1])[0]

    def topical_sentence(self, domain: str, *, length: int | None = None) -> str:
        """One sentence about *domain*: domain words, an entity mention
        with probability 0.55, general glue."""
        rng = self._rng
        n = length if length is not None else rng.randint(8, 18)
        n_domain = max(2, round(n * 0.45))
        n_general = max(1, n - n_domain)
        words = self._words(DOMAIN_WORDS[domain], n_domain)
        words += self._words(GENERAL_WORDS, n_general)
        rng.shuffle(words)
        if rng.random() < 0.55:
            mention = self.entity_mention(domain)
            words.insert(rng.randrange(len(words) + 1), mention)
        return self._glue(words)

    def chitchat_sentence(self, *, length: int | None = None) -> str:
        """Everyday filler with no topical signal."""
        n = length if length is not None else self._rng.randint(6, 14)
        return self._glue(self._words(GENERAL_WORDS, n))

    def non_english_text(self) -> tuple[str, str]:
        """(language, text) drawn from the Italian/Spanish filler pool."""
        lang = self._rng.choice(tuple(NON_ENGLISH_SENTENCES))
        sentences = NON_ENGLISH_SENTENCES[lang]
        k = self._rng.randint(1, 2)
        return lang, " ".join(self._rng.choices(sentences, k=k))

    # -- resources ----------------------------------------------------------------

    def resource_text(self, domain: str | None) -> str:
        """A post/tweet: topical for a domain, or chit-chat when None."""
        if domain is None:
            return self.chitchat_sentence()
        text = self.topical_sentence(domain)
        if self._rng.random() < 0.25:
            text += " " + self.chitchat_sentence(length=self._rng.randint(3, 7))
        return text

    def pick_domain(self, person: Person, *, platform_bias: dict[str, float]) -> str | None:
        """Choose what a person posts about: a domain proportional to
        their *visible* interest times the platform's topical bias, or
        None (chit-chat) when the total interest mass is low."""
        rng = self._rng
        weights = {
            d: person.visible_interest(d) * platform_bias.get(d, 1.0) for d in DOMAINS
        }
        total = sum(weights.values())
        # the lower the visible interest, the more chit-chat; the pivot
        # makes even a fully exposed single-focus expert post off-topic
        # most of the time, as real feeds do
        chitchat_mass = 1.2
        if rng.random() < chitchat_mass / (chitchat_mass + total):
            return None
        r = rng.uniform(0.0, total)
        acc = 0.0
        for domain, w in weights.items():
            acc += w
            if r <= acc:
                return domain
        return None

    # -- profiles ------------------------------------------------------------------

    def facebook_profile_text(self, person: Person) -> str:
        """Sparse 'about' section: a hobby line for some interests, often
        nothing at all — most members "give the smallest amount of
        information which is required for registering" (paper Sec. 1)."""
        rng = self._rng
        if rng.random() < 0.45:
            return ""
        hobbies = [
            d.replace("_", " ")
            for d in DOMAINS
            if person.visible_interest(d) > 0.5 and rng.random() < 0.5
        ]
        if not hobbies:
            return ""
        return "hobbies " + " ".join(hobbies)

    def twitter_profile_text(self, person: Person) -> str:
        """One-line bio; occasionally names a strong interest."""
        rng = self._rng
        if rng.random() < 0.4:
            return self.chitchat_sentence(length=4)
        strong = [d for d in DOMAINS if person.visible_interest(d) > 0.55]
        if strong and rng.random() < 0.6:
            domain = rng.choice(strong)
            return (
                f"{rng.choice(DOMAIN_WORDS[domain])} "
                f"{rng.choice(DOMAIN_WORDS[domain])} enthusiast"
            )
        return self.chitchat_sentence(length=4)

    def linkedin_profile_text(self, person: Person) -> str:
        """Detailed career description — rich for work domains, which is
        why LinkedIn distance-0 shines on computer engineering (paper
        Sec. 3.7) — plus generic career filler."""
        rng = self._rng
        parts: list[str] = [self._glue(self._words(CAREER_WORDS, rng.randint(10, 16)))]
        for domain in WORK_DOMAINS:
            # career pages describe work-domain skills more faithfully
            # than feeds do, but strict privacy/flagship accounts keep
            # even their CV thin
            visibility = 0.4 + 0.6 * person.exposure[domain]
            skill = person.expertise[domain] / 7.0 * visibility
            if skill > 0.45:
                n = round(6 * skill) + rng.randint(0, 3)
                parts.append(self._glue(self._words(DOMAIN_WORDS[domain], n)))
                if rng.random() < 0.5:
                    parts.append(self.entity_mention(domain))
        return " ".join(parts)

    # -- containers and the synthetic web ---------------------------------------------

    def container_description(self, domain: str, name: str) -> str:
        return f"{name} {self.topical_sentence(domain, length=10)}"

    def celebrity_profile_text(self, seed: EntitySeed) -> str:
        """Bio of a followed topical account (athlete, band, company)."""
        return f"{seed.name} official {seed.description} {self.topical_sentence(seed.domain, length=6)}"

    def web_page(self, url: str, domain: str) -> WebPage:
        """A topical article for the synthetic web."""
        title = self.topical_sentence(domain, length=5)
        body = " ".join(
            self.topical_sentence(domain) for _ in range(self._rng.randint(2, 4))
        )
        boilerplate = "home login subscribe cookie policy advertisement contact"
        return WebPage(url=url, title=title, main_text=body, boilerplate=boilerplate)
