"""Streaming resource generation — the ``xl`` scale.

The materializing path (:func:`repro.synthetic.dataset.build_dataset`)
builds platform stores, crawls them, and keeps every analyzed resource
in memory; that is exactly right up to the ``small``/``paper`` scales
and exactly wrong at ~1M resources. The ``xl`` scale therefore has no
:class:`EvaluationDataset` at all: this module yields resource *events*
one at a time, and :meth:`ExpertFinder.from_stream` absorbs them in
bounded chunks, so peak memory is one analysis chunk plus the growing
indexes — never the corpus.

Events are ``(node_id, text, supporters)`` or
``(node_id, text, supporters, language)`` tuples, the exact shape
``observe`` takes, and the whole stream is a pure function of
``(candidates, resources, seed)``: two passes (say, a sharded and an
unsharded build in a bench) see byte-identical resources without either
one materializing anything.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from repro.synthetic.text_gen import TextGenerator
from repro.synthetic.vocab import DOMAINS

#: the xl scale's defaults: ~1M resources over 10k candidates — the
#: benches parameterize both down for smoke runs
XL_CANDIDATES = 10_000
XL_RESOURCES = 1_000_000

#: fraction of resources in Italian/Spanish (cut by language id, like
#: the materialized datasets' non-English share)
_NON_ENGLISH_RATE = 0.04

#: fraction of English resources that are topical rather than chit-chat
_TOPICAL_RATE = 0.7


def stream_candidates(count: int = XL_CANDIDATES) -> list[str]:
    """The candidate ids of a *count*-candidate stream, in order."""
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    return [f"cand{i:05d}" for i in range(count)]


def stream_resources(
    candidates: list[str],
    resources: int = XL_RESOURCES,
    *,
    seed: int = 7,
    max_distance: int = 2,
) -> Iterator[tuple]:
    """Yield *resources* events supporting *candidates*, deterministically.

    Each resource supports 1–3 candidates at distances ``1..max_distance``
    (every resource has at least one supporter — the invariant candidate
    sharding requires). Texts come from the same
    :class:`~repro.synthetic.text_gen.TextGenerator` the materialized
    datasets use: mostly topical or chit-chat English, with a small
    non-English share yielded as 4-tuples carrying their language.
    """
    if resources < 0:
        raise ValueError(f"resources must be non-negative, got {resources}")
    if max_distance < 1:
        raise ValueError(f"max_distance must be >= 1, got {max_distance}")
    if not candidates:
        raise ValueError("candidates must be non-empty")
    rng = random.Random(seed)
    gen = TextGenerator(rng)
    n_cands = len(candidates)
    for i in range(resources):
        node_id = f"xl{i:08d}"
        supporters = [
            (candidates[j], rng.randint(1, max_distance))
            for j in sorted(rng.sample(range(n_cands), min(rng.randint(1, 3), n_cands)))
        ]
        if rng.random() < _NON_ENGLISH_RATE:
            language, text = gen.non_english_text()
            yield (node_id, text, supporters, language)
        else:
            domain = (
                rng.choice(DOMAINS) if rng.random() < _TOPICAL_RATE else None
            )
            yield (node_id, gen.resource_text(domain), supporters)


def stream_queries(count: int, *, seed: int = 7) -> list[str]:
    """*count* deterministic topical query texts for bench/test drivers
    over a streamed collection (same vocabulary the resources draw on)."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = random.Random(seed + 0x5EED)
    gen = TextGenerator(rng)
    return [
        gen.topical_sentence(rng.choice(DOMAINS), length=rng.randint(4, 8))
        for _ in range(count)
    ]
