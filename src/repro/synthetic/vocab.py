"""Domain vocabularies and entity seed data.

The seven expertise domains are the paper's (Sec. 3.1): computer
engineering, location, movies & tv, music, science, sport, and
technology & videogames. Each domain carries a content-word vocabulary
used by the text generator and a set of seed entities for the synthetic
knowledge base, including deliberately ambiguous anchors ("python",
"milan", "java", "apple", "mercury") that exercise the disambiguator.
"""

from __future__ import annotations

from dataclasses import dataclass

#: the paper's seven domains, in its presentation order
DOMAINS: tuple[str, ...] = (
    "computer_engineering",
    "location",
    "movies_tv",
    "music",
    "science",
    "sport",
    "technology_games",
)

#: pretty names used in reports (paper Table 4 row labels)
DOMAIN_LABELS: dict[str, str] = {
    "computer_engineering": "Computer engineering",
    "location": "Location",
    "movies_tv": "Movies & TV",
    "music": "Music",
    "science": "Science",
    "sport": "Sport",
    "technology_games": "Technology & games",
}

DOMAIN_WORDS: dict[str, tuple[str, ...]] = {
    "computer_engineering": (
        "code", "function", "string", "length", "array", "variable", "loop",
        "compile", "debug", "algorithm", "database", "query", "server",
        "deploy", "framework", "library", "class", "method", "object",
        "interface", "bug", "patch", "commit", "branch", "merge", "syntax",
        "runtime", "exception", "thread", "memory", "pointer", "recursion",
        "script", "backend", "frontend", "regex", "integer", "boolean",
        "parameter", "refactor", "compiler", "repository", "unittest",
        "deployment", "scalability", "microservice", "endpoint", "schema",
    ),
    "location": (
        "restaurant", "city", "travel", "hotel", "museum", "street",
        "square", "cathedral", "district", "neighborhood", "map", "tour",
        "flight", "airport", "station", "monument", "landmark", "cafe",
        "bistro", "cuisine", "vacation", "trip", "sightseeing", "gallery",
        "bridge", "river", "downtown", "piazza", "guide", "itinerary",
        "hostel", "boulevard", "harbor", "skyline", "alley", "terrace",
        "rooftop", "local", "trattoria", "panorama", "excursion", "ferry",
    ),
    "movies_tv": (
        "movie", "film", "actor", "actress", "episode", "season", "series",
        "director", "plot", "scene", "trailer", "cinema", "sitcom", "drama",
        "comedy", "thriller", "premiere", "screenplay", "cast", "character",
        "finale", "binge", "oscar", "blockbuster", "sequel", "documentary",
        "screening", "spoiler", "subtitle", "remake", "pilot", "casting",
        "cliffhanger", "protagonist", "villain", "soundtrack", "cameo",
    ),
    "music": (
        "song", "album", "band", "concert", "guitar", "piano", "melody",
        "lyrics", "singer", "playlist", "chorus", "rhythm", "bass",
        "drummer", "vinyl", "festival", "hit", "single", "record", "studio",
        "acoustic", "jazz", "rock", "pop", "symphony", "orchestra", "tune",
        "gig", "encore", "riff", "ballad", "harmony", "tempo", "remix",
        "setlist", "verse", "falsetto", "soundcheck", "discography",
    ),
    "science": (
        "copper", "conductor", "electron", "atom", "molecule", "physics",
        "chemistry", "biology", "experiment", "theory", "hypothesis",
        "laboratory", "research", "particle", "energy", "quantum", "cell",
        "protein", "enzyme", "evolution", "gravity", "relativity",
        "element", "reaction", "microscope", "telescope", "genome",
        "neuron", "electromagnetism", "thermodynamics", "isotope",
        "catalyst", "photon", "synthesis", "conductivity", "voltage",
        "membrane", "chromosome", "antibody", "spectrum",
    ),
    "sport": (
        "football", "team", "match", "goal", "league", "player",
        "championship", "swimming", "freestyle", "swimmer", "medal",
        "olympic", "tournament", "coach", "stadium", "race", "marathon",
        "tennis", "basketball", "training", "fitness", "score", "transfer",
        "striker", "goalkeeper", "podium", "sprint", "backstroke",
        "butterfly", "relay", "derby", "penalty", "midfielder", "defender",
        "qualifier", "fixture", "lap", "workout", "gold",
    ),
    "technology_games": (
        "graphic", "card", "game", "console", "gamer", "gpu", "processor",
        "laptop", "smartphone", "tablet", "gadget", "hardware", "screen",
        "battery", "wireless", "gaming", "quest", "raid", "multiplayer",
        "level", "achievement", "pixel", "resolution", "benchmark",
        "overclock", "firmware", "headset", "controller", "upgrade",
        "unboxing", "specs", "framerate", "loot", "expansion", "patch",
        "leaderboard", "keyboard", "motherboard", "cooling", "chipset",
    ),
}

#: high-frequency English function words interleaved into generated
#: sentences — real posts contain them, and the language identifier
#: depends on them to recognize English text
FUNCTION_WORDS: tuple[str, ...] = (
    "the", "and", "to", "of", "in", "a", "is", "for", "with", "on", "at",
    "this", "that", "my", "we", "it", "as", "be", "are", "was", "have",
    "from", "by", "or", "an", "so", "about", "you", "very",
)

#: everyday filler words for chit-chat and padding — deliberately
#: domain-neutral
GENERAL_WORDS: tuple[str, ...] = (
    "today", "great", "love", "time", "day", "week", "friend", "happy",
    "good", "new", "best", "really", "thing", "people", "life", "home",
    "work", "morning", "night", "weekend", "lunch", "coffee", "birthday",
    "party", "photo", "fun", "nice", "awesome", "thanks", "hope", "see",
    "going", "made", "feel", "little", "big", "year", "beautiful", "sunny",
    "dinner", "walk", "finally", "tomorrow", "amazing", "funny", "busy",
    "relax", "enjoy", "moment", "family", "together", "favorite", "story",
)

#: work/career words for LinkedIn profiles and professional groups
CAREER_WORDS: tuple[str, ...] = (
    "engineer", "manager", "consultant", "experience", "skills", "project",
    "company", "team", "development", "senior", "analyst", "director",
    "responsible", "designed", "delivered", "led", "degree", "university",
    "certified", "professional", "industry", "solutions", "architecture",
    "strategy", "product", "startup", "enterprise", "innovation",
)

#: non-English filler sentences; the language identifier must route these
#: out of the English index (paper: 330k collected, 230k English kept)
NON_ENGLISH_SENTENCES: dict[str, tuple[str, ...]] = {
    "it": (
        "oggi una bella giornata per stare con gli amici in centro",
        "questa sera andiamo a mangiare la pizza vicino al duomo",
        "che bella partita ieri sera non vedo l'ora della prossima",
        "buongiorno a tutti un caffe e si comincia la settimana",
        "il fine settimana al mare con la famiglia è sempre il migliore",
        "grazie mille a tutti per gli auguri di compleanno siete fantastici",
    ),
    "es": (
        "hoy es un dia precioso para pasear por el centro con amigos",
        "esta noche vamos a cenar a un restaurante cerca de la plaza",
        "que gran partido el de ayer no puedo esperar al proximo",
        "buenos dias a todos un cafe y empezamos la semana",
        "el fin de semana en la playa con la familia siempre es lo mejor",
        "muchas gracias a todos por las felicitaciones de cumpleanos",
    ),
}


@dataclass(frozen=True)
class EntitySeed:
    """Seed data for one knowledge-base entity."""

    uri: str
    name: str
    entity_type: str
    domain: str
    #: (surface form, anchor count) — counts shape the commonness prior
    anchors: tuple[tuple[str, int], ...]
    description: str = ""
    #: URIs this entity's page links to (within the synthetic wiki)
    links: tuple[str, ...] = ()


def _e(
    uri: str,
    name: str,
    entity_type: str,
    domain: str,
    anchors: tuple[tuple[str, int], ...],
    description: str = "",
    links: tuple[str, ...] = (),
) -> EntitySeed:
    return EntitySeed(
        uri=f"wiki/{uri}",
        name=name,
        entity_type=entity_type,
        domain=domain,
        anchors=anchors,
        description=description,
        links=tuple(f"wiki/{l}" for l in links),
    )


ENTITY_SEEDS: tuple[EntitySeed, ...] = (
    # -- computer engineering -------------------------------------------------
    _e("PHP", "PHP", "ProgrammingLanguage", "computer_engineering",
       (("php", 50),), "server side scripting language for web development",
       ("MySQL", "Apache_HTTP_Server")),
    _e("Python_(programming_language)", "Python", "ProgrammingLanguage",
       "computer_engineering", (("python", 70),),
       "high level general purpose programming language",
       ("Django_(web_framework)", "Linux")),
    _e("Java_(programming_language)", "Java", "ProgrammingLanguage",
       "computer_engineering", (("java", 65),),
       "object oriented programming language for the enterprise",
       ("Linux", "MySQL")),
    _e("JavaScript", "JavaScript", "ProgrammingLanguage", "computer_engineering",
       (("javascript", 55), ("js", 20)), "scripting language of the web browser",
       ("PHP", "Python_(programming_language)")),
    _e("SQL", "SQL", "ProgrammingLanguage", "computer_engineering",
       (("sql", 45),), "structured query language for relational databases",
       ("MySQL",)),
    _e("MySQL", "MySQL", "Software", "computer_engineering",
       (("mysql", 40),), "open source relational database management system",
       ("SQL", "PHP")),
    _e("Linux", "Linux", "OperatingSystem", "computer_engineering",
       (("linux", 50),), "open source unix like operating system kernel",
       ("Git",)),
    _e("Git", "Git", "Software", "computer_engineering",
       (("git", 35), ("github", 25)), "distributed version control system",
       ("Linux",)),
    _e("Stack_Overflow", "Stack Overflow", "Website", "computer_engineering",
       (("stack overflow", 30), ("stackoverflow", 15)),
       "question and answer site for programmers",
       ("PHP", "Java_(programming_language)")),
    _e("Apache_HTTP_Server", "Apache HTTP Server", "Software",
       "computer_engineering", (("apache", 25),), "open source web server",
       ("PHP", "Linux")),
    _e("Django_(web_framework)", "Django", "Software", "computer_engineering",
       (("django", 20),), "python web framework for rapid development",
       ("Python_(programming_language)",)),
    _e("Cplusplus", "C++", "ProgrammingLanguage", "computer_engineering",
       (("c++", 30), ("cpp", 10)), "systems programming language",
       ("Linux", "Java_(programming_language)")),
    # -- location ----------------------------------------------------------------
    _e("Milan", "Milan", "City", "location",
       (("milan", 60), ("milano", 20)), "city in northern italy famous for fashion and design",
       ("Duomo_di_Milano", "Italy", "Navigli")),
    _e("Rome", "Rome", "City", "location",
       (("rome", 55), ("roma", 15)), "capital city of italy with ancient monuments",
       ("Italy", "Colosseum")),
    _e("Paris", "Paris", "City", "location",
       (("paris", 55),), "capital of france known for art and cuisine",
       ("Eiffel_Tower",)),
    _e("London", "London", "City", "location",
       (("london", 55),), "capital of the united kingdom on the thames",
       ("Italy",)),
    _e("New_York_City", "New York City", "City", "location",
       (("new york", 50), ("new york city", 25), ("nyc", 15)),
       "most populous city in the united states",
       ("Central_Park",)),
    _e("Tokyo", "Tokyo", "City", "location",
       (("tokyo", 40),), "capital of japan and largest metropolitan area",
       ()),
    _e("Italy", "Italy", "Country", "location",
       (("italy", 50), ("italia", 10)), "southern european country shaped like a boot",
       ("Milan", "Rome")),
    _e("Eiffel_Tower", "Eiffel Tower", "Landmark", "location",
       (("eiffel tower", 30),), "wrought iron lattice tower in paris",
       ("Paris",)),
    _e("Colosseum", "Colosseum", "Landmark", "location",
       (("colosseum", 25),), "ancient roman amphitheatre in the centre of rome",
       ("Rome",)),
    _e("Central_Park", "Central Park", "Landmark", "location",
       (("central park", 25),), "urban park in manhattan new york city",
       ("New_York_City",)),
    _e("Duomo_di_Milano", "Duomo di Milano", "Landmark", "location",
       (("duomo", 20), ("duomo di milano", 10)), "gothic cathedral of milan",
       ("Milan",)),
    _e("Navigli", "Navigli", "Landmark", "location",
       (("navigli", 12),), "canal district of milan with restaurants and nightlife",
       ("Milan",)),
    # -- movies & tv -----------------------------------------------------------------
    _e("How_I_Met_Your_Mother", "How I Met Your Mother", "TVShow", "movies_tv",
       (("how i met your mother", 35), ("himym", 15)),
       "american sitcom about ted and his friends in new york",
       ("Netflix",)),
    _e("Breaking_Bad", "Breaking Bad", "TVShow", "movies_tv",
       (("breaking bad", 35),), "crime drama about a chemistry teacher",
       ("Netflix",)),
    _e("Game_of_Thrones", "Game of Thrones", "TVShow", "movies_tv",
       (("game of thrones", 40), ("got", 10)),
       "fantasy drama adapted from george martin novels",
       ("HBO",)),
    _e("The_Godfather", "The Godfather", "Film", "movies_tv",
       (("the godfather", 25), ("godfather", 10)),
       "crime film directed by francis ford coppola", ()),
    _e("Inception", "Inception", "Film", "movies_tv",
       (("inception", 25),), "science fiction heist film about dreams",
       ("Christopher_Nolan", "Leonardo_DiCaprio")),
    _e("Christopher_Nolan", "Christopher Nolan", "Person", "movies_tv",
       (("christopher nolan", 20), ("nolan", 12)),
       "british american film director", ("Inception",)),
    _e("Leonardo_DiCaprio", "Leonardo DiCaprio", "Person", "movies_tv",
       (("leonardo dicaprio", 22), ("dicaprio", 12)),
       "american actor and film producer", ("Inception",)),
    _e("Netflix", "Netflix", "Company", "movies_tv",
       (("netflix", 35),), "streaming service for films and series",
       ("Breaking_Bad", "How_I_Met_Your_Mother")),
    _e("HBO", "HBO", "Company", "movies_tv",
       (("hbo", 20),), "american premium television network",
       ("Game_of_Thrones",)),
    _e("Quentin_Tarantino", "Quentin Tarantino", "Person", "movies_tv",
       (("quentin tarantino", 18), ("tarantino", 12)),
       "american film director and screenwriter", ()),
    # -- music --------------------------------------------------------------------------
    _e("Michael_Jackson", "Michael Jackson", "Person", "music",
       (("michael jackson", 45), ("mj", 8)),
       "american singer known as the king of pop",
       ("Thriller_(album)",)),
    _e("The_Beatles", "The Beatles", "Band", "music",
       (("the beatles", 35), ("beatles", 20)),
       "english rock band from liverpool", ()),
    _e("Thriller_(album)", "Thriller", "Album", "music",
       (("thriller", 18),), "best selling studio album by michael jackson",
       ("Michael_Jackson",)),
    _e("Mozart", "Wolfgang Amadeus Mozart", "Person", "music",
       (("mozart", 25),), "prolific classical era composer", ()),
    _e("Rolling_Stones", "The Rolling Stones", "Band", "music",
       (("rolling stones", 25),), "english rock band formed in 1962", ()),
    _e("Spotify", "Spotify", "Company", "music",
       (("spotify", 25),), "audio streaming platform",
       ("Michael_Jackson", "The_Beatles")),
    _e("Bob_Dylan", "Bob Dylan", "Person", "music",
       (("bob dylan", 20), ("dylan", 10)), "american singer songwriter", ()),
    _e("Lady_Gaga", "Lady Gaga", "Person", "music",
       (("lady gaga", 22),), "american pop singer and performer", ()),
    _e("Radiohead", "Radiohead", "Band", "music",
       (("radiohead", 18),), "english alternative rock band", ()),
    _e("Freddie_Mercury", "Freddie Mercury", "Person", "music",
       (("freddie mercury", 18), ("mercury", 10)),
       "lead vocalist of the rock band queen", ()),
    # -- science -----------------------------------------------------------------------------
    _e("Copper", "Copper", "ChemicalElement", "science",
       (("copper", 30),), "ductile metal with very high electrical conductivity",
       ("Electrical_conductivity",)),
    _e("Electrical_conductivity", "Electrical conductivity", "Concept", "science",
       (("conductivity", 15), ("electrical conductivity", 10)),
       "measure of how well a material conducts electric current",
       ("Copper",)),
    _e("Albert_Einstein", "Albert Einstein", "Person", "science",
       (("albert einstein", 30), ("einstein", 20)),
       "physicist who developed the theory of relativity",
       ("Theory_of_relativity",)),
    _e("Theory_of_relativity", "Theory of relativity", "Concept", "science",
       (("relativity", 15), ("theory of relativity", 8)),
       "physics of space time and gravitation",
       ("Albert_Einstein",)),
    _e("DNA", "DNA", "Concept", "science",
       (("dna", 25),), "molecule carrying genetic instructions", ()),
    _e("CERN", "CERN", "Organization", "science",
       (("cern", 20),), "european laboratory for particle physics",
       ("Higgs_boson",)),
    _e("Higgs_boson", "Higgs boson", "Concept", "science",
       (("higgs boson", 15), ("higgs", 10)),
       "elementary particle discovered at the large hadron collider",
       ("CERN",)),
    _e("Isaac_Newton", "Isaac Newton", "Person", "science",
       (("isaac newton", 18), ("newton", 12)),
       "mathematician who formulated the laws of motion", ()),
    _e("Marie_Curie", "Marie Curie", "Person", "science",
       (("marie curie", 15), ("curie", 8)),
       "physicist and chemist pioneer of radioactivity research", ()),
    _e("Mercury_(element)", "Mercury", "ChemicalElement", "science",
       (("mercury", 8),), "heavy silvery liquid metal element", ("Copper",)),
    _e("Python_(snake)", "Python", "Animal", "science",
       (("python", 10),), "large nonvenomous constricting snake", ("DNA",)),
    # -- sport -----------------------------------------------------------------------------------
    _e("Michael_Phelps", "Michael Phelps", "Athlete", "sport",
       (("michael phelps", 40), ("phelps", 15)),
       "american swimmer and most decorated olympian",
       ("Freestyle_swimming", "Olympic_Games")),
    _e("Freestyle_swimming", "Freestyle swimming", "SportDiscipline", "sport",
       (("freestyle", 25), ("freestyle swimming", 10)),
       "swimming competition category with unregulated stroke",
       ("Michael_Phelps",)),
    _e("Olympic_Games", "Olympic Games", "Event", "sport",
       (("olympics", 25), ("olympic games", 15)),
       "international multi sport event",
       ("Michael_Phelps", "Usain_Bolt")),
    _e("Lionel_Messi", "Lionel Messi", "Athlete", "sport",
       (("lionel messi", 30), ("messi", 25)),
       "argentine footballer and record goalscorer",
       ("FC_Barcelona",)),
    _e("FC_Barcelona", "FC Barcelona", "SportsTeam", "sport",
       (("fc barcelona", 20), ("barcelona", 18), ("barca", 10)),
       "spanish professional football club",
       ("Lionel_Messi", "Champions_League")),
    _e("Real_Madrid", "Real Madrid", "SportsTeam", "sport",
       (("real madrid", 25),), "spanish football club with most european cups",
       ("Champions_League",)),
    _e("AC_Milan", "AC Milan", "SportsTeam", "sport",
       (("ac milan", 20), ("milan", 12)),
       "italian professional football club based in milan",
       ("Champions_League", "Juventus")),
    _e("Juventus", "Juventus", "SportsTeam", "sport",
       (("juventus", 20), ("juve", 10)), "italian football club from turin",
       ("AC_Milan", "Champions_League")),
    _e("Champions_League", "UEFA Champions League", "Event", "sport",
       (("champions league", 25),), "annual european club football competition",
       ("Real_Madrid", "FC_Barcelona")),
    _e("Usain_Bolt", "Usain Bolt", "Athlete", "sport",
       (("usain bolt", 20), ("bolt", 10)),
       "jamaican sprinter and world record holder",
       ("Olympic_Games",)),
    _e("Roger_Federer", "Roger Federer", "Athlete", "sport",
       (("roger federer", 18), ("federer", 12)),
       "swiss tennis champion", ()),
    # -- technology & games --------------------------------------------------------------------------
    _e("Diablo_III", "Diablo III", "VideoGame", "technology_games",
       (("diablo 3", 25), ("diablo iii", 10), ("diablo", 12)),
       "action role playing game by blizzard entertainment",
       ("Blizzard_Entertainment",)),
    _e("Blizzard_Entertainment", "Blizzard Entertainment", "Company",
       "technology_games", (("blizzard", 18),),
       "american video game developer",
       ("Diablo_III", "World_of_Warcraft")),
    _e("World_of_Warcraft", "World of Warcraft", "VideoGame", "technology_games",
       (("world of warcraft", 20), ("wow", 12)),
       "massively multiplayer online role playing game",
       ("Blizzard_Entertainment",)),
    _e("PlayStation", "PlayStation", "Product", "technology_games",
       (("playstation", 25), ("ps3", 8)), "sony video game console brand", ()),
    _e("Xbox", "Xbox", "Product", "technology_games",
       (("xbox", 22),), "microsoft video game console brand", ()),
    _e("Nvidia", "Nvidia", "Company", "technology_games",
       (("nvidia", 20), ("geforce", 12)),
       "designer of graphics processing units",
       ("Diablo_III",)),
    _e("IPhone", "iPhone", "Product", "technology_games",
       (("iphone", 30),), "smartphone line designed by apple",
       ("Apple_Inc",)),
    _e("Android_(operating_system)", "Android", "OperatingSystem",
       "technology_games", (("android", 25),),
       "mobile operating system developed by google", ()),
    _e("Apple_Inc", "Apple Inc.", "Company", "technology_games",
       (("apple", 30),), "consumer electronics company from cupertino",
       ("IPhone",)),
    _e("Samsung", "Samsung", "Company", "technology_games",
       (("samsung", 20), ("galaxy", 10)),
       "south korean electronics manufacturer",
       ("Android_(operating_system)",)),
    _e("Java_(island)", "Java", "Island", "location",
       (("java", 8),), "indonesian island with more than half the population",
       ("Tokyo",)),
    _e("Apple_(fruit)", "Apple", "Plant", "science",
       (("apple", 7),), "edible fruit of the apple tree", ("DNA",)),
)


def entities_in_domain(domain: str) -> tuple[EntitySeed, ...]:
    """Seed entities whose primary domain is *domain*."""
    if domain not in DOMAINS:
        raise ValueError(f"unknown domain {domain!r}")
    return tuple(s for s in ENTITY_SEEDS if s.domain == domain)


#: first names for the synthetic volunteers (the paper's examples use the
#: classic crypto cast: Alice, Bob, Charlie, Chuck, Peggy, Anna...)
PERSON_NAMES: tuple[str, ...] = (
    "Alice", "Bob", "Charlie", "Chuck", "Peggy", "Anna", "David", "Elena",
    "Frank", "Giulia", "Henry", "Irene", "Jack", "Kate", "Luca", "Marta",
    "Nico", "Olivia", "Paolo", "Quinn", "Rita", "Sam", "Teresa", "Ugo",
    "Vera", "Walter", "Xenia", "Yuri", "Zoe", "Andrea", "Bruno", "Carla",
    "Dario", "Emma", "Fabio", "Greta", "Hugo", "Ivan", "Julia", "Kevin",
    "Laura", "Marco", "Nadia", "Oscar", "Piera", "Remo", "Sara", "Tom",
)
