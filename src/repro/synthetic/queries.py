"""The 30 expertise needs (paper Sec. 3.1).

The paper devised 30 textual queries spanning its seven domains and
gives one example per domain; those seven appear here verbatim, and the
remaining 23 are constructed in the same style (factual questions and
recommendation requests that name domain terms and real-world entities).
"""

from __future__ import annotations

from repro.core.need import ExpertiseNeed

_QUERIES: tuple[tuple[str, str], ...] = (
    # -- computer engineering (5) --------------------------------------------
    ("computer_engineering",
     "Which PHP function can I use in order to obtain the length of a string?"),
    ("computer_engineering",
     "How do I write a SQL query to join two tables in a MySQL database?"),
    ("computer_engineering",
     "What is the best Python framework to build the backend of a web application, maybe Django?"),
    ("computer_engineering",
     "How can I merge a branch in Git without losing my commits?"),
    ("computer_engineering",
     "Why does my Java code throw a null pointer exception inside this loop?"),
    # -- location (4) ------------------------------------------------------------
    ("location", "Can you list some restaurants in Milan?"),
    ("location",
     "Which museums and landmarks should I visit during a weekend trip to Rome?"),
    ("location",
     "I am planning a vacation to Paris, is the Eiffel Tower area a good district for a hotel?"),
    ("location",
     "What is the best neighborhood in New York for a walking tour near Central Park?"),
    # -- movies & tv (4) --------------------------------------------------------------
    ("movies_tv", "Can you list some famous actors in how I met your mother?"),
    ("movies_tv",
     "Is Breaking Bad worth watching, and how many seasons does the series have?"),
    ("movies_tv",
     "Which Christopher Nolan movie should I watch first, maybe Inception?"),
    ("movies_tv",
     "Can you recommend a drama series on Netflix with a great finale?"),
    # -- music (4) ------------------------------------------------------------------------
    ("music", "Can you list some famous songs of Michael Jackson?"),
    ("music",
     "Which album of The Beatles should I listen to first on vinyl?"),
    ("music",
     "Can you suggest a rock band similar to Radiohead for my playlist?"),
    ("music",
     "Who wrote the best classical symphony, was it Mozart?"),
    # -- science (4) ---------------------------------------------------------------------------
    ("science", "Why is copper a good conductor?"),
    ("science",
     "Can someone explain the theory of relativity of Albert Einstein in simple words?"),
    ("science",
     "What exactly is the Higgs boson particle discovered at CERN?"),
    ("science",
     "How does DNA store the genetic information of a cell?"),
    # -- sport (5) ---------------------------------------------------------------------------------
    ("sport", "Can you list some famous European football teams?"),
    ("sport", "Who is the best freestyle swimmer, is it Michael Phelps?"),
    ("sport",
     "How many goals did Lionel Messi score for FC Barcelona this season?"),
    ("sport",
     "Which team has won the most Champions League titles, Real Madrid or AC Milan?"),
    ("sport",
     "What training plan should I follow to improve my marathon race time?"),
    # -- technology & games (4) -----------------------------------------------------------------------
    ("technology_games",
     "I am looking for a graphic card to play Diablo 3 but I don't want to spend too much. What do you suggest?"),
    ("technology_games",
     "Should I buy an iPhone or an Android smartphone for gaming?"),
    ("technology_games",
     "Is the new Nvidia gpu worth the upgrade for World of Warcraft raids?"),
    ("technology_games",
     "Which console has the better exclusive games, PlayStation or Xbox?"),
)


def paper_queries() -> list[ExpertiseNeed]:
    """The 30 expertise needs, ids ``q01``..``q30`` in paper order.

    >>> needs = paper_queries()
    >>> len(needs)
    30
    >>> needs[0].domain
    'computer_engineering'
    """
    return [
        ExpertiseNeed(need_id=f"q{i + 1:02d}", text=text, domain=domain)
        for i, (domain, text) in enumerate(_QUERIES)
    ]
