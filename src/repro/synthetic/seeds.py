"""Build the synthetic knowledge base from the entity seed data.

Anchors come with counts that shape the commonness prior ("python" is
mostly the programming language, sometimes the snake), and page links
form the graph the Milne–Witten relatedness is computed on. To make
within-domain relatedness reliable even for sparsely linked seeds, every
domain gets a hub page (e.g. ``wiki/Portal:Sport``) that links to all of
the domain's entities — mirroring Wikipedia's portal/category pages.
"""

from __future__ import annotations

from repro.entity.knowledge_base import Entity, KnowledgeBase
from repro.synthetic.vocab import DOMAINS, ENTITY_SEEDS


def build_knowledge_base() -> KnowledgeBase:
    """The deterministic KB used across the whole reproduction.

    >>> kb = build_knowledge_base()
    >>> kb.entity("wiki/Michael_Phelps").domain
    'sport'
    >>> cands = kb.anchor_candidates(("python",))
    >>> cands[0][0]  # the programming language dominates the prior
    'wiki/Python_(programming_language)'
    """
    kb = KnowledgeBase()
    for seed in ENTITY_SEEDS:
        kb.add_entity(
            Entity(
                uri=seed.uri,
                name=seed.name,
                entity_type=seed.entity_type,
                domain=seed.domain,
                description=seed.description,
            )
        )
    # domain hub pages (portals) that link to every entity in the domain
    for domain in DOMAINS:
        hub_uri = f"wiki/Portal:{domain}"
        kb.add_entity(
            Entity(
                uri=hub_uri,
                name=f"Portal {domain}",
                entity_type="Portal",
                domain=domain,
                description=f"overview of the {domain} domain",
            )
        )
    for seed in ENTITY_SEEDS:
        for surface, count in seed.anchors:
            kb.add_anchor(surface, seed.uri, count)
        for target in seed.links:
            kb.add_link(seed.uri, target)
            kb.add_link(target, seed.uri)
        hub_uri = f"wiki/Portal:{seed.domain}"
        kb.add_link(hub_uri, seed.uri)
        kb.add_link(seed.uri, hub_uri)
    return kb
