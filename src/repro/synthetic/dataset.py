"""Assemble the full evaluation dataset.

``build_dataset`` runs the complete production path end to end:

1. generate the population and the three platform stores;
2. **crawl** each platform through the simulated APIs — auth tokens,
   privacy checks, pagination, and rate limits included — exactly as the
   paper's collector did against the live platforms;
3. merge the per-platform graphs into the "All" graph;
4. run the Fig.-4 analysis flow (URL enrichment, language id, text
   processing, entity annotation) over every collected node once,
   producing the shared corpus;
5. derive the questionnaire ground truth and attach the 30 queries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.need import ExpertiseNeed
from repro.entity.annotator import EntityAnnotator
from repro.entity.knowledge_base import KnowledgeBase
from repro.extraction.api import AuthToken, PlatformClient
from repro.extraction.crawler import ParallelCorpusAnalyzer, ResourceExtractor
from repro.extraction.url_content import UrlContentExtractor
from repro.index.analyzer import AnalyzedResource, ResourceAnalyzer
from repro.socialgraph.graph import SocialGraph, merge_graphs
from repro.socialgraph.metamodel import Platform
from repro.synthetic.ground_truth import GroundTruth
from repro.synthetic.network_builder import (
    PAPER,
    SMALL,
    TINY,
    BuiltNetworks,
    NetworkBuilder,
    ScaleProfile,
)
from repro.synthetic.population import Person, generate_population
from repro.synthetic.queries import paper_queries
from repro.synthetic.seeds import build_knowledge_base
from repro.textproc.pipeline import TextPipeline


class DatasetScale(enum.Enum):
    """Preset sizes: TINY for unit tests, SMALL for benchmarks, PAPER for
    a full-volume run, XL for the streaming-only scale (~1M resources /
    10k candidates — served by :mod:`repro.synthetic.stream`, never by
    the materializing builder)."""

    TINY = "tiny"
    SMALL = "small"
    PAPER = "paper"
    XL = "xl"

    def _reject_xl(self, what: str) -> None:
        if self is DatasetScale.XL:
            raise ValueError(
                f"the xl scale has no {what}: it is streaming-only "
                "(~1M resources would be materialized); generate events "
                "with repro.synthetic.stream.stream_resources and build "
                "via ExpertFinder.from_stream"
            )

    @property
    def profile(self) -> ScaleProfile:
        self._reject_xl("network profile")
        return {"tiny": TINY, "small": SMALL, "paper": PAPER}[self.value]

    @property
    def population_size(self) -> int:
        self._reject_xl("population")
        return {"tiny": 12, "small": 40, "paper": 40}[self.value]


@dataclass
class EvaluationDataset:
    """Everything the experiments need, built once and shared."""

    scale: DatasetScale
    seed: int
    people: list[Person]
    networks: BuiltNetworks
    graphs: dict[Platform, SocialGraph]
    merged_graph: SocialGraph
    knowledge_base: KnowledgeBase
    analyzer: ResourceAnalyzer
    corpus: dict[str, AnalyzedResource]
    ground_truth: GroundTruth
    queries: list[ExpertiseNeed] = field(default_factory=list)

    def graph_for(self, platform: Platform | None) -> SocialGraph:
        """The per-platform graph, or the merged "All" graph for None."""
        return self.merged_graph if platform is None else self.graphs[platform]

    def candidates_for(self, platform: Platform | None) -> dict[str, tuple[str, ...]]:
        """Candidate id (= person id) → the profile ids contributing
        evidence under the given platform selection."""
        out: dict[str, tuple[str, ...]] = {}
        for person in self.people:
            profiles = self.networks.profile_ids[person.person_id]
            if platform is None:
                out[person.person_id] = tuple(profiles[p] for p in Platform)
            else:
                out[person.person_id] = (profiles[platform],)
        return out

    @property
    def person_ids(self) -> tuple[str, ...]:
        return tuple(p.person_id for p in self.people)


def default_analyzer() -> ResourceAnalyzer:
    """The analyzer every dataset build uses: the standard text pipeline
    plus the seed knowledge base. Importable (and therefore picklable),
    so it doubles as the ``analyzer_factory`` for spawn-based worker
    pools."""
    return ResourceAnalyzer(TextPipeline(), EntityAnnotator(build_knowledge_base()))


def build_dataset(
    scale: DatasetScale = DatasetScale.TINY, seed: int = 7, *, workers: int = 1
) -> EvaluationDataset:
    """Build the dataset for *scale* with the given master *seed*.

    Fully deterministic: the same (scale, seed) yields bit-identical
    graphs, corpus, and ground truth — for any *workers* count, which
    only shards the corpus-analysis stage (the dominant cost) across a
    process pool.
    """
    scale._reject_xl("materialized dataset")
    people = generate_population(seed, size=scale.population_size)
    networks = NetworkBuilder(people, scale.profile, seed + 1).build()

    extractor = ResourceExtractor()
    graphs: dict[Platform, SocialGraph] = {}
    for platform, store in networks.stores.items():
        clients = [
            PlatformClient(
                store,
                AuthToken(
                    token_id=f"tok:{platform.value}:{person.person_id}",
                    subject_profile_id=networks.profile_ids[person.person_id][platform],
                ),
            )
            for person in people
        ]
        graphs[platform] = extractor.extract(clients)
    merged = merge_graphs(graphs.values())

    kb = build_knowledge_base()
    analyzer = ResourceAnalyzer(TextPipeline(), EntityAnnotator(kb))
    url_extractor = UrlContentExtractor(networks.web)
    corpus = ParallelCorpusAnalyzer(
        analyzer,
        url_extractor,
        workers=workers,
        analyzer_factory=default_analyzer,
    ).analyze_graph(merged)

    return EvaluationDataset(
        scale=scale,
        seed=seed,
        people=people,
        networks=networks,
        graphs=graphs,
        merged_graph=merged,
        knowledge_base=kb,
        analyzer=analyzer,
        corpus=corpus,
        ground_truth=GroundTruth(people),
        queries=paper_queries(),
    )
