"""Synthetic evaluation dataset (substitutes the paper's 40 volunteers).

The paper recruited 40 people active on Facebook, Twitter, and LinkedIn
and crawled ~330k of their resources; neither the people nor the data
are available. This package generates a structurally faithful stand-in:

* a population of 40 candidates with latent 7-domain expertise on the
  paper's 7-point Likert scale (:mod:`population`);
* three platform stores with platform-specific biases — Facebook has the
  most resources and leans to entertainment, Twitter has the most
  distance-1 resources and topical followed accounts, LinkedIn has rich
  work profiles and 95% of its resources in groups
  (:mod:`network_builder`);
* resource texts whose topicality is conditioned on the author's latent
  expertise (:mod:`text_gen`), so the behavioural trace genuinely encodes
  who knows what;
* the 30 expertise needs over 7 domains (:mod:`queries`) and the
  self-assessment ground truth (:mod:`ground_truth`).

Everything is seeded and deterministic.
"""

from repro.synthetic.dataset import DatasetScale, EvaluationDataset, build_dataset
from repro.synthetic.ground_truth import GroundTruth
from repro.synthetic.population import Person, generate_population
from repro.synthetic.queries import paper_queries
from repro.synthetic.seeds import build_knowledge_base
from repro.synthetic.vocab import DOMAINS

__all__ = [
    "DOMAINS",
    "DatasetScale",
    "EvaluationDataset",
    "GroundTruth",
    "Person",
    "build_dataset",
    "build_knowledge_base",
    "generate_population",
    "paper_queries",
]
