"""The synthetic volunteer population.

Each of the 40 people carries latent state that drives everything
downstream:

* ``expertise`` — the 7-point Likert self-assessment per domain (this is
  also what the ground truth is derived from, exactly as the paper
  derives domain expertise from the questionnaire);
* ``exposure`` — how much of that expertise the person actually shows on
  social networks. The paper's trustworthiness analysis (Sec. 3.7, Fig.
  10) found that several self-declared experts never post about their
  domain — some accounts exist for "flagship or promotional reasons",
  others are privacy-restricted — making them unrecoverable by any
  resource-based method. A fraction of the population therefore gets a
  very low exposure factor;
* ``activity`` — posting volume multiplier, heavy-tailed like the
  observed per-user resource counts (tens to tens of thousands).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.synthetic.vocab import DOMAINS, PERSON_NAMES

#: domains whose expertise LinkedIn-style career profiles describe well
WORK_DOMAINS: tuple[str, ...] = ("computer_engineering", "technology_games", "science")

#: relative probability that a domain is one of a person's focus domains.
#: Location gets a low weight: the paper observed that "few expert
#: candidates considered themselves sufficiently skilled in the domain"
#: although location-related content was widespread.
_FOCUS_WEIGHTS: dict[str, float] = {
    "computer_engineering": 1.3,
    "location": 0.3,
    "movies_tv": 1.1,
    "music": 1.0,
    "science": 1.0,
    "sport": 1.3,
    "technology_games": 1.15,
}


@dataclass(frozen=True)
class Person:
    """One synthetic volunteer."""

    person_id: str
    name: str
    #: domain → Likert 1..7 self-assessed expertise
    expertise: dict[str, int] = field(repr=False)
    #: domain → [0, 1] *interest*: what the person talks about. Correlated
    #: with expertise but not identical — fans post about football without
    #: being experts, and experts may rarely mention their field. This gap
    #: is the main reason resource-based expert finding is imperfect
    #: (paper Sec. 3.7).
    interest: dict[str, float] = field(repr=False)
    #: domain → [0, 1] share of the interest visible in social activity
    exposure: dict[str, float] = field(repr=False)
    #: posting-volume multiplier (heavy-tailed across the population)
    activity: float = 1.0

    def __post_init__(self) -> None:
        for attribute in ("expertise", "interest", "exposure"):
            missing = [d for d in DOMAINS if d not in getattr(self, attribute)]
            if missing:
                raise ValueError(f"{attribute} missing domains: {missing}")
        bad = {d: v for d, v in self.expertise.items() if not 1 <= v <= 7}
        if bad:
            raise ValueError(f"Likert scores outside 1..7: {bad}")
        if self.activity <= 0:
            raise ValueError("activity must be positive")

    def likert(self, domain: str) -> int:
        """Self-assessed expertise for *domain* (1..7)."""
        return self.expertise[domain]

    def visible_interest(self, domain: str) -> float:
        """How strongly the person's *observable* behaviour reflects the
        domain: interest scaled by exposure, in [0, 1]."""
        return self.interest[domain] * self.exposure[domain]

    def expertise_signal(self, domain: str) -> float:
        """Observable behaviour that genuinely tracks expertise (e.g.
        following specialized accounts), scaled by exposure, in [0, 1]."""
        return (self.expertise[domain] / 7.0) * self.exposure[domain]


def _clip_likert(value: float) -> int:
    return max(1, min(7, round(value)))


def generate_population(
    seed: int, *, size: int = 40, low_exposure_fraction: float = 0.2
) -> list[Person]:
    """Generate *size* people with seeded, reproducible latent state.

    ``low_exposure_fraction`` of the population barely exposes its
    expertise (the Fig.-10 "completely unreliable" users).
    """
    if size <= 0:
        raise ValueError("size must be positive")
    if not 0.0 <= low_exposure_fraction <= 1.0:
        raise ValueError("low_exposure_fraction must be in [0, 1]")
    rng = random.Random(seed)
    people: list[Person] = []
    domains = list(DOMAINS)
    weights = [_FOCUS_WEIGHTS[d] for d in domains]
    low_exposure_count = round(size * low_exposure_fraction)
    low_exposure_ids = set(rng.sample(range(size), low_exposure_count))

    for i in range(size):
        name = PERSON_NAMES[i % len(PERSON_NAMES)]
        suffix = "" if i < len(PERSON_NAMES) else f" {i // len(PERSON_NAMES) + 1}"
        n_focus = rng.choice((1, 2, 2, 3))
        focus: set[str] = set()
        while len(focus) < n_focus:
            focus.add(rng.choices(domains, weights=weights, k=1)[0])
        expertise: dict[str, int] = {}
        interest: dict[str, float] = {}
        for domain in domains:
            if domain in focus:
                expertise[domain] = _clip_likert(rng.gauss(5.6, 0.9))
            elif domain == "location":
                # right-skewed: most people rate themselves plainly low,
                # so few cross the domain average — the paper's Location
                # domain had markedly fewer self-declared experts
                expertise[domain] = _clip_likert(rng.gauss(2.0, 0.45))
            else:
                expertise[domain] = _clip_likert(rng.gauss(2.7, 1.1))
            # interest tracks expertise only partially (r ≈ 0.5)
            interest[domain] = min(
                1.0,
                max(0.0, 0.5 * expertise[domain] / 7.0 + 0.5 * rng.random()),
            )
        if i in low_exposure_ids:
            # flagship/promotional accounts: near-silent AND off-topic —
            # the paper's Fig.-10 users that no resource-based method can
            # assess
            exposure = {d: rng.uniform(0.02, 0.15) for d in domains}
            activity = rng.uniform(0.08, 0.3)
        else:
            exposure = {d: rng.uniform(0.65, 1.0) for d in domains}
            # lognormal activity: median 1x, a few prolific 10x+ posters
            activity = rng.lognormvariate(0.0, 0.8)
        people.append(
            Person(
                person_id=f"person:{i:02d}",
                name=f"{name}{suffix}",
                expertise=expertise,
                interest=interest,
                exposure=exposure,
                activity=max(0.15, activity),
            )
        )
    return people
