"""Ground truth from the self-assessment questionnaire (paper Sec. 3.1).

The paper asked the 40 candidates to rate their expertise on each of the
30 needs on a 7-point Likert scale, derived per-domain expertise levels,
and considered *domain experts* "only those having a level of expertise
higher than the average expertise of that domain" — a boolean relevance
function. We replicate the derivation from the population's latent
Likert scores (which *are* the questionnaire answers in this synthetic
setting; exposure noise affects behaviour, not self-assessment).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.synthetic.population import Person
from repro.synthetic.vocab import DOMAINS


@dataclass(frozen=True)
class DomainStats:
    """Fig.-5b statistics for one domain."""

    domain: str
    expert_count: int
    average_expertise: float
    average_domain_expertise: float  # average over the experts only


class GroundTruth:
    """Expert labels and graded relevance derived from the questionnaire."""

    def __init__(self, people: list[Person]):
        if not people:
            raise ValueError("ground truth needs a non-empty population")
        self._people = {p.person_id: p for p in people}
        self._averages = {
            d: sum(p.expertise[d] for p in people) / len(people) for d in DOMAINS
        }
        self._experts = {
            d: frozenset(
                p.person_id for p in people if p.expertise[d] > self._averages[d]
            )
            for d in DOMAINS
        }

    @property
    def person_ids(self) -> tuple[str, ...]:
        return tuple(self._people)

    def experts(self, domain: str) -> frozenset[str]:
        """The domain-expert set (expertise above the domain average)."""
        self._check(domain)
        return self._experts[domain]

    def is_expert(self, person_id: str, domain: str) -> bool:
        self._check(domain)
        return person_id in self._experts[domain]

    def likert(self, person_id: str, domain: str) -> int:
        """Graded relevance: the questionnaire's 1..7 answer — the gain
        used by the DCG/NDCG curves."""
        self._check(domain)
        return self._people[person_id].expertise[domain]

    def average_expertise(self, domain: str) -> float:
        self._check(domain)
        return self._averages[domain]

    def domain_stats(self, domain: str) -> DomainStats:
        """The per-domain numbers plotted in Fig. 5b."""
        self._check(domain)
        experts = self._experts[domain]
        expert_avg = (
            sum(self._people[pid].expertise[domain] for pid in experts) / len(experts)
            if experts
            else 0.0
        )
        return DomainStats(
            domain=domain,
            expert_count=len(experts),
            average_expertise=self._averages[domain],
            average_domain_expertise=expert_avg,
        )

    def overall_stats(self) -> dict[str, float]:
        """Population-level summary (paper: "on average, each domain
        featured 17 experts, with an average expertise level of 3.57")."""
        stats = [self.domain_stats(d) for d in DOMAINS]
        return {
            "avg_experts_per_domain": sum(s.expert_count for s in stats) / len(stats),
            "avg_expertise": sum(s.average_expertise for s in stats) / len(stats),
        }

    def _check(self, domain: str) -> None:
        if domain not in self._averages:
            raise ValueError(f"unknown domain {domain!r}")
