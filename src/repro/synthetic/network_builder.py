"""Build the three platform stores and the synthetic web.

This module encodes the structural facts about the platforms that the
paper's findings rest on (Sec. 3.1, Fig. 5a):

* **Facebook** — the most resources overall (wall posts, likes, group
  posts); entertainment-leaning topics; friendship graph dense among the
  volunteers but friends' data mostly privacy-blocked (~0.6% visible);
  profiles sparse, though hometown info is widespread (which the paper
  blames for the hard Location domain);
* **Twitter** — the most distance-1 resources (tweets); no containers;
  followed accounts are thematically focused (athletes, bands,
  companies) and play the role Facebook pages play elsewhere; mutual
  follows among volunteers are friendships;
* **LinkedIn** — few resources, 95% of them group posts; rich career
  profiles that describe work-domain expertise well.

Every quantity derives from a :class:`ScaleProfile` so tests run on a
tiny network and benchmarks on a paper-sized one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.extraction.api import AccountRecord, ContainerRecord, PlatformStore
from repro.extraction.privacy import PrivacyPolicy
from repro.extraction.url_content import SyntheticWeb
from repro.socialgraph.metamodel import Platform, Resource, ResourceContainer, UserProfile
from repro.synthetic.population import Person, WORK_DOMAINS
from repro.synthetic.text_gen import TextGenerator, _DOMAIN_ENTITIES
from repro.synthetic.vocab import DOMAINS

#: topical bias of what gets posted per platform (multiplies visible
#: interest in :meth:`TextGenerator.pick_domain`)
FACEBOOK_BIAS: dict[str, float] = {
    "movies_tv": 1.5, "music": 1.4, "sport": 1.3, "location": 1.2,
    "technology_games": 0.9, "science": 0.5, "computer_engineering": 0.45,
}
TWITTER_BIAS: dict[str, float] = {
    "computer_engineering": 1.35, "technology_games": 1.3, "science": 1.2,
    "sport": 1.2, "movies_tv": 0.9, "music": 0.9, "location": 0.75,
}
LINKEDIN_BIAS: dict[str, float] = {
    "computer_engineering": 1.6, "technology_games": 1.3, "science": 1.1,
    "sport": 0.15, "movies_tv": 0.1, "music": 0.1, "location": 0.15,
}


#: suffix appended by cross-posting apps ("posted via Twitter") that the
#: crawler uses to recognize and skip mirrored updates
CROSS_POST_MARKER = "via twitter"

@dataclass(frozen=True)
class ScaleProfile:
    """Base volumes per person/group; actual counts also scale with each
    person's heavy-tailed activity factor."""

    name: str
    fb_posts: int
    fb_annotations: int
    fb_external_friends: int
    fb_groups_per_domain: int
    fb_group_posts: int
    tw_tweets: int
    tw_annotations: int
    tw_celebrities_per_domain: int
    tw_celebrity_tweets: int
    li_posts: int
    li_groups_per_domain: int
    li_group_posts: int
    pages_per_domain: int
    #: probability a resource links a URL (paper: 70% overall)
    url_probability: float = 0.7
    #: share of volunteer-authored resources in a non-English language
    #: (paper: 330k collected → 230k English)
    non_english_rate: float = 0.28


TINY = ScaleProfile(
    name="tiny",
    fb_posts=12, fb_annotations=4, fb_external_friends=4,
    fb_groups_per_domain=1, fb_group_posts=24,
    tw_tweets=16, tw_annotations=3,
    tw_celebrities_per_domain=2, tw_celebrity_tweets=12,
    li_posts=1, li_groups_per_domain=1, li_group_posts=40,
    pages_per_domain=6,
)

SMALL = ScaleProfile(
    name="small",
    fb_posts=100, fb_annotations=25, fb_external_friends=15,
    fb_groups_per_domain=2, fb_group_posts=150,
    tw_tweets=130, tw_annotations=20,
    tw_celebrities_per_domain=4, tw_celebrity_tweets=60,
    li_posts=1, li_groups_per_domain=2, li_group_posts=200,
    pages_per_domain=25,
)

PAPER = ScaleProfile(
    name="paper",
    fb_posts=450, fb_annotations=110, fb_external_friends=80,
    fb_groups_per_domain=3, fb_group_posts=600,
    tw_tweets=600, tw_annotations=90,
    tw_celebrities_per_domain=5, tw_celebrity_tweets=250,
    li_posts=2, li_groups_per_domain=3, li_group_posts=700,
    pages_per_domain=60,
)


@dataclass
class BuiltNetworks:
    """Everything the generator produced."""

    stores: dict[Platform, PlatformStore]
    web: SyntheticWeb
    #: person id → platform → profile id
    profile_ids: dict[str, dict[Platform, str]]
    people: list[Person] = field(default_factory=list)


class NetworkBuilder:
    """Deterministic generator of the three platform stores."""

    def __init__(self, people: list[Person], scale: ScaleProfile, seed: int):
        if not people:
            raise ValueError("people must be non-empty")
        self._people = people
        self._scale = scale
        self._rng = random.Random(seed)
        self._text = TextGenerator(self._rng)
        self._web = SyntheticWeb()
        self._urls: dict[str | None, list[str]] = {}
        self._resource_seq = 0
        self._timestamp = 0

    # -- shared helpers -----------------------------------------------------------

    def _next_id(self, platform_code: str) -> str:
        self._resource_seq += 1
        return f"{platform_code}:res:{self._resource_seq:07d}"

    def _next_timestamp(self) -> int:
        self._timestamp += 1
        return self._timestamp

    def _url_pool(self, domain: str | None) -> list[str]:
        """Lazily publish the page pool for a domain (None = general)."""
        pool = self._urls.get(domain)
        if pool is None:
            label = domain or "general"
            pool = []
            for i in range(self._scale.pages_per_domain):
                url = f"http://web.example/{label}/{i}"
                if domain is None:
                    page_domain = self._rng.choice(DOMAINS)
                    page = self._text.web_page(url, page_domain)
                    # general pages are boilerplate-heavy chit-chat
                    page = type(page)(
                        url=url,
                        title=self._text.chitchat_sentence(length=4),
                        main_text=self._text.chitchat_sentence(length=30),
                        boilerplate=page.boilerplate,
                    )
                else:
                    page = self._text.web_page(url, domain)
                self._web.publish(page)
                pool.append(url)
            self._urls[domain] = pool
        return pool

    def _resource(
        self, platform: Platform, code: str, domain: str | None, *, force_english: bool = False
    ) -> Resource:
        """Generate one resource: text conditioned on *domain*, URL with
        the configured probability, occasionally non-English."""
        rng = self._rng
        if not force_english and rng.random() < self._scale.non_english_rate:
            _, text = self._text.non_english_text()
        else:
            text = self._text.resource_text(domain)
        urls: tuple[str, ...] = ()
        if rng.random() < self._scale.url_probability:
            urls = (rng.choice(self._url_pool(domain)),)
        return Resource(
            resource_id=self._next_id(code),
            platform=platform,
            text=text,
            urls=urls,
            timestamp=self._next_timestamp(),
        )

    def _scaled(self, base: int, person: Person) -> int:
        return max(1, round(base * person.activity))

    @staticmethod
    def _weighted_member(
        rng: random.Random, members: list[tuple[str, float]]
    ) -> str | None:
        total = sum(w for _, w in members)
        if total <= 0:
            return None
        r = rng.uniform(0.0, total)
        acc = 0.0
        for member_id, w in members:
            acc += w
            if r <= acc:
                return member_id
        return None

    # -- Facebook -----------------------------------------------------------------

    def _build_facebook(self, profile_ids: dict[str, dict[Platform, str]]) -> PlatformStore:
        rng = self._rng
        scale = self._scale
        store = PlatformStore(Platform.FACEBOOK)

        # volunteer accounts; hometown mention makes location info
        # widespread regardless of expertise (paper Sec. 3.7)
        for person in self._people:
            pid = f"fb:user:{person.person_id}"
            profile_ids[person.person_id][Platform.FACEBOOK] = pid
            text = self._text.facebook_profile_text(person)
            if rng.random() < 0.6:
                city = self._text.entity_mention("location")
                text = f"{text} lives in {city}".strip()
            store.add_account(
                AccountRecord(
                    profile=UserProfile(
                        profile_id=pid,
                        platform=Platform.FACEBOOK,
                        display_name=person.name,
                        text=text,
                        person_id=person.person_id,
                    ),
                    privacy=PrivacyPolicy.open(),
                )
            )

        # friendships among volunteers (social bond, not expertise)
        volunteer_ids = [profile_ids[p.person_id][Platform.FACEBOOK] for p in self._people]
        for i in range(len(volunteer_ids)):
            for j in range(i + 1, len(volunteer_ids)):
                if rng.random() < 0.22:
                    store.accounts[volunteer_ids[i]].friends.append(volunteer_ids[j])
                    store.accounts[volunteer_ids[j]].friends.append(volunteer_ids[i])

        # external friends, almost all privacy-blocked
        ext_seq = 0
        for person in self._people:
            pid = profile_ids[person.person_id][Platform.FACEBOOK]
            for _ in range(scale.fb_external_friends):
                ext_seq += 1
                ext_id = f"fb:user:ext:{ext_seq:05d}"
                visible = rng.random() < 0.006
                store.add_account(
                    AccountRecord(
                        profile=UserProfile(
                            profile_id=ext_id,
                            platform=Platform.FACEBOOK,
                            display_name=f"External {ext_seq}",
                            text=self._text.chitchat_sentence(length=5) if visible else "",
                        ),
                        privacy=PrivacyPolicy.open() if visible else PrivacyPolicy.closed(),
                    )
                )
                store.accounts[pid].friends.append(ext_id)
                store.accounts[ext_id].friends.append(pid)

        # wall posts (creates + owns); ~10% land on a friend's wall
        posts_by_domain: dict[str, list[str]] = {d: [] for d in DOMAINS}
        for person in self._people:
            pid = profile_ids[person.person_id][Platform.FACEBOOK]
            account = store.accounts[pid]
            for _ in range(self._scaled(scale.fb_posts, person)):
                domain = self._text.pick_domain(person, platform_bias=FACEBOOK_BIAS)
                resource = self._resource(Platform.FACEBOOK, "fb", domain)
                store.add_resource(resource)
                account.created.append(resource.resource_id)
                if domain is not None:
                    posts_by_domain[domain].append(resource.resource_id)
                friends = [f for f in account.friends if f in store.accounts and
                           store.accounts[f].privacy.resources_visible]
                if friends and rng.random() < 0.1:
                    wall_owner = rng.choice(friends)
                    store.accounts[wall_owner].owned.append(resource.resource_id)
                else:
                    account.owned.append(resource.resource_id)

        # likes (annotations), biased to the person's interests
        all_post_ids = [rid for ids in posts_by_domain.values() for rid in ids]
        for person in self._people:
            pid = profile_ids[person.person_id][Platform.FACEBOOK]
            account = store.accounts[pid]
            for _ in range(self._scaled(scale.fb_annotations, person)):
                domain = self._text.pick_domain(person, platform_bias=FACEBOOK_BIAS)
                pool = posts_by_domain.get(domain or "", ()) or all_post_ids
                if not pool:
                    continue
                rid = rng.choice(pool)
                if rid not in account.annotated and rid not in account.created:
                    account.annotated.append(rid)

        # groups and pages, one set per domain; membership follows
        # visible interest but with plenty of social noise — Facebook
        # groups are joined for social reasons too, and their content
        # drifts off topic, which is why the paper sees Facebook MAP
        # *drop* from distance 1 to distance 2
        self._build_containers(
            store,
            profile_ids,
            platform=Platform.FACEBOOK,
            code="fb",
            domains=DOMAINS,
            groups_per_domain=scale.fb_groups_per_domain,
            posts_per_group=scale.fb_group_posts,
            join_threshold=0.4,
            noise_join_probability=0.28,
            topical_rate=0.4,
        )
        return store

    # -- Twitter -----------------------------------------------------------------

    def _build_twitter(self, profile_ids: dict[str, dict[Platform, str]]) -> PlatformStore:
        rng = self._rng
        scale = self._scale
        store = PlatformStore(Platform.TWITTER)

        for person in self._people:
            pid = f"tw:user:{person.person_id}"
            profile_ids[person.person_id][Platform.TWITTER] = pid
            store.add_account(
                AccountRecord(
                    profile=UserProfile(
                        profile_id=pid,
                        platform=Platform.TWITTER,
                        display_name=person.name,
                        text=self._text.twitter_profile_text(person),
                        person_id=person.person_id,
                    ),
                    privacy=PrivacyPolicy.open(),
                )
            )

        # celebrity/organization accounts: thematically focused, the
        # Twitter equivalent of Facebook pages (paper Sec. 2.2)
        celebrities_by_domain: dict[str, list[str]] = {d: [] for d in DOMAINS}
        for domain in DOMAINS:
            seeds = list(_DOMAIN_ENTITIES[domain])
            rng.shuffle(seeds)
            for k in range(min(scale.tw_celebrities_per_domain, len(seeds))):
                seed = seeds[k]
                cid = f"tw:user:celebrity:{domain}:{k}"
                account = AccountRecord(
                    profile=UserProfile(
                        profile_id=cid,
                        platform=Platform.TWITTER,
                        display_name=seed.name,
                        text=self._text.celebrity_profile_text(seed),
                    ),
                    privacy=PrivacyPolicy.open(),
                )
                store.add_account(account)
                celebrities_by_domain[domain].append(cid)
                for _ in range(scale.tw_celebrity_tweets):
                    topical = rng.random() < 0.9
                    resource = self._resource(
                        Platform.TWITTER, "tw", domain if topical else None,
                        force_english=True,
                    )
                    store.add_resource(resource)
                    account.created.append(resource.resource_id)
                    account.owned.append(resource.resource_id)

        # follows: everyone may follow a domain's most famous account out
        # of casual interest, but the deeper, specialized accounts attract
        # the genuinely knowledgeable — which is what makes Twitter's
        # distance-2 evidence so discriminative (paper Sec. 3.5)
        for person in self._people:
            pid = profile_ids[person.person_id][Platform.TWITTER]
            account = store.accounts[pid]
            for domain in DOMAINS:
                for rank, cid in enumerate(celebrities_by_domain[domain]):
                    if rank == 0:
                        probability = person.visible_interest(domain) * 0.9
                    else:
                        # deep, specialized accounts: squared signal makes
                        # the follow decision sharply expertise-selective
                        probability = person.expertise_signal(domain) ** 2 * 1.1
                    if rng.random() < probability:
                        account.follows.append(cid)
            all_celebrities = [c for cs in celebrities_by_domain.values() for c in cs]
            for _ in range(rng.randint(0, 2)):
                noise = rng.choice(all_celebrities)
                if noise not in account.follows:
                    account.follows.append(noise)

        # mutual follows among volunteers = friendships (promoted by the
        # graph layer when both directions are seen)
        volunteer_ids = [profile_ids[p.person_id][Platform.TWITTER] for p in self._people]
        for i in range(len(volunteer_ids)):
            for j in range(i + 1, len(volunteer_ids)):
                if rng.random() < 0.18:
                    store.accounts[volunteer_ids[i]].friends.append(volunteer_ids[j])
                    store.accounts[volunteer_ids[j]].friends.append(volunteer_ids[i])

        # tweets and favorites
        tweets_by_domain: dict[str, list[str]] = {d: [] for d in DOMAINS}
        for person in self._people:
            pid = profile_ids[person.person_id][Platform.TWITTER]
            account = store.accounts[pid]
            for _ in range(self._scaled(scale.tw_tweets, person)):
                domain = self._text.pick_domain(person, platform_bias=TWITTER_BIAS)
                resource = self._resource(Platform.TWITTER, "tw", domain)
                store.add_resource(resource)
                account.created.append(resource.resource_id)
                account.owned.append(resource.resource_id)
                if domain is not None:
                    tweets_by_domain[domain].append(resource.resource_id)
        all_tweets = [rid for ids in tweets_by_domain.values() for rid in ids]
        for person in self._people:
            pid = profile_ids[person.person_id][Platform.TWITTER]
            account = store.accounts[pid]
            for _ in range(self._scaled(scale.tw_annotations, person)):
                domain = self._text.pick_domain(person, platform_bias=TWITTER_BIAS)
                pool = tweets_by_domain.get(domain or "", ()) or all_tweets
                if not pool:
                    continue
                rid = rng.choice(pool)
                if rid not in account.annotated and rid not in account.created:
                    account.annotated.append(rid)
        return store

    # -- LinkedIn ------------------------------------------------------------------

    def _build_linkedin(
        self,
        profile_ids: dict[str, dict[Platform, str]],
        twitter_store: PlatformStore,
    ) -> PlatformStore:
        rng = self._rng
        scale = self._scale
        store = PlatformStore(Platform.LINKEDIN)

        for person in self._people:
            pid = f"li:user:{person.person_id}"
            profile_ids[person.person_id][Platform.LINKEDIN] = pid
            store.add_account(
                AccountRecord(
                    profile=UserProfile(
                        profile_id=pid,
                        platform=Platform.LINKEDIN,
                        display_name=person.name,
                        text=self._text.linkedin_profile_text(person),
                        person_id=person.person_id,
                    ),
                    privacy=PrivacyPolicy.open(),
                )
            )

        volunteer_ids = [profile_ids[p.person_id][Platform.LINKEDIN] for p in self._people]
        for i in range(len(volunteer_ids)):
            for j in range(i + 1, len(volunteer_ids)):
                if rng.random() < 0.15:
                    store.accounts[volunteer_ids[i]].friends.append(volunteer_ids[j])
                    store.accounts[volunteer_ids[j]].friends.append(volunteer_ids[i])

        # a few status updates; the platform gives "less incentives ...
        # for general-purpose interaction" (paper Sec. 3.1). Some members
        # cross-post their tweets instead — the paper ignored those
        # updates "because they were already accounted for in the other
        # social network"; the crawler filters them by their app marker.
        for person in self._people:
            pid = profile_ids[person.person_id][Platform.LINKEDIN]
            account = store.accounts[pid]
            for _ in range(max(0, round(scale.li_posts * min(person.activity, 2.0)))):
                domain = self._text.pick_domain(person, platform_bias=LINKEDIN_BIAS)
                resource = self._resource(Platform.LINKEDIN, "li", domain, force_english=True)
                store.add_resource(resource)
                account.created.append(resource.resource_id)
                account.owned.append(resource.resource_id)
            if rng.random() < 0.3:
                tweets = twitter_store.accounts[
                    profile_ids[person.person_id][Platform.TWITTER]
                ].created
                for rid in rng.sample(tweets, k=min(len(tweets), rng.randint(1, 3))):
                    mirrored = Resource(
                        resource_id=self._next_id("li"),
                        platform=Platform.LINKEDIN,
                        text=f"{twitter_store.resources[rid].text} {CROSS_POST_MARKER}",
                        urls=twitter_store.resources[rid].urls,
                        timestamp=self._next_timestamp(),
                    )
                    store.add_resource(mirrored)
                    account.created.append(mirrored.resource_id)
                    account.owned.append(mirrored.resource_id)

        # professional groups carry 95% of the LinkedIn resources
        self._build_containers(
            store,
            profile_ids,
            platform=Platform.LINKEDIN,
            code="li",
            domains=WORK_DOMAINS,
            groups_per_domain=scale.li_groups_per_domain,
            posts_per_group=scale.li_group_posts,
            join_threshold=0.4,
            noise_join_probability=0.05,
            topical_rate=0.85,
        )
        return store

    # -- containers (shared by Facebook and LinkedIn) --------------------------------

    def _build_containers(
        self,
        store: PlatformStore,
        profile_ids: dict[str, dict[Platform, str]],
        *,
        platform: Platform,
        code: str,
        domains: tuple[str, ...],
        groups_per_domain: int,
        posts_per_group: int,
        join_threshold: float,
        noise_join_probability: float,
        topical_rate: float,
    ) -> None:
        rng = self._rng
        for domain in domains:
            for g in range(groups_per_domain):
                cid = f"{code}:group:{domain}:{g}"
                name = f"{domain.replace('_', ' ')} community {g}"
                record = ContainerRecord(
                    container=ResourceContainer(
                        container_id=cid,
                        platform=platform,
                        name=name,
                        text=self._text.container_description(domain, name),
                    )
                )
                store.add_container(record)
                members: list[tuple[str, float]] = []
                for person in self._people:
                    pid = profile_ids[person.person_id][platform]
                    interest = person.visible_interest(domain)
                    joins = interest > join_threshold and rng.random() < interest
                    if not joins and rng.random() < noise_join_probability:
                        joins = True  # social noise: invited by a friend
                    if joins:
                        record.members.append(pid)
                        store.accounts[pid].containers.append(cid)
                        members.append((pid, interest * person.activity))
                # group posts: mostly on the group topic; some authored by
                # members (distance 1 for them), the rest by outsiders
                resources: list[Resource] = []
                for _ in range(posts_per_group):
                    topical = rng.random() < topical_rate
                    resource = self._resource(platform, code, domain if topical else None)
                    store.add_resource(resource)
                    resources.append(resource)
                    if members and rng.random() < 0.35:
                        author = self._weighted_member(rng, members)
                        if author is not None:
                            store.accounts[author].created.append(resource.resource_id)
                # most recent first, as the API returns them
                resources.sort(key=lambda r: -r.timestamp)
                record.resource_ids.extend(r.resource_id for r in resources)

    # -- entry point --------------------------------------------------------------------

    def build(self) -> BuiltNetworks:
        """Generate all three platform stores and the synthetic web."""
        profile_ids: dict[str, dict[Platform, str]] = {
            p.person_id: {} for p in self._people
        }
        facebook = self._build_facebook(profile_ids)
        twitter = self._build_twitter(profile_ids)
        stores = {
            Platform.FACEBOOK: facebook,
            Platform.TWITTER: twitter,
            Platform.LINKEDIN: self._build_linkedin(profile_ids, twitter),
        }
        return BuiltNetworks(
            stores=stores,
            web=self._web,
            profile_ids=profile_ids,
            people=list(self._people),
        )
