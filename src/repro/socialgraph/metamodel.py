"""The simplified social-network meta-model of paper Fig. 2.

Node kinds: :class:`UserProfile`, :class:`Resource`,
:class:`ResourceContainer`, :class:`Url`.

Edge kinds (:class:`RelationKind`): social relationships between profiles
(``FRIENDSHIP`` when bidirectional, ``FOLLOWS`` when unidirectional — the
paper stresses this distinction in Sec. 2.2), ``OWNS`` / ``CREATES`` /
``ANNOTATES`` between a profile and a resource, ``RELATES_TO`` between a
profile and a container, ``CONTAINS`` between a container and a resource,
and ``LINKS_TO`` from any content node to a URL.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Platform(enum.Enum):
    """The social platforms considered by the paper."""

    FACEBOOK = "facebook"
    TWITTER = "twitter"
    LINKEDIN = "linkedin"

    @property
    def short(self) -> str:
        """Two-letter code used in the paper's tables (FB/TW/LI)."""
        return {"facebook": "FB", "twitter": "TW", "linkedin": "LI"}[self.value]


class RelationKind(enum.Enum):
    """Typed edges of the meta-model."""

    FRIENDSHIP = "friendship"  # bidirectional social relationship
    FOLLOWS = "follows"  # unidirectional social relationship
    OWNS = "owns"
    CREATES = "creates"
    ANNOTATES = "annotates"  # Facebook Like, Twitter Favorite, ...
    RELATES_TO = "relatesTo"  # profile ↔ container (group membership, page like)
    CONTAINS = "contains"  # container → resource
    LINKS_TO = "linksTo"  # content → url

    @property
    def is_social(self) -> bool:
        return self in (RelationKind.FRIENDSHIP, RelationKind.FOLLOWS)


@dataclass(frozen=True)
class Url:
    """An external web page linked from a profile, resource, or container."""

    url: str

    def __post_init__(self) -> None:
        if not self.url:
            raise ValueError("Url.url must be non-empty")


@dataclass(frozen=True)
class UserProfile:
    """A social-network account.

    *text* holds whatever self-description the platform exposes — a short
    bio on Twitter, hobby/interest fields on Facebook, a detailed career
    description on LinkedIn. Its richness varies by platform, which is
    exactly what the distance-0 experiments measure.
    """

    profile_id: str
    platform: Platform
    display_name: str
    text: str = ""
    urls: tuple[str, ...] = ()
    #: the real person behind the account (one person may hold several
    #: profiles across platforms); None for non-candidate accounts such as
    #: followed celebrities or organizations.
    person_id: str | None = None

    def __post_init__(self) -> None:
        if not self.profile_id:
            raise ValueError("UserProfile.profile_id must be non-empty")


@dataclass(frozen=True)
class Resource:
    """An informative item inside a platform: a wall post, tweet, status
    update, or group post."""

    resource_id: str
    platform: Platform
    text: str
    urls: tuple[str, ...] = ()
    language: str | None = None
    #: epoch-like ordering key; newer resources have larger values.
    timestamp: int = 0

    def __post_init__(self) -> None:
        if not self.resource_id:
            raise ValueError("Resource.resource_id must be non-empty")


@dataclass(frozen=True)
class ResourceContainer:
    """A logical aggregator of resources — a Facebook group/page or a
    LinkedIn group — typically focused on a topic or real-world entity.
    Described at least by a short text."""

    container_id: str
    platform: Platform
    name: str
    text: str = ""
    urls: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.container_id:
            raise ValueError("ResourceContainer.container_id must be non-empty")


@dataclass(frozen=True)
class SocialRelation:
    """A social edge between two profiles on the same platform."""

    source: str
    target: str
    kind: RelationKind

    def __post_init__(self) -> None:
        if not self.kind.is_social:
            raise ValueError(f"{self.kind} is not a social relation kind")
        if self.source == self.target:
            raise ValueError("self-relations are not allowed")


@dataclass(frozen=True)
class Annotation:
    """A profile → resource annotation (Like / Favorite), kept distinct
    from authorship because annotated resources are still distance-1
    evidence (paper Table 1)."""

    profile_id: str
    resource_id: str
    kind: str = "like"


#: relations that make a resource *directly related* to a profile
DIRECT_RESOURCE_RELATIONS: tuple[RelationKind, ...] = (
    RelationKind.OWNS,
    RelationKind.CREATES,
    RelationKind.ANNOTATES,
)
