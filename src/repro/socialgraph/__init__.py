"""Social graph substrate (paper Fig. 2 and Table 1).

A platform-independent meta-model of social networks — user profiles,
resources, resource containers, URLs, and the relations among them — plus
a typed in-memory graph store and the distance-based resource gathering
that drives expert ranking.
"""

from repro.socialgraph.distance import RelatedResource, ResourceGatherer
from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import (
    Annotation,
    Platform,
    RelationKind,
    Resource,
    ResourceContainer,
    SocialRelation,
    Url,
    UserProfile,
)
from repro.socialgraph.platforms import PlatformCapabilities, capabilities_for

__all__ = [
    "Annotation",
    "Platform",
    "PlatformCapabilities",
    "RelatedResource",
    "RelationKind",
    "Resource",
    "ResourceContainer",
    "ResourceGatherer",
    "SocialGraph",
    "SocialRelation",
    "Url",
    "UserProfile",
    "capabilities_for",
]
