"""Platform capability descriptors.

The three platforms differ in the features they expose (paper Sec. 2.2):
Facebook and LinkedIn have groups/pages, Twitter does not (followed users
play that role); profile richness and API openness also differ. These
descriptors centralize those differences so the extraction layer and the
synthetic generator agree on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.socialgraph.metamodel import Platform


@dataclass(frozen=True)
class PlatformCapabilities:
    """Static description of what a platform offers."""

    platform: Platform
    #: groups/pages exist (Facebook, LinkedIn) or not (Twitter)
    has_containers: bool
    #: social edges are bidirectional by construction (Facebook friendship,
    #: LinkedIn connections) vs. unidirectional follows (Twitter)
    bidirectional_relations: bool
    #: relative richness of profile self-description in [0, 1]
    #: (LinkedIn career pages ≫ Facebook about ≫ Twitter bio)
    profile_richness: float
    #: fraction of a member's friends whose activities are visible to a
    #: third-party app (paper Sec. 3.3.3: ~0.6% on Facebook)
    friend_visibility: float
    #: resources fetched per API page
    page_size: int
    #: API requests allowed per rate window
    rate_limit: int

    def __post_init__(self) -> None:
        if not 0.0 <= self.profile_richness <= 1.0:
            raise ValueError("profile_richness must be in [0, 1]")
        if not 0.0 <= self.friend_visibility <= 1.0:
            raise ValueError("friend_visibility must be in [0, 1]")


_CAPABILITIES: dict[Platform, PlatformCapabilities] = {
    Platform.FACEBOOK: PlatformCapabilities(
        platform=Platform.FACEBOOK,
        has_containers=True,
        bidirectional_relations=True,
        profile_richness=0.35,
        friend_visibility=0.006,
        page_size=25,
        rate_limit=600,
    ),
    Platform.TWITTER: PlatformCapabilities(
        platform=Platform.TWITTER,
        has_containers=False,
        bidirectional_relations=False,
        profile_richness=0.15,
        friend_visibility=1.0,  # public timelines: the most open platform
        page_size=200,
        rate_limit=350,
    ),
    Platform.LINKEDIN: PlatformCapabilities(
        platform=Platform.LINKEDIN,
        has_containers=True,
        bidirectional_relations=True,
        profile_richness=0.9,
        friend_visibility=0.02,
        page_size=50,
        rate_limit=300,
    ),
}


def capabilities_for(platform: Platform) -> PlatformCapabilities:
    """The capability descriptor for *platform*."""
    return _CAPABILITIES[platform]
