"""Typed in-memory store for the social meta-model.

``SocialGraph`` holds the nodes and edges of one platform's graph (or a
merged multi-platform graph) and answers the adjacency queries needed by
the distance traversal: who does a profile follow, which resources does
it own/create/annotate, which containers is it related to, and what does
a container contain.

The store is append-only — the extraction crawler builds it once, the
indexer and ranker then only read — so all query methods return stable
tuples and the internal dictionaries never shrink.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

from repro.socialgraph.metamodel import (
    Annotation,
    Platform,
    RelationKind,
    Resource,
    ResourceContainer,
    SocialRelation,
    UserProfile,
)


class DuplicateNodeError(ValueError):
    """Raised when a node id is registered twice with different content."""


class UnknownNodeError(KeyError):
    """Raised when an edge references a node that was never added."""


class SocialGraph:
    """Append-only typed graph of profiles, resources, and containers."""

    def __init__(self, platform: Platform | None = None):
        #: the platform this graph models; None for a merged graph
        self.platform = platform
        self._profiles: dict[str, UserProfile] = {}
        self._resources: dict[str, Resource] = {}
        self._containers: dict[str, ResourceContainer] = {}
        # adjacency, all keyed by source node id
        self._follows: dict[str, list[str]] = defaultdict(list)
        self._followers: dict[str, list[str]] = defaultdict(list)
        self._friends: dict[str, list[str]] = defaultdict(list)
        self._direct: dict[str, dict[RelationKind, list[str]]] = defaultdict(
            lambda: defaultdict(list)
        )
        self._resource_related_profiles: dict[str, list[tuple[str, RelationKind]]] = (
            defaultdict(list)
        )
        self._member_of: dict[str, list[str]] = defaultdict(list)
        self._container_members: dict[str, list[str]] = defaultdict(list)
        self._container_resources: dict[str, list[str]] = defaultdict(list)
        self._resource_container: dict[str, str] = {}

    # -- node registration ---------------------------------------------------

    def add_profile(self, profile: UserProfile) -> None:
        existing = self._profiles.get(profile.profile_id)
        if existing is not None and existing != profile:
            raise DuplicateNodeError(f"profile {profile.profile_id!r} already present")
        self._profiles[profile.profile_id] = profile

    def add_resource(self, resource: Resource) -> None:
        existing = self._resources.get(resource.resource_id)
        if existing is not None and existing != resource:
            raise DuplicateNodeError(f"resource {resource.resource_id!r} already present")
        self._resources[resource.resource_id] = resource

    def add_container(self, container: ResourceContainer) -> None:
        existing = self._containers.get(container.container_id)
        if existing is not None and existing != container:
            raise DuplicateNodeError(f"container {container.container_id!r} already present")
        self._containers[container.container_id] = container

    # -- edge registration -----------------------------------------------------

    def add_social_relation(self, relation: SocialRelation) -> None:
        """Register a social edge. ``FRIENDSHIP`` is stored symmetrically;
        ``FOLLOWS`` is directed. If two opposite FOLLOWS edges are added,
        they are automatically promoted to a friendship (paper Sec. 2.2:
        mutual follows on Twitter ≡ friends)."""
        self._require_profile(relation.source)
        self._require_profile(relation.target)
        if relation.kind is RelationKind.FRIENDSHIP:
            self._add_friendship(relation.source, relation.target)
            return
        if relation.source in self._follows[relation.target]:
            # reciprocal follow: promote to friendship
            self._follows[relation.target].remove(relation.source)
            self._followers[relation.source].remove(relation.target)
            self._add_friendship(relation.source, relation.target)
            return
        if relation.target not in self._follows[relation.source]:
            self._follows[relation.source].append(relation.target)
            self._followers[relation.target].append(relation.source)

    def _add_friendship(self, a: str, b: str) -> None:
        if b not in self._friends[a]:
            self._friends[a].append(b)
            self._friends[b].append(a)

    def link_resource(self, profile_id: str, resource_id: str, kind: RelationKind) -> None:
        """Register a direct profile → resource relation (owns / creates /
        annotates)."""
        if kind not in (RelationKind.OWNS, RelationKind.CREATES, RelationKind.ANNOTATES):
            raise ValueError(f"{kind} is not a profile→resource relation")
        self._require_profile(profile_id)
        self._require_resource(resource_id)
        bucket = self._direct[profile_id][kind]
        if resource_id not in bucket:
            bucket.append(resource_id)
            self._resource_related_profiles[resource_id].append((profile_id, kind))

    def add_annotation(self, annotation: Annotation) -> None:
        self.link_resource(annotation.profile_id, annotation.resource_id, RelationKind.ANNOTATES)

    def relate_to_container(self, profile_id: str, container_id: str) -> None:
        """Register membership/interest: profile ``relatesTo`` container."""
        self._require_profile(profile_id)
        self._require_container(container_id)
        if container_id not in self._member_of[profile_id]:
            self._member_of[profile_id].append(container_id)
            self._container_members[container_id].append(profile_id)

    def put_in_container(self, container_id: str, resource_id: str) -> None:
        """Register containment: container ``contains`` resource."""
        self._require_container(container_id)
        self._require_resource(resource_id)
        if self._resource_container.get(resource_id) not in (None, container_id):
            raise ValueError(f"resource {resource_id!r} already in another container")
        if self._resource_container.get(resource_id) is None:
            self._container_resources[container_id].append(resource_id)
            self._resource_container[resource_id] = container_id

    # -- lookups ---------------------------------------------------------------

    def profile(self, profile_id: str) -> UserProfile:
        self._require_profile(profile_id)
        return self._profiles[profile_id]

    def resource(self, resource_id: str) -> Resource:
        self._require_resource(resource_id)
        return self._resources[resource_id]

    def container(self, container_id: str) -> ResourceContainer:
        self._require_container(container_id)
        return self._containers[container_id]

    def has_profile(self, profile_id: str) -> bool:
        return profile_id in self._profiles

    # -- queries -----------------------------------------------------------------

    def profiles(self) -> Iterator[UserProfile]:
        yield from self._profiles.values()

    def resources(self) -> Iterator[Resource]:
        yield from self._resources.values()

    def containers(self) -> Iterator[ResourceContainer]:
        yield from self._containers.values()

    def followed_by(self, profile_id: str) -> tuple[str, ...]:
        """Profiles that *profile_id* follows (unidirectional only)."""
        self._require_profile(profile_id)
        return tuple(self._follows.get(profile_id, ()))

    def followers_of(self, profile_id: str) -> tuple[str, ...]:
        self._require_profile(profile_id)
        return tuple(self._followers.get(profile_id, ()))

    def friends_of(self, profile_id: str) -> tuple[str, ...]:
        self._require_profile(profile_id)
        return tuple(self._friends.get(profile_id, ()))

    def direct_resources(
        self, profile_id: str, kinds: Iterable[RelationKind] | None = None
    ) -> tuple[tuple[str, RelationKind], ...]:
        """(resource_id, relation) pairs directly related to the profile."""
        self._require_profile(profile_id)
        wanted = (
            tuple(kinds)
            if kinds is not None
            else (RelationKind.OWNS, RelationKind.CREATES, RelationKind.ANNOTATES)
        )
        buckets = self._direct.get(profile_id, {})
        return tuple(
            (rid, kind) for kind in wanted for rid in buckets.get(kind, ())
        )

    def related_profiles(self, resource_id: str) -> tuple[tuple[str, RelationKind], ...]:
        """Profiles directly related to a resource (inverse of
        :meth:`direct_resources`)."""
        self._require_resource(resource_id)
        return tuple(self._resource_related_profiles.get(resource_id, ()))

    def containers_of(self, profile_id: str) -> tuple[str, ...]:
        self._require_profile(profile_id)
        return tuple(self._member_of.get(profile_id, ()))

    def members_of(self, container_id: str) -> tuple[str, ...]:
        self._require_container(container_id)
        return tuple(self._container_members.get(container_id, ()))

    def resources_in(self, container_id: str) -> tuple[str, ...]:
        self._require_container(container_id)
        return tuple(self._container_resources.get(container_id, ()))

    def container_of(self, resource_id: str) -> str | None:
        self._require_resource(resource_id)
        return self._resource_container.get(resource_id)

    # -- statistics ---------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Node counts, used by the Fig.-5a dataset report."""
        return {
            "profiles": len(self._profiles),
            "resources": len(self._resources),
            "containers": len(self._containers),
        }

    def __len__(self) -> int:
        return len(self._profiles) + len(self._resources) + len(self._containers)

    # -- guards -------------------------------------------------------------------

    def _require_profile(self, profile_id: str) -> None:
        if profile_id not in self._profiles:
            raise UnknownNodeError(f"unknown profile {profile_id!r}")

    def _require_resource(self, resource_id: str) -> None:
        if resource_id not in self._resources:
            raise UnknownNodeError(f"unknown resource {resource_id!r}")

    def _require_container(self, container_id: str) -> None:
        if container_id not in self._containers:
            raise UnknownNodeError(f"unknown container {container_id!r}")


def merge_graphs(graphs: Iterable[SocialGraph]) -> SocialGraph:
    """Merge per-platform graphs into one cross-platform graph ("All" in
    the paper's tables). Node ids are expected to be globally unique
    (platform-prefixed), which the extraction layer guarantees."""
    merged = SocialGraph(platform=None)
    for g in graphs:
        for p in g.profiles():
            merged.add_profile(p)
        for r in g.resources():
            merged.add_resource(r)
        for c in g.containers():
            merged.add_container(c)
    for g in graphs:
        for p in g.profiles():
            for friend in g.friends_of(p.profile_id):
                merged._add_friendship(p.profile_id, friend)
            for followed in g.followed_by(p.profile_id):
                merged.add_social_relation(
                    SocialRelation(p.profile_id, followed, RelationKind.FOLLOWS)
                )
            for rid, kind in g.direct_resources(p.profile_id):
                merged.link_resource(p.profile_id, rid, kind)
            for cid in g.containers_of(p.profile_id):
                merged.relate_to_container(p.profile_id, cid)
        for c in g.containers():
            for rid in g.resources_in(c.container_id):
                merged.put_in_container(c.container_id, rid)
    return merged
