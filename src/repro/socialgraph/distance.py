"""Distance-based resource gathering (paper Table 1).

Starting from an expert-candidate profile (distance 0), the gatherer
walks the social graph and collects every text-bearing node up to
distance 2, tagging each with its distance and the relation path that
reached it. Resources, container descriptions, and profiles of followed
users all count as evidence (they all carry text about the candidate's
interests).

The ``include_friends`` switch reproduces the paper's Sec.-3.3.3
experiment: when on, bidirectional (friendship) edges are traversed like
``follows`` edges; when off — the paper's default — only unidirectional
follows cross profile boundaries, because "bidirectional relationships
typically reflect a real-world bond … which might not naturally imply
shared interests or expertise".
"""

from __future__ import annotations

import enum
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.socialgraph.graph import SocialGraph


class EvidenceKind(enum.Enum):
    """What sort of node an evidence item is."""

    PROFILE = "profile"
    RESOURCE = "resource"
    CONTAINER = "container"


@dataclass(frozen=True)
class RelatedResource:
    """One piece of evidence about a candidate's expertise."""

    candidate_id: str
    node_id: str
    kind: EvidenceKind
    distance: int
    #: human-readable relation path, e.g. "follows→creates"
    via: str

    def __post_init__(self) -> None:
        if not 0 <= self.distance <= 2:
            raise ValueError(f"distance must be in 0..2, got {self.distance}")


@dataclass
class GatheredEvidence:
    """Result of a shared-frontier :meth:`ResourceGatherer.gather_many` pass.

    Both dictionaries preserve first-encounter order, which is what makes
    the parallel cold build reproduce the serial build exactly: the
    global node order fixes the index insertion order, and the
    per-candidate order fixes the evidence bookkeeping order.
    """

    #: candidate id → (node id → minimal distance), in encounter order
    distances: dict[str, dict[str, int]] = field(default_factory=dict)
    #: node id → node kind, in global first-encounter order over all candidates
    kinds: dict[str, EvidenceKind] = field(default_factory=dict)


class ResourceGatherer:
    """Gather evidence for candidates according to paper Table 1."""

    def __init__(self, graph: SocialGraph, *, include_friends: bool = False):
        self._graph = graph
        self._include_friends = include_friends

    def _outgoing_profiles(self, profile_id: str) -> list[tuple[str, str]]:
        """Profiles reachable through one social hop: always the followed
        users; friends too when ``include_friends`` is set."""
        out = [(pid, "follows") for pid in self._graph.followed_by(profile_id)]
        if self._include_friends:
            out.extend((pid, "friend") for pid in self._graph.friends_of(profile_id))
        return out

    def gather(self, candidate_id: str, max_distance: int = 2) -> list[RelatedResource]:
        """Return all evidence for *candidate_id* up to *max_distance*.

        Each node appears at most once, at its minimal distance; the order
        is deterministic (breadth-first in insertion order).
        """
        if not 0 <= max_distance <= 2:
            raise ValueError(f"max_distance must be in 0..2, got {max_distance}")
        graph = self._graph
        seen: set[str] = set()
        out: list[RelatedResource] = []

        def emit(node_id: str, kind: EvidenceKind, distance: int, via: str) -> None:
            if node_id not in seen:
                seen.add(node_id)
                out.append(
                    RelatedResource(
                        candidate_id=candidate_id,
                        node_id=node_id,
                        kind=kind,
                        distance=distance,
                        via=via,
                    )
                )

        # distance 0: the candidate profile itself
        emit(candidate_id, EvidenceKind.PROFILE, 0, "self")
        if max_distance == 0:
            return out

        # distance 1: direct resources, containers, followed profiles
        for rid, relation in graph.direct_resources(candidate_id):
            emit(rid, EvidenceKind.RESOURCE, 1, relation.value)
        for cid in graph.containers_of(candidate_id):
            emit(cid, EvidenceKind.CONTAINER, 1, "relatesTo")
        hop1 = self._outgoing_profiles(candidate_id)
        for pid, rel in hop1:
            emit(pid, EvidenceKind.PROFILE, 1, rel)
        if max_distance == 1:
            return out

        # distance 2: contents of related containers; resources, containers
        # and follows of the profiles reached at distance 1
        for cid in graph.containers_of(candidate_id):
            for rid in graph.resources_in(cid):
                emit(rid, EvidenceKind.RESOURCE, 2, "relatesTo→contains")
        for pid, rel in hop1:
            for rid, relation in graph.direct_resources(pid):
                emit(rid, EvidenceKind.RESOURCE, 2, f"{rel}→{relation.value}")
            for cid in graph.containers_of(pid):
                emit(cid, EvidenceKind.CONTAINER, 2, f"{rel}→relatesTo")
            for pid2, rel2 in self._outgoing_profiles(pid):
                emit(pid2, EvidenceKind.PROFILE, 2, f"{rel}→{rel2}")
        return out

    def gather_all(
        self, candidate_ids: list[str], max_distance: int = 2
    ) -> dict[str, list[RelatedResource]]:
        """Gather evidence for every candidate in *candidate_ids*."""
        return {cid: self.gather(cid, max_distance) for cid in candidate_ids}

    def gather_many(
        self, seeds: Mapping[str, Sequence[str]], max_distance: int = 2
    ) -> GatheredEvidence:
        """Gather evidence for many candidates in one shared-frontier pass.

        *seeds* maps each candidate id to its seed profile ids (several
        when one person holds profiles on multiple platforms). The
        traversal visits candidates and profiles in *seeds* order and
        emits nodes in exactly the order the per-candidate :meth:`gather`
        loop would, so the result is equivalent to::

            for cid, pids in seeds.items():
                for pid in pids:
                    for item in gatherer.gather(pid, max_distance):
                        # keep item at its minimal distance per candidate

        but each profile's neighborhood (direct resources, containers,
        outgoing profiles, container contents) is expanded **once** for
        the whole pass instead of once per candidate that reaches it —
        the distance-2 neighborhoods of a social graph overlap heavily,
        which is what makes the per-candidate loop quadratic in practice.
        No per-emission :class:`RelatedResource` objects are built; the
        cold build only needs distances and kinds.
        """
        if not 0 <= max_distance <= 2:
            raise ValueError(f"max_distance must be in 0..2, got {max_distance}")
        graph = self._graph
        # one expansion per profile, shared by every candidate reaching it
        expansions: dict[str, tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]]] = {}
        contents: dict[str, tuple[str, ...]] = {}

        def expansion(pid: str) -> tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]]:
            cached = expansions.get(pid)
            if cached is None:
                cached = (
                    tuple(rid for rid, _ in graph.direct_resources(pid)),
                    graph.containers_of(pid),
                    tuple(p for p, _ in self._outgoing_profiles(pid)),
                )
                expansions[pid] = cached
            return cached

        def contains(cid: str) -> tuple[str, ...]:
            cached = contents.get(cid)
            if cached is None:
                cached = graph.resources_in(cid)
                contents[cid] = cached
            return cached

        gathered = GatheredEvidence()
        kinds = gathered.kinds
        for candidate_id, profile_ids in seeds.items():
            node_distance: dict[str, int] = {}
            gathered.distances[candidate_id] = node_distance
            for profile_id in profile_ids:
                seen: set[str] = set()

                def emit(node_id: str, kind: EvidenceKind, distance: int) -> None:
                    # per-profile BFS dedup (first emission is minimal,
                    # distances are nondecreasing), then the cross-profile
                    # minimal-distance merge
                    if node_id in seen:
                        return
                    seen.add(node_id)
                    if node_id not in kinds:
                        kinds[node_id] = kind
                    prev = node_distance.get(node_id)
                    if prev is None or distance < prev:
                        node_distance[node_id] = distance

                emit(profile_id, EvidenceKind.PROFILE, 0)
                if max_distance == 0:
                    continue
                resources, containers, hop1 = expansion(profile_id)
                for rid in resources:
                    emit(rid, EvidenceKind.RESOURCE, 1)
                for cid in containers:
                    emit(cid, EvidenceKind.CONTAINER, 1)
                for pid in hop1:
                    emit(pid, EvidenceKind.PROFILE, 1)
                if max_distance == 1:
                    continue
                for cid in containers:
                    for rid in contains(cid):
                        emit(rid, EvidenceKind.RESOURCE, 2)
                for pid in hop1:
                    resources2, containers2, hop2 = expansion(pid)
                    for rid in resources2:
                        emit(rid, EvidenceKind.RESOURCE, 2)
                    for cid in containers2:
                        emit(cid, EvidenceKind.CONTAINER, 2)
                    for pid2 in hop2:
                        emit(pid2, EvidenceKind.PROFILE, 2)
        return gathered


def node_text(graph: SocialGraph, node_id: str, kind: EvidenceKind) -> str:
    """The indexable text of one graph node."""
    if kind is EvidenceKind.PROFILE:
        profile = graph.profile(node_id)
        return f"{profile.display_name} {profile.text}".strip()
    if kind is EvidenceKind.RESOURCE:
        return graph.resource(node_id).text
    container = graph.container(node_id)
    return f"{container.name} {container.text}".strip()


def node_urls(graph: SocialGraph, node_id: str, kind: EvidenceKind) -> tuple[str, ...]:
    """URLs attached to one graph node (fed to URL content extraction)."""
    if kind is EvidenceKind.PROFILE:
        return graph.profile(node_id).urls
    if kind is EvidenceKind.RESOURCE:
        return graph.resource(node_id).urls
    return graph.container(node_id).urls


def evidence_text(graph: SocialGraph, item: RelatedResource) -> str:
    """The indexable text of an evidence item."""
    return node_text(graph, item.node_id, item.kind)


def evidence_urls(graph: SocialGraph, item: RelatedResource) -> tuple[str, ...]:
    """URLs attached to an evidence item (fed to URL content extraction)."""
    return node_urls(graph, item.node_id, item.kind)
