"""Simulated social-platform APIs.

A :class:`PlatformStore` is the *server side* of one platform: the full
accounts, resources, and containers that exist there (the synthetic
generator fills it). A :class:`PlatformClient` is the *client side* the
crawler talks to: it needs an :class:`AuthToken`, enforces privacy
policies, paginates results with the platform's page size, and applies a
rate limit per request window — the concrete access constraints the
paper names as what "naturally limit[s] the reach of the graph
exploration" (Sec. 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.extraction.privacy import PrivacyPolicy
from repro.socialgraph.metamodel import Platform, Resource, ResourceContainer, UserProfile
from repro.socialgraph.platforms import PlatformCapabilities, capabilities_for


class PermissionDenied(Exception):
    """The target account's privacy settings forbid this read."""


class RateLimitExceeded(Exception):
    """Too many requests in the current window; retry after a reset."""


class UnknownAccount(KeyError):
    """The requested account does not exist on this platform."""


@dataclass(frozen=True)
class AuthToken:
    """An OAuth-like token issued for one experiment volunteer.

    The paper used the CrowdSearcher platform "to collect users
    authentication tokens and privacy permissions".
    """

    token_id: str
    subject_profile_id: str

    def __post_init__(self) -> None:
        if not self.token_id:
            raise ValueError("AuthToken.token_id must be non-empty")


@dataclass
class AccountRecord:
    """Server-side state of one account."""

    profile: UserProfile
    privacy: PrivacyPolicy = field(default_factory=PrivacyPolicy.open)
    friends: list[str] = field(default_factory=list)
    follows: list[str] = field(default_factory=list)
    created: list[str] = field(default_factory=list)
    owned: list[str] = field(default_factory=list)
    annotated: list[str] = field(default_factory=list)
    containers: list[str] = field(default_factory=list)


@dataclass
class ContainerRecord:
    """Server-side state of one group/page."""

    container: ResourceContainer
    members: list[str] = field(default_factory=list)
    #: resource ids, most recent first (APIs return recent content first)
    resource_ids: list[str] = field(default_factory=list)


class PlatformStore:
    """Everything that exists on one platform (server side)."""

    def __init__(self, platform: Platform):
        self.platform = platform
        self.accounts: dict[str, AccountRecord] = {}
        self.resources: dict[str, Resource] = {}
        self.containers: dict[str, ContainerRecord] = {}

    def add_account(self, record: AccountRecord) -> None:
        pid = record.profile.profile_id
        if pid in self.accounts:
            raise ValueError(f"account {pid!r} already exists")
        if record.profile.platform is not self.platform:
            raise ValueError("profile platform mismatch")
        self.accounts[pid] = record

    def add_resource(self, resource: Resource) -> None:
        if resource.resource_id in self.resources:
            raise ValueError(f"resource {resource.resource_id!r} already exists")
        self.resources[resource.resource_id] = resource

    def add_container(self, record: ContainerRecord) -> None:
        cid = record.container.container_id
        if cid in self.containers:
            raise ValueError(f"container {cid!r} already exists")
        self.containers[cid] = record


@dataclass(frozen=True)
class Page:
    """One page of API results."""

    items: tuple
    next_cursor: int | None


class PlatformClient:
    """Authenticated, rate-limited client over a :class:`PlatformStore`."""

    def __init__(
        self,
        store: PlatformStore,
        token: AuthToken,
        *,
        capabilities: PlatformCapabilities | None = None,
    ):
        if token.subject_profile_id not in store.accounts:
            raise UnknownAccount(token.subject_profile_id)
        self._store = store
        self._token = token
        self._caps = capabilities or capabilities_for(store.platform)
        self._requests_in_window = 0
        self.request_count = 0
        self.rate_limit_hits = 0

    @property
    def platform(self) -> Platform:
        return self._store.platform

    @property
    def subject_id(self) -> str:
        """The volunteer this client's token was issued for."""
        return self._token.subject_profile_id

    @property
    def capabilities(self) -> PlatformCapabilities:
        return self._caps

    # -- plumbing -------------------------------------------------------------

    def _account(self, profile_id: str) -> AccountRecord:
        record = self._store.accounts.get(profile_id)
        if record is None:
            raise UnknownAccount(profile_id)
        return record

    def _spend_request(self) -> None:
        if self._requests_in_window >= self._caps.rate_limit:
            self.rate_limit_hits += 1
            raise RateLimitExceeded(
                f"{self.platform.value}: limit of {self._caps.rate_limit} reached"
            )
        self._requests_in_window += 1
        self.request_count += 1

    def wait_for_window_reset(self) -> None:
        """Simulate sleeping until the rate window resets."""
        self._requests_in_window = 0

    def _is_self(self, profile_id: str) -> bool:
        return profile_id == self._token.subject_profile_id

    def _paginate(self, items: list, cursor: int) -> Page:
        size = self._caps.page_size
        chunk = tuple(items[cursor : cursor + size])
        next_cursor = cursor + size if cursor + size < len(items) else None
        return Page(items=chunk, next_cursor=next_cursor)

    # -- endpoints ---------------------------------------------------------------

    def get_profile(self, profile_id: str) -> UserProfile:
        """Read a profile; honours ``profile_visible`` for non-subjects."""
        self._spend_request()
        record = self._account(profile_id)
        if not self._is_self(profile_id) and not record.privacy.profile_visible:
            raise PermissionDenied(f"profile {profile_id!r} is private")
        return record.profile

    def get_friends(self, profile_id: str) -> tuple[str, ...]:
        self._spend_request()
        record = self._account(profile_id)
        if not self._is_self(profile_id) and not record.privacy.relationships_visible:
            raise PermissionDenied(f"relationships of {profile_id!r} are private")
        return tuple(record.friends)

    def get_followed(self, profile_id: str) -> tuple[str, ...]:
        self._spend_request()
        record = self._account(profile_id)
        if not self._is_self(profile_id) and not record.privacy.relationships_visible:
            raise PermissionDenied(f"relationships of {profile_id!r} are private")
        return tuple(record.follows)

    def get_resources(
        self, profile_id: str, *, relation: str = "created", cursor: int = 0
    ) -> Page:
        """Page through a profile's resources; *relation* is one of
        ``created`` / ``owned`` / ``annotated``."""
        self._spend_request()
        record = self._account(profile_id)
        if not self._is_self(profile_id) and not record.privacy.resources_visible:
            raise PermissionDenied(f"resources of {profile_id!r} are private")
        try:
            ids = {"created": record.created, "owned": record.owned,
                   "annotated": record.annotated}[relation]
        except KeyError:
            raise ValueError(f"unknown relation {relation!r}") from None
        return self._paginate([self._store.resources[rid] for rid in ids], cursor)

    def get_containers(self, profile_id: str) -> tuple[ResourceContainer, ...]:
        """Groups/pages the profile relates to; empty on container-less
        platforms (Twitter)."""
        self._spend_request()
        if not self._caps.has_containers:
            return ()
        record = self._account(profile_id)
        if not self._is_self(profile_id) and not record.privacy.relationships_visible:
            raise PermissionDenied(f"memberships of {profile_id!r} are private")
        return tuple(self._store.containers[cid].container for cid in record.containers)

    def get_container_resources(self, container_id: str, *, cursor: int = 0) -> Page:
        """Page through a container's resources, most recent first —
        the paper retrieved "the most recent resources" per container."""
        self._spend_request()
        record = self._store.containers.get(container_id)
        if record is None:
            raise UnknownAccount(container_id)
        return self._paginate(
            [self._store.resources[rid] for rid in record.resource_ids], cursor
        )
