"""Privacy settings of social accounts.

The paper extracted resources "according to the privacy settings of the
involved users and their contacts" and found that only ~0.6% of the
candidates' Facebook friends exposed their profile and activities to a
third-party application (Sec. 3.3.3). The policy model captures the
three visibility surfaces that mattered there.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PrivacyPolicy:
    """What an account exposes to an authorized third-party app."""

    #: profile text and display name readable
    profile_visible: bool = True
    #: created/owned/annotated resources readable
    resources_visible: bool = True
    #: friend/follow lists and group memberships readable
    relationships_visible: bool = True

    @classmethod
    def open(cls) -> "PrivacyPolicy":
        """Everything visible (a consenting experiment volunteer, or a
        public Twitter account)."""
        return cls(True, True, True)

    @classmethod
    def closed(cls) -> "PrivacyPolicy":
        """Nothing visible beyond existence (a strict Facebook friend)."""
        return cls(False, False, False)

    @classmethod
    def profile_only(cls) -> "PrivacyPolicy":
        """Profile readable but activities hidden."""
        return cls(True, False, False)
