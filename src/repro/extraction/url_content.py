"""Synthetic web + main-text extraction for linked pages.

About 70% of the paper's resources contained a URL, whose page content
was pulled with the Alchemy Text Extraction API and appended to the
resource text (Sec. 2.3 / 3.1). Here a :class:`SyntheticWeb` maps every
generated URL to a deterministic page with a title, the topical *main
text*, and boilerplate (navigation, ads, footer); the
:class:`UrlContentExtractor` plays Alchemy's role, returning the main
text and discarding the boilerplate. Unknown URLs behave like dead
links (empty content), as live crawls routinely encounter.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WebPage:
    """One page of the synthetic web."""

    url: str
    title: str
    main_text: str
    boilerplate: str = ""

    def html(self) -> str:
        """The raw document a fetch would return — title, chrome, body —
        from which the extractor must recover ``main_text``."""
        return (
            f"<html><head><title>{self.title}</title></head><body>"
            f"<nav>{self.boilerplate}</nav>"
            f"<article>{self.main_text}</article>"
            f"<footer>{self.boilerplate}</footer>"
            "</body></html>"
        )


class SyntheticWeb:
    """A registry of synthetic pages keyed by URL."""

    def __init__(self) -> None:
        self._pages: dict[str, WebPage] = {}

    def publish(self, page: WebPage) -> None:
        if page.url in self._pages:
            raise ValueError(f"page already published at {page.url!r}")
        self._pages[page.url] = page

    def fetch(self, url: str) -> WebPage | None:
        """The page at *url*, or None for a dead link."""
        return self._pages.get(url)

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, url: str) -> bool:
        return url in self._pages


class UrlContentExtractor:
    """Alchemy-style extraction: fetch a URL, return its main text.

    Results are memoized — the same URL is shared by many resources
    (retweets, wall shares) and must not be re-fetched each time.
    """

    def __init__(self, web: SyntheticWeb, *, max_chars: int = 2000):
        if max_chars <= 0:
            raise ValueError("max_chars must be positive")
        self._web = web
        self._max_chars = max_chars
        self._cache: dict[str, str] = {}
        self.fetch_count = 0

    def extract(self, url: str) -> str:
        """Main text of the page at *url*; '' for dead links."""
        cached = self._cache.get(url)
        if cached is not None:
            return cached
        self.fetch_count += 1
        page = self._web.fetch(url)
        text = "" if page is None else f"{page.title} {page.main_text}"[: self._max_chars]
        self._cache[url] = text
        return text

    def __call__(self, url: str) -> str:
        return self.extract(url)
