"""The Resource Extraction module (paper Fig. 4, first box).

``ResourceExtractor`` walks a platform's API with each volunteer's auth
token and materializes everything Table 1 needs — the candidate's
profile, direct resources, containers and their recent contents, and the
profiles/resources of followed (and, where visible, friend) users — into
a :class:`SocialGraph`. Privacy denials are skipped, rate-limit errors
are retried after a simulated window reset.

``CorpusAnalyzer`` then runs the full analysis flow of Fig. 4 over every
collected node: URL content enrichment, language identification, text
processing, and entity annotation, producing the corpus the indexes are
built from.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

from repro.extraction.api import (
    PermissionDenied,
    PlatformClient,
    RateLimitExceeded,
)
from repro.index.analyzer import AnalyzedResource, ResourceAnalyzer
from repro.index.parallel import DEFAULT_CHUNK_SIZE, AnalysisTask, analyze_tasks
from repro.socialgraph.distance import EvidenceKind, RelatedResource
from repro.socialgraph.graph import SocialGraph
from repro.socialgraph.metamodel import RelationKind, SocialRelation


class ResourceExtractor:
    """Build a social graph by crawling one platform's API."""

    #: default cross-posting markers (apps append "via <app>"); resources
    #: carrying one are skipped — the paper ignored LinkedIn updates
    #: cross-posted from Twitter because they were "already accounted for
    #: in the other social network" (Sec. 3.1)
    DEFAULT_CROSS_POST_MARKERS: tuple[str, ...] = ("via twitter", "via facebook")

    def __init__(
        self,
        *,
        max_container_resources: int = 500,
        max_profile_resources: int = 2000,
        cross_post_markers: tuple[str, ...] | None = None,
    ):
        if max_container_resources <= 0 or max_profile_resources <= 0:
            raise ValueError("resource caps must be positive")
        self._max_container_resources = max_container_resources
        self._max_profile_resources = max_profile_resources
        self._cross_post_markers = (
            self.DEFAULT_CROSS_POST_MARKERS
            if cross_post_markers is None
            else cross_post_markers
        )

    def _is_cross_post(self, text: str) -> bool:
        lowered = text.lower().rstrip()
        return any(lowered.endswith(marker) for marker in self._cross_post_markers)

    # -- resilient API calls -----------------------------------------------------

    @staticmethod
    def _call(client: PlatformClient, method: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Any:
        """Invoke an endpoint, retrying once after a rate-window reset."""
        try:
            return method(*args, **kwargs)
        except RateLimitExceeded:
            client.wait_for_window_reset()
            return method(*args, **kwargs)

    def _paged(
        self, client: PlatformClient, method: Callable[..., Any], *args: Any, limit: int, **kwargs: Any
    ) -> list[Any]:
        """Drain a paginated endpoint up to *limit* items."""
        items: list[Any] = []
        cursor: int | None = 0
        while cursor is not None and len(items) < limit:
            page = self._call(client, method, *args, cursor=cursor, **kwargs)
            items.extend(page.items)
            cursor = page.next_cursor
        return items[:limit]

    # -- per-node extraction ---------------------------------------------------

    def _extract_direct_resources(
        self, client: PlatformClient, graph: SocialGraph, profile_id: str
    ) -> None:
        relation_map = {
            "created": RelationKind.CREATES,
            "owned": RelationKind.OWNS,
            "annotated": RelationKind.ANNOTATES,
        }
        for relation, kind in relation_map.items():
            try:
                resources = self._paged(
                    client,
                    client.get_resources,
                    profile_id,
                    relation=relation,
                    limit=self._max_profile_resources,
                )
            except PermissionDenied:
                return
            for resource in resources:
                if self._is_cross_post(resource.text):
                    continue
                graph.add_resource(resource)
                graph.link_resource(profile_id, resource.resource_id, kind)

    def _extract_containers(
        self, client: PlatformClient, graph: SocialGraph, profile_id: str, *, with_contents: bool
    ) -> None:
        try:
            containers = self._call(client, client.get_containers, profile_id)
        except PermissionDenied:
            return
        for container in containers:
            graph.add_container(container)
            graph.relate_to_container(profile_id, container.container_id)
            if not with_contents:
                continue
            resources = self._paged(
                client,
                client.get_container_resources,
                container.container_id,
                limit=self._max_container_resources,
            )
            for resource in resources:
                graph.add_resource(resource)
                graph.put_in_container(container.container_id, resource.resource_id)

    def _extract_neighbor(
        self,
        client: PlatformClient,
        graph: SocialGraph,
        source_id: str,
        neighbor_id: str,
        kind: RelationKind,
        extracted: set[str],
    ) -> bool:
        """Pull a followed/friend profile and, if visible, its distance-2
        material. Returns False when privacy blocks the profile."""
        if neighbor_id in extracted:
            # already crawled for another volunteer; only the edge is new
            graph.add_social_relation(SocialRelation(source_id, neighbor_id, kind))
            return True
        try:
            profile = self._call(client, client.get_profile, neighbor_id)
        except PermissionDenied:
            return False
        graph.add_profile(profile)
        graph.add_social_relation(SocialRelation(source_id, neighbor_id, kind))
        extracted.add(neighbor_id)
        self._extract_direct_resources(client, graph, neighbor_id)
        self._extract_containers(client, graph, neighbor_id, with_contents=False)
        try:
            for followed2 in self._call(client, client.get_followed, neighbor_id):
                try:
                    profile2 = self._call(client, client.get_profile, followed2)
                except PermissionDenied:
                    continue
                graph.add_profile(profile2)
                graph.add_social_relation(
                    SocialRelation(neighbor_id, followed2, RelationKind.FOLLOWS)
                )
        except PermissionDenied:
            pass
        return True

    # -- entry point ---------------------------------------------------------------

    def extract(
        self, clients: Iterable[PlatformClient], graph: SocialGraph | None = None
    ) -> SocialGraph:
        """Crawl with one authenticated client per volunteer, merging all
        results into one graph for the platform."""
        clients = list(clients)
        if not clients:
            raise ValueError("at least one authenticated client is required")
        platform = clients[0].platform
        if any(c.platform is not platform for c in clients):
            raise ValueError("all clients must target the same platform")
        graph = graph if graph is not None else SocialGraph(platform)
        extracted: set[str] = set()

        for client in clients:
            subject = client.subject_id
            profile = self._call(client, client.get_profile, subject)
            graph.add_profile(profile)
            extracted.add(subject)
            self._extract_direct_resources(client, graph, subject)
            self._extract_containers(client, graph, subject, with_contents=True)
        for client in clients:
            subject = client.subject_id
            try:
                followed = self._call(client, client.get_followed, subject)
            except PermissionDenied:
                followed = ()
            for neighbor in followed:
                self._extract_neighbor(
                    client, graph, subject, neighbor, RelationKind.FOLLOWS, extracted
                )
            try:
                friends = self._call(client, client.get_friends, subject)
            except PermissionDenied:
                friends = ()
            for neighbor in friends:
                # most friends are invisible to a third-party app
                self._extract_neighbor(
                    client, graph, subject, neighbor, RelationKind.FRIENDSHIP, extracted
                )
        return graph


class CorpusAnalyzer:
    """Run the Fig.-4 analysis flow over every node of a graph.

    The result — node id → :class:`AnalyzedResource` — is the reusable
    corpus the experiment harness shares across finder configurations,
    so stemming and entity annotation happen once per node, not once per
    configuration.
    """

    def __init__(
        self,
        analyzer: ResourceAnalyzer,
        url_content: Callable[[str], str] | None = None,
    ):
        self._analyzer = analyzer
        self._url_content = url_content

    def _enrich(self, text: str, urls: tuple[str, ...]) -> str:
        if self._url_content is None:
            return text
        parts = [text]
        parts.extend(self._url_content(url) for url in urls)
        return " ".join(p for p in parts if p)

    def analyze_graph(self, graph: SocialGraph) -> dict[str, AnalyzedResource]:
        """Analyze every profile, resource, and container in *graph*."""
        corpus: dict[str, AnalyzedResource] = {}
        for profile in graph.profiles():
            text = self._enrich(
                f"{profile.display_name} {profile.text}".strip(), profile.urls
            )
            corpus[profile.profile_id] = self._analyzer.analyze(profile.profile_id, text)
        for resource in graph.resources():
            text = self._enrich(resource.text, resource.urls)
            corpus[resource.resource_id] = self._analyzer.analyze(
                resource.resource_id, text, language=resource.language
            )
        for container in graph.containers():
            text = self._enrich(f"{container.name} {container.text}".strip(), container.urls)
            corpus[container.container_id] = self._analyzer.analyze(
                container.container_id, text
            )
        return corpus

    def analyze_evidence(
        self, graph: SocialGraph, items: Iterable[RelatedResource]
    ) -> dict[str, AnalyzedResource]:
        """Analyze only the nodes referenced by *items* (cheaper when a
        single candidate's evidence is needed)."""
        corpus: dict[str, AnalyzedResource] = {}
        for item in items:
            if item.node_id in corpus:
                continue
            language: str | None = None
            if item.kind is EvidenceKind.PROFILE:
                p = graph.profile(item.node_id)
                text = self._enrich(f"{p.display_name} {p.text}".strip(), p.urls)
            elif item.kind is EvidenceKind.RESOURCE:
                r = graph.resource(item.node_id)
                text = self._enrich(r.text, r.urls)
                # honour the platform's language annotation, exactly as
                # analyze_graph does — otherwise the same node can be
                # classified differently depending on which path saw it
                language = r.language
            else:
                c = graph.container(item.node_id)
                text = self._enrich(f"{c.name} {c.text}".strip(), c.urls)
            corpus[item.node_id] = self._analyzer.analyze(
                item.node_id, text, language=language
            )
        return corpus


class ParallelCorpusAnalyzer(CorpusAnalyzer):
    """A :class:`CorpusAnalyzer` that shards the analysis across worker
    processes.

    URL enrichment stays in the parent (it is a lookup, not CPU work);
    the stemming + entity-annotation pipeline — the expensive part —
    runs over contiguous *chunk_size* slices of the node stream in a
    process pool (see :mod:`repro.index.parallel`). The resulting corpus
    is identical to the serial one for any worker count: the analyzer is
    deterministic and results are reassembled in graph order.
    ``workers=1`` delegates to the exact serial path.
    """

    def __init__(
        self,
        analyzer: ResourceAnalyzer,
        url_content: Callable[[str], str] | None = None,
        *,
        workers: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        analyzer_factory: Callable[[], ResourceAnalyzer] | None = None,
    ):
        super().__init__(analyzer, url_content)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._workers = workers
        self._chunk_size = chunk_size
        self._analyzer_factory = analyzer_factory

    def analyze_graph(self, graph: SocialGraph) -> dict[str, AnalyzedResource]:
        """Analyze every profile, resource, and container in *graph*."""
        if self._workers == 1:
            return super().analyze_graph(graph)
        tasks: list[AnalysisTask] = []
        for profile in graph.profiles():
            text = self._enrich(
                f"{profile.display_name} {profile.text}".strip(), profile.urls
            )
            tasks.append((profile.profile_id, text, None))
        for resource in graph.resources():
            text = self._enrich(resource.text, resource.urls)
            tasks.append((resource.resource_id, text, resource.language))
        for container in graph.containers():
            text = self._enrich(f"{container.name} {container.text}".strip(), container.urls)
            tasks.append((container.container_id, text, None))
        results = analyze_tasks(
            self._analyzer,
            tasks,
            workers=self._workers,
            chunk_size=self._chunk_size,
            analyzer_factory=self._analyzer_factory,
        )
        return {analyzed.doc_id: analyzed for analyzed in results}
