"""Platform extraction substrate (paper Sec. 2.3, first paragraph).

The paper collected resources from Facebook, Twitter, and LinkedIn
through their public APIs, using CrowdSearcher-issued auth tokens and
honouring user privacy settings. We do not have the live platforms, so
this package provides structurally faithful simulations:

* :mod:`repro.extraction.api` — per-platform API clients over a
  server-side :class:`PlatformStore`, with auth tokens, privacy
  enforcement, pagination, and rate limiting;
* :mod:`repro.extraction.url_content` — a synthetic web plus an
  Alchemy-style main-text extractor for linked pages;
* :mod:`repro.extraction.crawler` — the Resource Extraction module that
  walks the APIs and builds a :class:`repro.socialgraph.SocialGraph`,
  and the corpus analyzer that turns every collected node into an
  index-ready analysis.
"""

from repro.extraction.api import (
    AccountRecord,
    AuthToken,
    ContainerRecord,
    PlatformClient,
    PlatformStore,
    RateLimitExceeded,
    PermissionDenied,
)
from repro.extraction.crawler import (
    CorpusAnalyzer,
    ParallelCorpusAnalyzer,
    ResourceExtractor,
)
from repro.extraction.privacy import PrivacyPolicy
from repro.extraction.url_content import SyntheticWeb, UrlContentExtractor, WebPage

__all__ = [
    "AccountRecord",
    "AuthToken",
    "ContainerRecord",
    "CorpusAnalyzer",
    "ParallelCorpusAnalyzer",
    "PermissionDenied",
    "PlatformClient",
    "PlatformStore",
    "PrivacyPolicy",
    "RateLimitExceeded",
    "ResourceExtractor",
    "SyntheticWeb",
    "UrlContentExtractor",
    "WebPage",
]
