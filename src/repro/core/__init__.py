"""Expert finding core (paper Sec. 2.1, 2.4, 2.4.1).

The public API: build an :class:`ExpertFinder` over a social graph and a
set of candidate experts, then ask it expertise needs and get back a
ranked list of experts.

>>> from repro import ExpertFinder, FinderConfig  # doctest: +SKIP
>>> finder = ExpertFinder.build(graph, candidates, corpus)  # doctest: +SKIP
>>> ranking = finder.find_experts("best freestyle swimmer")  # doctest: +SKIP
"""

from repro.core.build_stats import BuildStats
from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.core.need import ExpertiseNeed
from repro.core.need_analysis import DomainScore, NeedAnalyzer
from repro.core.platform_choice import ChannelRecommendation, PlatformChooser
from repro.core.ranking import ExpertRanker, ExpertScore
from repro.core.scoring import apply_window, distance_weight
from repro.core.service import ExpertSearchService, ServiceStats

__all__ = [
    "BuildStats",
    "ChannelRecommendation",
    "DomainScore",
    "ExpertFinder",
    "ExpertRanker",
    "ExpertScore",
    "ExpertSearchService",
    "ExpertiseNeed",
    "FinderConfig",
    "NeedAnalyzer",
    "PlatformChooser",
    "ServiceStats",
    "apply_window",
    "distance_weight",
]
