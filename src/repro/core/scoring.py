"""Scoring functions of the expert ranking stage (paper Sec. 2.4.1).

* :func:`distance_weight` — the resource weight ``wr(rᵢ, ex)``, linearly
  decreasing with the graph distance of the resource from the candidate
  over a fixed interval (the paper uses [0.5, 1]);
* :func:`distance_weight_table` — ``wr`` precomputed for every
  admissible distance, so per-pair aggregation loops pay one dict
  lookup instead of a recomputation;
* :func:`apply_window` — the window-size cut on the retrieved resources;
* :func:`aggregate_expert_scores` — Eq. 3 itself:
  ``score(q, ex) = Σ score(q, rᵢ) · wr(rᵢ, ex)``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.index.vsm import ResourceMatch


def distance_weight(
    distance: int,
    max_distance: int,
    interval: tuple[float, float] = (0.5, 1.0),
) -> float:
    """``wr`` for a resource at *distance*, linear over *interval*.

    Distance 0 gets the high end, ``max_distance`` the low end. With the
    paper's setting (interval [0.5, 1], max distance 2): d0 → 1.0,
    d1 → 0.75, d2 → 0.5. When only one distance level is in play the
    weight is the high end (no decay to distribute).

    >>> [distance_weight(d, 2) for d in (0, 1, 2)]
    [1.0, 0.75, 0.5]
    """
    if distance < 0 or distance > max_distance:
        raise ValueError(f"distance {distance} outside 0..{max_distance}")
    low, high = interval
    if max_distance == 0:
        return high
    return high - (high - low) * (distance / max_distance)


def distance_weight_table(
    max_distance: int,
    interval: tuple[float, float] = (0.5, 1.0),
) -> dict[int, float]:
    """``wr`` for every admissible distance, keyed 0..*max_distance*.

    The table values are exactly :func:`distance_weight`'s, so callers
    that fold many (resource, supporter) pairs can replace the per-pair
    recomputation with one lookup without changing a single float.

    >>> distance_weight_table(2)
    {0: 1.0, 1: 0.75, 2: 0.5}
    """
    return {
        d: distance_weight(d, max_distance, interval)
        for d in range(max_distance + 1)
    }


def window_size(window: int | float | None, total_matches: int) -> int:
    """Resolve the window parameter to an absolute resource count.

    An ``int`` is an absolute count, a ``float`` in (0, 1] a fraction of
    the matches, ``None`` disables the window (mirroring
    :class:`~repro.core.config.FinderConfig`). Anything else —
    fractions outside (0, 1], non-positive counts, bools — is rejected
    rather than silently reinterpreted (``window=2.0`` used to mean
    "all", ``window=True`` used to mean 1).

    >>> window_size(100, 5000)
    100
    >>> window_size(0.1, 5000)
    500
    >>> window_size(None, 5000)
    5000
    """
    if total_matches < 0:
        raise ValueError("total_matches must be non-negative")
    if window is None:
        return total_matches
    if isinstance(window, bool):
        raise ValueError("window must be a number or None, not a bool")
    if isinstance(window, float):
        if not 0.0 < window <= 1.0:
            raise ValueError(f"fractional window must be in (0, 1], got {window}")
        return min(total_matches, max(1, math.ceil(window * total_matches)))
    if window <= 0:
        raise ValueError(f"integer window must be positive, got {window}")
    return min(total_matches, window)


def apply_window(
    matches: Sequence[ResourceMatch], window: int | float | None
) -> Sequence[ResourceMatch]:
    """Keep the top-*window* matches (input must already be sorted by
    decreasing score, as :meth:`VectorSpaceRetriever.retrieve` returns)."""
    return matches[: window_size(window, len(matches))]


def aggregate_expert_scores(
    matches: Sequence[ResourceMatch],
    evidence_of: Mapping[str, Sequence[tuple[str, int]]],
    *,
    max_distance: int,
    weight_interval: tuple[float, float] = (0.5, 1.0),
) -> dict[str, float]:
    """Eq. 3: fold resource relevance into per-candidate expertise scores.

    *evidence_of* maps a resource (doc) id to the candidates it is
    evidence for, with the graph distance of the relation; one resource
    may support several candidates (e.g. a post in a group that two
    candidates belong to), each weighted by its own distance.

    No normalization over the number of resources is applied — the paper
    assumes "a direct correlation between the number of resources related
    to a query, and the potential expertise of the user" (Sec. 2.4.1).
    """
    weight_of = distance_weight_table(max_distance, weight_interval)
    scores: dict[str, float] = {}
    for match in matches:
        for candidate_id, distance in evidence_of.get(match.doc_id, ()):
            weight = weight_of.get(distance)
            if weight is None:
                raise ValueError(f"distance {distance} outside 0..{max_distance}")
            scores[candidate_id] = scores.get(candidate_id, 0.0) + match.score * weight
    return scores
