"""Per-stage instrumentation of the cold-build pipeline.

A cold :meth:`ExpertFinder.build` runs three stages — gather the
evidence neighborhoods, analyze the node texts, fill the indexes — and
:class:`BuildStats` records the wall time of each, so the CLI and the
build benchmark can show where the time went and how the parallel
stages scale.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BuildStats:
    """Timings and throughput of one :meth:`ExpertFinder.build` run."""

    #: worker processes used by the analyze and index stages (1 = serial)
    workers: int
    #: unique evidence nodes gathered across all candidates
    nodes: int
    #: nodes whose text was analyzed in this build (not served from a corpus)
    analyzed: int
    #: documents admitted into the indexes (post language cut)
    indexed: int
    #: wall seconds of the shared-frontier gathering stage
    gather_s: float
    #: wall seconds of the text/entity analysis stage
    analyze_s: float
    #: wall seconds of the index-fill (or shard+merge) stage
    index_s: float

    @property
    def total_s(self) -> float:
        """Wall seconds of the three pipeline stages combined."""
        return self.gather_s + self.analyze_s + self.index_s

    @property
    def nodes_per_s(self) -> float:
        """Analysis throughput (analyzed nodes per wall second)."""
        if self.analyze_s <= 0:
            return 0.0
        return self.analyzed / self.analyze_s

    def as_dict(self) -> dict[str, float | int]:
        """Flat machine-readable form (used by ``BENCH_build.json``)."""
        return {
            "workers": self.workers,
            "nodes": self.nodes,
            "analyzed": self.analyzed,
            "indexed": self.indexed,
            "gather_s": self.gather_s,
            "analyze_s": self.analyze_s,
            "index_s": self.index_s,
            "total_s": self.total_s,
            "nodes_per_s": self.nodes_per_s,
        }

    def render(self) -> str:
        """One-line human-readable summary (used by the CLI)."""
        return (
            f"gather {self.gather_s:.2f}s · analyze {self.analyze_s:.2f}s "
            f"({self.analyzed} nodes, {self.nodes_per_s:.0f}/s) · "
            f"index {self.index_s:.2f}s · workers={self.workers}"
        )
