"""Expertise-need analysis (the "Expertise Need Analysis" box of paper
Fig. 1).

An expertise need "refers to at least one domain of expertise" (Sec.
2.1). The system mostly treats the need as text, but applications need
the domain itself — the per-domain evaluation (Table 4), domain-aware
routing, and the paper's future-work call for "domain-specific
solutions for location related expertise needs" all start from knowing
which domain a need belongs to.

``NeedAnalyzer`` classifies a need by combining two votes:

* **entity vote** — each entity recognized in the need casts its KB
  domain, weighted by its disambiguation confidence;
* **vocabulary vote** — stemmed need terms matched against the stemmed
  per-domain vocabularies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.need import ExpertiseNeed
from repro.entity.annotator import EntityAnnotator
from repro.textproc.pipeline import TextPipeline
from repro.synthetic.vocab import DOMAIN_WORDS, DOMAINS


@dataclass(frozen=True)
class DomainScore:
    """One domain's affinity to a need."""

    domain: str
    score: float
    entity_votes: float
    term_votes: int


class NeedAnalyzer:
    """Classify expertise needs into the seven domains."""

    def __init__(
        self,
        pipeline: TextPipeline,
        annotator: EntityAnnotator,
        *,
        entity_weight: float = 0.6,
    ):
        if not 0.0 <= entity_weight <= 1.0:
            raise ValueError("entity_weight must be in [0, 1]")
        self._pipeline = pipeline
        self._annotator = annotator
        self._entity_weight = entity_weight
        # stem the domain vocabularies once with the same stemmer the
        # pipeline applies to the need text
        self._domain_stems: dict[str, frozenset[str]] = {
            domain: frozenset(
                self._pipeline.analyze(" ".join(words), language="en").terms
            )
            for domain, words in DOMAIN_WORDS.items()
        }

    def scores(self, need: ExpertiseNeed | str) -> list[DomainScore]:
        """All domains ranked by affinity (best first)."""
        text = need.text if isinstance(need, ExpertiseNeed) else need
        analyzed = self._pipeline.analyze(text, language="en")
        annotations = self._annotator.annotate_tokens(analyzed.tokens)
        kb = self._annotator.knowledge_base

        entity_votes: dict[str, float] = {d: 0.0 for d in DOMAINS}
        for annotation in annotations:
            entity = kb.entity(annotation.entity_uri)
            if entity.domain in entity_votes:
                entity_votes[entity.domain] += annotation.d_score
        total_entity = sum(entity_votes.values())

        term_votes: dict[str, int] = {
            domain: sum(1 for t in analyzed.terms if t in stems)
            for domain, stems in self._domain_stems.items()
        }
        total_terms = sum(term_votes.values())

        scores = []
        for domain in DOMAINS:
            entity_part = entity_votes[domain] / total_entity if total_entity else 0.0
            term_part = term_votes[domain] / total_terms if total_terms else 0.0
            combined = (
                self._entity_weight * entity_part
                + (1 - self._entity_weight) * term_part
            )
            scores.append(
                DomainScore(
                    domain=domain,
                    score=combined,
                    entity_votes=entity_votes[domain],
                    term_votes=term_votes[domain],
                )
            )
        scores.sort(key=lambda s: (-s.score, s.domain))
        return scores

    def classify(self, need: ExpertiseNeed | str) -> str | None:
        """The most likely domain, or None when the need carries no
        domain signal at all."""
        best = self.scores(need)[0]
        return best.domain if best.score > 0.0 else None
