"""Choosing the contact platform (paper Sec. 2.1).

The problem statement asks two questions: *who* are the most suited
candidates, "And which is the best social platform to contact them?".
``PlatformChooser`` answers the second: given one finder per platform,
it measures how much of a candidate's matching expertise evidence lives
on each platform and recommends the channel — per candidate, and
aggregated per need (the network a whole question should be routed
through, the Sec.-3.5/3.6 view).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.expert_finder import ExpertFinder
from repro.core.need import ExpertiseNeed
from repro.socialgraph.metamodel import Platform


@dataclass(frozen=True)
class ChannelRecommendation:
    """Where to reach one candidate for one need."""

    candidate_id: str
    #: best platform, or None when no platform carries matching evidence
    platform: Platform | None
    #: platform → that platform's Eq.-3 score for the candidate
    scores: dict[Platform, float]

    @property
    def confidence(self) -> float:
        """Share of the candidate's total cross-platform score carried
        by the recommended platform, in [0, 1]."""
        total = sum(self.scores.values())
        if self.platform is None or total == 0.0:
            return 0.0
        return self.scores[self.platform] / total


class PlatformChooser:
    """Recommend contact platforms from per-platform finders."""

    def __init__(self, finders: Mapping[Platform, ExpertFinder]):
        missing = [p for p in Platform if p not in finders]
        if missing:
            raise ValueError(f"finders missing for platforms: {missing}")
        self._finders = dict(finders)

    def recommend(
        self, need: ExpertiseNeed | str, candidate_id: str
    ) -> ChannelRecommendation:
        """The best platform to contact *candidate_id* about *need*."""
        scores: dict[Platform, float] = {}
        for platform, finder in self._finders.items():
            entry = next(
                (
                    e
                    for e in finder.find_experts(need)
                    if e.candidate_id == candidate_id
                ),
                None,
            )
            scores[platform] = entry.score if entry else 0.0
        best = max(scores, key=lambda p: (scores[p], p.value))
        return ChannelRecommendation(
            candidate_id=candidate_id,
            platform=best if scores[best] > 0.0 else None,
            scores=scores,
        )

    def best_network(self, need: ExpertiseNeed | str, *, top_k: int = 10) -> Platform | None:
        """The network whose own ranking carries the most expertise mass
        for *need* — the platform the whole question is best asked on."""
        totals: dict[Platform, float] = {}
        for platform, finder in self._finders.items():
            ranked = finder.find_experts(need, top_k=top_k)
            totals[platform] = sum(e.score for e in ranked)
        best = max(totals, key=lambda p: (totals[p], p.value))
        return best if totals[best] > 0.0 else None
