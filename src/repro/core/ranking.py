"""Expert ranking (paper Sec. 2.4.1): from resource matches to a ranked
expert list."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.config import FinderConfig
from repro.core.scoring import apply_window, distance_weight_table
from repro.index.vsm import ResourceMatch


class ExpertScore:
    """One ranked expert with the expertise score of Eq. 3.

    Hand-written immutable value class rather than a frozen dataclass:
    the query engines build one instance per ranked candidate on every
    uncached query, and the generated frozen ``__init__`` measured ~40%
    slower than this one. Field semantics, equality, hashing, repr, and
    the positive-score invariant are unchanged.
    """

    __slots__ = ("candidate_id", "score", "supporting_resources")
    __match_args__ = ("candidate_id", "score", "supporting_resources")

    candidate_id: str
    score: float
    #: number of windowed relevant resources that supported the candidate
    supporting_resources: int

    def __init__(
        self, candidate_id: str, score: float, supporting_resources: int
    ) -> None:
        if score <= 0.0:
            raise ValueError("ExpertScore.score must be positive (EX keeps score > 0)")
        object.__setattr__(self, "candidate_id", candidate_id)
        object.__setattr__(self, "score", score)
        object.__setattr__(self, "supporting_resources", supporting_resources)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"ExpertScore is immutable (cannot set {name!r})")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"ExpertScore is immutable (cannot delete {name!r})")

    def __eq__(self, other: object) -> bool:
        if other.__class__ is ExpertScore:
            return (
                self.candidate_id == other.candidate_id
                and self.score == other.score
                and self.supporting_resources == other.supporting_resources
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.candidate_id, self.score, self.supporting_resources))

    def __repr__(self) -> str:
        return (
            f"ExpertScore(candidate_id={self.candidate_id!r}, "
            f"score={self.score!r}, "
            f"supporting_resources={self.supporting_resources!r})"
        )

    def __reduce__(
        self,
    ) -> tuple[type["ExpertScore"], tuple[str, float, int]]:
        return (
            ExpertScore,
            (self.candidate_id, self.score, self.supporting_resources),
        )


class ExpertRanker:
    """Apply the window and Eq. 3, producing the ordered expert list EX.

    *evidence_of* maps doc id → ((candidate_id, distance), ...) as built
    by the finder from the Table-1 gathering.
    """

    def __init__(
        self,
        evidence_of: Mapping[str, Sequence[tuple[str, int]]],
        config: FinderConfig,
    ):
        self._evidence_of = evidence_of
        self._config = config

    def rank(self, matches: Sequence[ResourceMatch]) -> list[ExpertScore]:
        """Rank the candidates supported by *matches* (already sorted by
        decreasing relevance). Only candidates with score > 0 appear —
        the paper's EX ⊆ CE with score(q, ce) > 0.

        Eq.-3 aggregation and support counting share one pass over the
        windowed matches, with ``wr`` looked up in a precomputed
        per-distance table — the float summation order (and therefore
        every score) is identical to folding them separately.
        """
        windowed = apply_window(matches, self._config.window)
        max_distance = self._config.max_distance
        weight_of = distance_weight_table(max_distance, self._config.weight_interval)
        scores: dict[str, float] = {}
        support: dict[str, int] = {}
        for match in windowed:
            match_score = match.score
            for candidate_id, distance in self._evidence_of.get(match.doc_id, ()):
                weight = weight_of.get(distance)
                if weight is None:
                    raise ValueError(
                        f"distance {distance} outside 0..{max_distance}"
                    )
                scores[candidate_id] = (
                    scores.get(candidate_id, 0.0) + match_score * weight
                )
                support[candidate_id] = support.get(candidate_id, 0) + 1
        if self._config.normalize:
            scores = {
                cid: score / support[cid] for cid, score in scores.items() if support.get(cid)
            }
        ranked = [
            ExpertScore(
                candidate_id=cid, score=score, supporting_resources=support.get(cid, 0)
            )
            for cid, score in scores.items()
            if score > 0.0
        ]
        ranked.sort(key=lambda e: (-e.score, e.candidate_id))
        return ranked
