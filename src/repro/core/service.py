"""Query serving: a warm :class:`ExpertFinder` behind an LRU cache.

The experiments drive finders in batch; a serving deployment instead
answers a stream of expertise needs, most of them repeats ("who knows
about X" is heavy-tailed). :class:`ExpertSearchService` wraps one
finder with

* an LRU result cache keyed by the *normalized* need text plus the
  *effective* value of every parameter that changes the ranking
  (α, window, top-k) — casing and whitespace variants of one need share
  an entry, and so do a defaulted parameter and the same value passed
  explicitly (``alpha=0.6`` with a 0.6-configured finder is one entry,
  not two);
* write-through streaming: :meth:`observe` forwards to the finder and
  invalidates the cache when the resource was indexed (it changes every
  irf/eirf ratio, so no cached ranking survives it) — non-indexed
  observes cannot change any cached result and leave the cache warm;
* per-query latency counters (count, hit/miss split, p50/p95) for the
  serving benchmarks and operational visibility.

The service is deliberately synchronous and process-local — it is the
unit a sharded/async tier would replicate, not that tier itself. It
*is* safe to call from several threads (the HTTP gateway in
:mod:`repro.serve` drives one service from an executor pool): a single
re-entrant lock serializes every query, observe, and invalidation, so
an observe can never interleave with a query's cache fill and leave a
stale ranking behind. The lock deliberately also covers the finder
compute — the compiled engines reuse per-instance scratch buffers
(flat accumulators, touched lists), so finder evaluation is
single-threaded by design; cross-core scaling comes from sharded
scatter-gather worker processes, not from racing threads through one
engine.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from types import EllipsisType

from repro.core.expert_finder import _UNSET, ExpertFinder
from repro.core.need import ExpertiseNeed
from repro.core.ranking import ExpertScore

#: cache keys collapse a need to this normal form
def normalize_need_text(text: str) -> str:
    """Lower-case and collapse runs of whitespace.

    >>> normalize_need_text("  Best\\tFreestyle  SWIMMER ")
    'best freestyle swimmer'
    """
    return " ".join(text.lower().split())


@dataclass(frozen=True)
class ServiceStats:
    """Operational counters of one :class:`ExpertSearchService`.

    The segment/buffer fields are streaming gauges: observes that could
    not change any cached result keep the cache (``cache_survivals``)
    instead of clearing it (``invalidations``), and a segmented finder
    additionally reports its live segment count, buffered resources, and
    compaction merges (all 0 for monolithic finders).

    The pruning fields mirror the finder's cumulative block-max counters
    (see :class:`~repro.index.blockmax.PruningStats`) — all 0 unless the
    finder serves with the "columnar-pruned" engine. ``fallback_queries``
    counts pruned-mode requests that routed to the exhaustive path
    because their window was fractional or ``None``.
    """

    queries: int
    cache_hits: int
    cache_misses: int
    cache_size: int
    observed: int
    invalidations: int
    p50_latency: float
    p95_latency: float
    cache_survivals: int = 0
    segments: int = 0
    buffered_docs: int = 0
    compactions: int = 0
    pruned_queries: int = 0
    fallback_queries: int = 0
    blocks_scanned: int = 0
    blocks_skipped: int = 0
    #: mean in-flight pipeline depth of scatter-pool batch dispatches
    #: (0.0 until a batch actually routes through the pool; > 1 means
    #: batched queries overlapped inside the workers)
    batch_parallelism: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Cache hits per query — 0.0 before the first request."""
        return self.cache_hits / self.queries if self.queries else 0.0

    @property
    def block_skip_rate(self) -> float:
        """Fraction of candidate blocks the pruned queries never
        scanned — 0.0 before the first pruned query."""
        total = self.blocks_scanned + self.blocks_skipped
        return self.blocks_skipped / total if total else 0.0

    def to_dict(self) -> dict[str, float | int]:
        """The stats as one flat JSON-ready mapping — the single
        serialization the ``/v1/metrics`` gateway endpoint and
        ``repro serve-bench --json`` both emit (so they cannot drift).
        Includes the derived :attr:`hit_rate`/:attr:`block_skip_rate`
        alongside the raw counters."""
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_size": self.cache_size,
            "hit_rate": self.hit_rate,
            "observed": self.observed,
            "invalidations": self.invalidations,
            "cache_survivals": self.cache_survivals,
            "p50_latency_s": self.p50_latency,
            "p95_latency_s": self.p95_latency,
            "segments": self.segments,
            "buffered_docs": self.buffered_docs,
            "compactions": self.compactions,
            "pruned_queries": self.pruned_queries,
            "fallback_queries": self.fallback_queries,
            "blocks_scanned": self.blocks_scanned,
            "blocks_skipped": self.blocks_skipped,
            "block_skip_rate": self.block_skip_rate,
            "batch_parallelism": self.batch_parallelism,
        }


def percentile(sorted_values: Sequence[float], percentile: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample.

    An empty sample has no latencies to report yet, so every percentile
    of it is 0.0 — asking for p95 before the first request must not
    raise. An out-of-range *percentile* is a caller bug and raises even
    on an empty sample."""
    if not 0.0 <= percentile <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {percentile}")
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * percentile // 100))  # ceil
    return sorted_values[int(rank) - 1]


#: compatibility alias (the helper predates its public export)
_percentile = percentile


class ExpertSearchService:
    """Serve expert-search queries from a warm finder with result caching."""

    def __init__(
        self,
        finder: ExpertFinder,
        *,
        cache_size: int = 1024,
        max_latency_samples: int = 8192,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if cache_size < 0:
            raise ValueError(f"cache_size must be non-negative, got {cache_size}")
        if max_latency_samples <= 0:
            raise ValueError(
                f"max_latency_samples must be positive, got {max_latency_samples}"
            )
        self._finder = finder
        # One lock for queries, observes, and invalidations: cache
        # mutation must never interleave with an observe's invalidation,
        # and the compiled engines' scratch buffers admit one evaluating
        # thread at a time (see the module docstring). Re-entrant
        # because observe() invalidates while already holding it.
        self._lock = threading.RLock()
        self._cache: OrderedDict[tuple, tuple[ExpertScore, ...]] = OrderedDict()
        self._cache_size = cache_size
        self._clock = clock
        self._latencies: list[float] = []
        self._max_latency_samples = max_latency_samples
        self._queries = 0
        self._hits = 0
        self._misses = 0
        self._observed = 0
        self._invalidations = 0
        self._cache_survivals = 0
        self._batch_depth_sum = 0.0
        self._batch_dispatches = 0

    @property
    def finder(self) -> ExpertFinder:
        return self._finder

    # -- queries -------------------------------------------------------------------

    def _cache_key(
        self,
        text: str,
        alpha: float | None,
        window: int | float | None | EllipsisType,
        top_k: int | None,
    ) -> tuple:
        """Canonical cache key: normalized text + *effective* parameters.

        Defaulted parameters resolve to the finder's configured values
        before keying, so ``find_experts(need)`` and
        ``find_experts(need, alpha=cfg.alpha, window=cfg.window)`` share
        one entry. The window keeps its type in the key: ``window=1``
        (top-1 resource) and ``window=1.0`` (fraction: all resources)
        hash equal as numbers but rank differently.
        """
        config = self._finder.config
        effective_alpha = config.alpha if alpha is None else alpha
        effective_window = config.window if window is _UNSET else window
        return (
            normalize_need_text(text),
            effective_alpha,
            (effective_window.__class__.__name__, effective_window),
            top_k,
        )

    def find_experts(
        self,
        need: ExpertiseNeed | str,
        *,
        top_k: int | None = None,
        alpha: float | None = None,
        window: int | float | None | EllipsisType = _UNSET,
    ) -> list[ExpertScore]:
        """Answer one expertise need; same contract as
        :meth:`ExpertFinder.find_experts`, served from the cache when an
        equivalent query was already answered."""
        text = need.text if isinstance(need, ExpertiseNeed) else need
        key = self._cache_key(text, alpha, window, top_k)
        started = self._clock()
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits += 1
                result = list(cached)
            else:
                self._misses += 1
                result = self._finder.find_experts(
                    need, top_k=top_k, alpha=alpha, window=window
                )
                if self._cache_size:
                    self._cache[key] = tuple(result)
                    if len(self._cache) > self._cache_size:
                        self._cache.popitem(last=False)
            self._queries += 1
            self._record_latency(self._clock() - started)
        return result

    def find_experts_batch(
        self,
        needs: Sequence[ExpertiseNeed | str],
        *,
        top_k: int | None = None,
        alpha: float | None = None,
        window: int | float | None | EllipsisType = _UNSET,
    ) -> list[list[ExpertScore]]:
        """Answer several needs under one parameter setting, in order.

        Duplicate needs within the batch hit the cache like repeated
        single queries would. On a sharded finder with an active scatter
        pool (and a non-object engine) the cache misses are dispatched
        through the pool in one pipelined pass
        (:meth:`ExpertFinder.find_experts_many`) instead of serially —
        results are identical, and the achieved overlap shows up as
        :attr:`ServiceStats.batch_parallelism`."""
        finder = self._finder
        sharded = finder.sharded_index
        if (
            len(needs) < 2
            or sharded is None
            or sharded.executor is None
            or finder.engine == "object"
        ):
            return [
                self.find_experts(need, top_k=top_k, alpha=alpha, window=window)
                for need in needs
            ]
        started = self._clock()
        with self._lock:
            return self._find_experts_batch_locked(
                needs, started, top_k=top_k, alpha=alpha, window=window
            )

    def _find_experts_batch_locked(
        self,
        needs: Sequence[ExpertiseNeed | str],
        started: float,
        *,
        top_k: int | None,
        alpha: float | None,
        window: int | float | None | EllipsisType,
    ) -> list[list[ExpertScore]]:
        finder = self._finder
        sharded = finder.sharded_index
        assert sharded is not None and sharded.executor is not None
        keys = [
            self._cache_key(
                need.text if isinstance(need, ExpertiseNeed) else need,
                alpha,
                window,
                top_k,
            )
            for need in needs
        ]
        results: list[list[ExpertScore] | None] = [None] * len(needs)
        miss_of: dict[tuple, int] = {}
        miss_needs: list[ExpertiseNeed | str] = []
        for i, (need, key) in enumerate(zip(needs, keys)):
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits += 1
                results[i] = list(cached)
            elif key not in miss_of:
                miss_of[key] = len(miss_needs)
                miss_needs.append(need)
                self._misses += 1
            elif self._cache_size:
                # in the serial loop the first occurrence would have
                # populated the cache before this one was looked up
                self._hits += 1
            else:
                self._misses += 1
        if miss_needs:
            computed = finder.find_experts_many(
                miss_needs, top_k=top_k, alpha=alpha, window=window
            )
            if len(miss_needs) > 1:
                self._batch_depth_sum += sharded.executor.last_batch_depth
                self._batch_dispatches += 1
            if self._cache_size:
                for key, j in miss_of.items():
                    self._cache[key] = tuple(computed[j])
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
            for i, key in enumerate(keys):
                if results[i] is None:
                    results[i] = list(computed[miss_of[key]])
        self._queries += len(needs)
        per_query = (self._clock() - started) / len(needs)
        for _ in needs:
            self._record_latency(per_query)
        return results

    # -- streaming updates --------------------------------------------------------

    def observe(
        self,
        node_id: str,
        text: str,
        supporters: Sequence[tuple[str, int]],
        *,
        language: str | None = None,
    ) -> bool:
        """Forward one new resource to the finder; invalidate the cache
        only when the observe could change a cached ranking.

        An *indexed* resource changes every collection-frequency ratio,
        so no cached ranking stays valid. A non-indexed one (the
        language cut) changes no statistics and can never match a query
        — every cached result would be recomputed identically, so the
        cache survives (counted as a ``cache_survival``)."""
        with self._lock:
            indexed = self._finder.observe(
                node_id, text, supporters, language=language
            )
            self._observed += 1
            if indexed:
                self.invalidate()
            else:
                self._cache_survivals += 1
        return indexed

    def invalidate(self) -> None:
        """Drop every cached result (counted in :attr:`stats`)."""
        with self._lock:
            self._cache.clear()
            self._invalidations += 1

    # -- introspection -------------------------------------------------------------

    @property
    def cached_results(self) -> int:
        with self._lock:
            return len(self._cache)

    def latency_percentile(self, pct: float) -> float:
        """Nearest-rank latency percentile over the recorded samples
        (seconds; 0.0 before the first query)."""
        with self._lock:
            ordered = sorted(self._latencies)
        return percentile(ordered, pct)

    @property
    def stats(self) -> ServiceStats:
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> ServiceStats:
        ordered = sorted(self._latencies)
        index_stats = self._finder.index_stats
        pruning = self._finder.pruning_stats
        return ServiceStats(
            queries=self._queries,
            cache_hits=self._hits,
            cache_misses=self._misses,
            cache_size=len(self._cache),
            observed=self._observed,
            invalidations=self._invalidations,
            p50_latency=percentile(ordered, 50),
            p95_latency=percentile(ordered, 95),
            cache_survivals=self._cache_survivals,
            segments=0 if index_stats is None else index_stats.segments,
            buffered_docs=0 if index_stats is None else index_stats.buffered,
            compactions=0 if index_stats is None else index_stats.compactions,
            pruned_queries=pruning.pruned_queries,
            fallback_queries=pruning.fallback_queries,
            blocks_scanned=pruning.blocks_scanned,
            blocks_skipped=pruning.blocks_skipped,
            batch_parallelism=(
                self._batch_depth_sum / self._batch_dispatches
                if self._batch_dispatches
                else 0.0
            ),
        )

    def _record_latency(self, elapsed: float) -> None:
        # bound the sample buffer by halving it (keeping recent samples)
        # so long-running services don't grow without limit
        if len(self._latencies) >= self._max_latency_samples:
            del self._latencies[: len(self._latencies) // 2]
        self._latencies.append(elapsed)
