"""Configuration of the expert finding method.

Defaults reproduce the paper's final setting: α = 0.6 (Sec. 3.3.2),
window = 100 resources (Sec. 3.3.1), resource distance up to 2, friend
resources excluded (Sec. 3.3.3), and resource weights ``wr`` fixed "in an
interval [0.5, 1], with value linearly decreasing w.r.t. the distance of
the considered resource" (Sec. 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class FinderConfig:
    """Tunable parameters of the expert finding method."""

    #: keyword vs. entity matching balance in Eq. 1 (1.0 = terms only)
    alpha: float = 0.6
    #: number of top relevant resources aggregated by Eq. 3; an ``int`` is
    #: an absolute count, a ``float`` in (0, 1] is a fraction of the
    #: matching resources, ``None`` disables the window
    window: int | float | None = 100
    #: maximum graph distance of the resources considered (paper Table 1)
    max_distance: int = 2
    #: wr weight at distance 0 and at ``max_distance``
    weight_interval: tuple[float, float] = (0.5, 1.0)
    #: traverse friendship (bidirectional) edges like follows edges
    include_friends: bool = False
    #: exponent applied to irf/eirf in Eq. 1 (the paper squares them)
    idf_exponent: float = 2.0
    #: normalize Eq. 3 by the number of supporting resources. The paper
    #: deliberately does NOT do this ("we assume a direct correlation
    #: between the number of resources ... and the potential expertise",
    #: Sec. 2.4.1); the flag exists for the ablation benchmark.
    normalize: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if not 0 <= self.max_distance <= 2:
            raise ValueError(f"max_distance must be in 0..2, got {self.max_distance}")
        low, high = self.weight_interval
        if not 0.0 <= low <= high:
            raise ValueError(f"invalid weight interval {self.weight_interval}")
        if isinstance(self.window, bool):
            raise ValueError("window must be a number or None, not a bool")
        if isinstance(self.window, int) and self.window is not None and self.window <= 0:
            raise ValueError(f"integer window must be positive, got {self.window}")
        if isinstance(self.window, float) and not 0.0 < self.window <= 1.0:
            raise ValueError(f"fractional window must be in (0, 1], got {self.window}")
        if self.idf_exponent <= 0:
            raise ValueError(f"idf_exponent must be positive, got {self.idf_exponent}")

    def with_(self, **changes: Any) -> "FinderConfig":
        """A copy of this config with *changes* applied (validated)."""
        return replace(self, **changes)


#: the paper's final parameter setting
PAPER_CONFIG = FinderConfig()
