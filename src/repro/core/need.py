"""Expertise needs (paper Sec. 2.1).

An expertise need is "an information need that relates with specific
skills or knowledge", stated here as a natural-language question, and
referring to at least one domain of expertise.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExpertiseNeed:
    """One expertise need (query)."""

    need_id: str
    text: str
    domain: str

    def __post_init__(self) -> None:
        if not self.need_id:
            raise ValueError("ExpertiseNeed.need_id must be non-empty")
        if not self.text.strip():
            raise ValueError("ExpertiseNeed.text must be non-empty")
        if not self.domain:
            raise ValueError("ExpertiseNeed.domain must be non-empty")
