"""The public expert-finding facade (paper Fig. 1).

``ExpertFinder.build`` wires the whole system together for one
configuration: gather each candidate's evidence up to the configured
distance (Table 1), index the evidence (terms + entities), and expose
``find_experts`` which matches an expertise need against the indexes
(Eq. 1–2) and ranks candidates (Eq. 3).

Because the experiments sweep configurations over one dataset, the
expensive text/entity analysis can be done once (see
:class:`repro.extraction.crawler.CorpusAnalyzer`) and passed in as
*corpus*; the finder then only selects and indexes the evidence reachable
under its configuration.
"""

from __future__ import annotations

import pathlib
import time
from collections.abc import Callable, Iterable, Mapping, Sequence
from types import EllipsisType, MappingProxyType
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.index.columnar import ColumnarQueryEngine
    from repro.index.segments import SegmentedIndex, SegmentStats
    from repro.index.sharded import ShardedIndex, ShardedQueryExecutor

from repro.core.build_stats import BuildStats
from repro.core.config import FinderConfig
from repro.core.need import ExpertiseNeed
from repro.core.ranking import ExpertRanker, ExpertScore
from repro.index.blockmax import PruningStats
from repro.index.analyzer import AnalyzedResource, ResourceAnalyzer
from repro.index.entity_index import EntityIndex
from repro.index.inverted import InvertedIndex
from repro.index.parallel import DEFAULT_CHUNK_SIZE, AnalysisTask, analyze_tasks, build_indexes
from repro.index.statistics import CollectionStatistics
from repro.index.vsm import ResourceMatch, VectorSpaceRetriever
from repro.socialgraph.distance import ResourceGatherer, node_text, node_urls
from repro.socialgraph.graph import SocialGraph

#: languages admitted into the index: English resources (paper Sec. 3.1)
#: plus texts too short for identification (profile fragments)
_INDEXABLE_LANGUAGES = frozenset({"en", "und"})

#: sentinel for "use the configured window" in rank-time overrides
#: (``None`` already means "no window", so it cannot double as unset)
_UNSET: EllipsisType = ...

#: query-engine selectors: "columnar" serves from the compiled
#: :class:`~repro.index.columnar.ColumnarQueryEngine` (or the segmented
#: index), "columnar-pruned" adds block-max dynamic pruning on the same
#: path (exact for absolute windows, automatic exhaustive fallback
#: otherwise), "object" is the reference retriever/ranker path; all
#: rank byte-identically
_ENGINES = ("columnar", "columnar-pruned", "object")

#: index layouts: "monolithic" keeps one retriever/engine over the whole
#: collection (observes invalidate the compiled engine); "segmented"
#: serves from a :class:`~repro.index.segments.SegmentedIndex` (observes
#: touch only its write buffer)
_INDEX_MODES = ("monolithic", "segmented")


def _check_layout(index_mode: str, shards: int | None) -> None:
    """Validate the (index_mode, shards) layout selection of a build."""
    if index_mode not in _INDEX_MODES:
        raise ValueError(
            f"index_mode must be one of {_INDEX_MODES}, got {index_mode!r} "
            "(candidate sharding is selected with shards=K, not index_mode)"
        )
    if shards is not None:
        if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
            raise ValueError(f"shards must be a positive int, got {shards!r}")
        if index_mode != "monolithic":
            raise ValueError(
                "shards=K builds its own per-shard segmented indexes and "
                f"cannot combine with index_mode={index_mode!r}"
            )


class ExpertFinder:
    """Find experts for expertise needs within a candidate population."""

    def __init__(
        self,
        analyzer: ResourceAnalyzer,
        retriever: VectorSpaceRetriever | None,
        evidence_of: Mapping[str, Sequence[tuple[str, int]]],
        config: FinderConfig,
        *,
        evidence_counts: Mapping[str, int],
        indexed_count: int,
        engine: str = "columnar",
        segmented: "SegmentedIndex | None" = None,
        sharded: "ShardedIndex | None" = None,
        retriever_factory: Callable[[], VectorSpaceRetriever] | None = None,
        block_span: int | None = None,
    ):
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        if block_span is not None and block_span <= 0:
            raise ValueError(f"block_span must be positive, got {block_span}")
        sources = sum(
            source is not None
            for source in (retriever, segmented, sharded, retriever_factory)
        )
        if sources != 1:
            raise ValueError(
                "exactly one of retriever (monolithic), segmented, sharded, "
                "or retriever_factory (lazy monolithic) must be given"
            )
        self._analyzer = analyzer
        self._retriever = retriever
        self._retriever_factory = retriever_factory
        self._segmented = segmented
        self._sharded = sharded
        self._evidence_of = evidence_of
        self._ranker = ExpertRanker(evidence_of, config)
        self._config = config
        self._evidence_counts = dict(evidence_counts)
        self._indexed_count = indexed_count
        self._build_stats: BuildStats | None = None
        self._engine_kind = engine
        self._engine: "ColumnarQueryEngine | None" = None
        #: doc-index span per pruning block for engines this finder
        #: compiles (None = the blockmax default); a segmented finder's
        #: span lives on its SegmentedIndex instead
        self._block_span = block_span
        #: cumulative block-max counters for this finder's pruned
        #: queries; survives engine recompiles and snapshot reloads of
        #: the same object (monolithic engines and the segmented index
        #: report into it when selected via "columnar-pruned")
        self._pruning_stats = PruningStats()

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        graph: SocialGraph,
        candidates: Mapping[str, Sequence[str]] | Sequence[str],
        analyzer: ResourceAnalyzer,
        config: FinderConfig | None = None,
        *,
        corpus: Mapping[str, AnalyzedResource] | None = None,
        url_content: Callable[[str], str] | None = None,
        workers: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        analyzer_factory: Callable[[], ResourceAnalyzer] | None = None,
        index_mode: str = "monolithic",
        shards: int | None = None,
        seal_threshold: int | None = None,
        compaction: str = "synchronous",
        block_span: int | None = None,
    ) -> "ExpertFinder":
        """Build a finder over *graph*.

        *candidates* is either a sequence of profile ids (each profile is
        its own candidate) or a mapping ``candidate id → profile ids``
        for candidates holding several profiles — the paper's "All"
        configuration aggregates one person's Facebook, Twitter, and
        LinkedIn evidence under a single candidate.

        *corpus* — pre-analyzed node texts keyed by node id; nodes missing
        from it are analyzed on the fly (with *url_content* enrichment if
        provided).

        The build runs as a three-stage pipeline — shared-frontier
        gathering, text/entity analysis, index fill — and *workers*
        shards the analysis and indexing stages across a process pool
        in chunks of *chunk_size* nodes (see :mod:`repro.index.parallel`;
        *analyzer_factory* is only needed on platforms without ``fork``).
        Results are identical for any worker count; per-stage timings
        are exposed as :attr:`build_stats`.

        *index_mode* selects the index layout: ``"monolithic"`` (one
        retriever over the whole collection, the default) or
        ``"segmented"`` (the built indexes become the base segment of a
        :class:`~repro.index.segments.SegmentedIndex`; streamed observes
        then touch only its write buffer, which seals every
        *seal_threshold* resources and compacts per *compaction* —
        rankings are byte-identical either way).

        *block_span* sets the doc-index span per block-max pruning block
        for the engines this finder compiles (None = the default in
        :mod:`repro.index.blockmax`); it never changes rankings, only
        how coarsely the "columnar-pruned" engine can skip.

        *shards* partitions the candidates (and their evidence) into K
        :class:`~repro.index.sharded.ShardIndex` groups behind a
        scatter-gather coordinator — rankings stay byte-identical while
        queries can fan out across a worker pool (see
        :meth:`start_scatter_pool`). Sharding builds its own per-shard
        segmented indexes, so it composes with streaming observes but
        not with ``index_mode="segmented"``.
        """
        config = config or FinderConfig()
        _check_layout(index_mode, shards)
        if not candidates:
            raise ValueError("candidates must be non-empty")
        if isinstance(candidates, Mapping):
            seeds = {cid: tuple(pids) for cid, pids in candidates.items()}
        else:
            seeds = {pid: (pid,) for pid in candidates}
        gatherer = ResourceGatherer(graph, include_friends=config.include_friends)

        # stage 1 — gather: one shared-frontier pass over all candidates;
        # each node is kept once per candidate, at its minimal distance
        t0 = time.perf_counter()
        gathered = gatherer.gather_many(seeds, config.max_distance)
        evidence_of: dict[str, list[tuple[str, int]]] = {}
        evidence_counts: dict[str, int] = {}
        for candidate_id, node_distance in gathered.distances.items():
            evidence_counts[candidate_id] = len(node_distance)
            for node_id, distance in node_distance.items():
                evidence_of.setdefault(node_id, []).append((candidate_id, distance))
        gather_s = time.perf_counter() - t0

        # stage 2 — analyze: corpus misses go through the (parallel)
        # text/entity pipeline; result order follows the gathered order
        t0 = time.perf_counter()
        unique_nodes: dict[str, AnalyzedResource | None] = {}
        tasks: list[AnalysisTask] = []
        for node_id, kind in gathered.kinds.items():
            analyzed = corpus.get(node_id) if corpus is not None else None
            if analyzed is None:
                text = node_text(graph, node_id, kind)
                if url_content is not None:
                    for url in node_urls(graph, node_id, kind):
                        text = f"{text} {url_content(url)}"
                tasks.append((node_id, text, None))
            unique_nodes[node_id] = analyzed
        for analyzed in analyze_tasks(
            analyzer,
            tasks,
            workers=workers,
            chunk_size=chunk_size,
            analyzer_factory=analyzer_factory,
        ):
            unique_nodes[analyzed.doc_id] = analyzed
        analyze_s = time.perf_counter() - t0

        # stage 3 — index: fill (or shard and merge) the two indexes
        t0 = time.perf_counter()
        documents = [
            analyzed
            for analyzed in unique_nodes.values()
            if analyzed is not None and analyzed.language in _INDEXABLE_LANGUAGES
        ]
        term_index, entity_index = build_indexes(
            documents, workers=workers, chunk_size=chunk_size
        )
        index_s = time.perf_counter() - t0

        finder = cls._assemble(
            analyzer,
            term_index,
            entity_index,
            evidence_of,
            evidence_counts,
            len(documents),
            config,
            index_mode=index_mode,
            shards=shards,
            seal_threshold=seal_threshold,
            compaction=compaction,
            block_span=block_span,
        )
        finder._build_stats = BuildStats(
            workers=workers,
            nodes=len(unique_nodes),
            analyzed=len(tasks),
            indexed=len(documents),
            gather_s=gather_s,
            analyze_s=analyze_s,
            index_s=index_s,
        )
        return finder

    @classmethod
    def from_stream(
        cls,
        candidates: Sequence[str],
        events: Iterable[tuple[Any, ...]],
        analyzer: ResourceAnalyzer,
        config: FinderConfig | None = None,
        *,
        workers: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        analyzer_factory: Callable[[], ResourceAnalyzer] | None = None,
        index_mode: str = "monolithic",
        shards: int | None = None,
        seal_threshold: int | None = None,
        compaction: str = "synchronous",
        block_span: int | None = None,
    ) -> "ExpertFinder":
        """Build a finder from an *event stream*, never materializing a
        graph: *events* yields ``(node_id, text, supporters)`` or
        ``(node_id, text, supporters, language)`` tuples in stream
        order, where *supporters* lists ``(candidate_id, distance)``
        evidence rows exactly as :meth:`observe` takes them.

        Events are analyzed in chunks of ``chunk_size * workers`` (the
        parallel-analysis pool absorbs each chunk, so peak memory is the
        chunk plus the growing indexes, not the stream), making this the
        entry point for the ``xl`` scale's generator
        (:mod:`repro.synthetic.stream`). The result is identical to
        building from an equivalent materialized graph, and all layout
        options — *index_mode*, *shards* — apply unchanged.
        """
        config = config or FinderConfig()
        _check_layout(index_mode, shards)
        if not candidates:
            raise ValueError("candidates must be non-empty")
        evidence_counts: dict[str, int] = {cid: 0 for cid in candidates}
        if len(evidence_counts) != len(candidates):
            raise ValueError("duplicate candidate ids")
        evidence_of: dict[str, list[tuple[str, int]]] = {}
        term_index = InvertedIndex()
        entity_index = EntityIndex()
        indexed_count = 0
        seen: set[str] = set()
        batch: list[AnalysisTask] = []
        batch_rows: list[tuple[tuple[str, int], ...]] = []
        flush_at = max(chunk_size, chunk_size * workers)
        t0 = time.perf_counter()
        analyze_s = 0.0

        def flush() -> None:
            nonlocal indexed_count, analyze_s
            ta = time.perf_counter()
            analyzed_batch = analyze_tasks(
                analyzer,
                batch,
                workers=workers,
                chunk_size=chunk_size,
                analyzer_factory=analyzer_factory,
            )
            analyze_s += time.perf_counter() - ta
            for analyzed, rows in zip(analyzed_batch, batch_rows):
                evidence_of[analyzed.doc_id] = list(rows)
                for candidate_id, _distance in rows:
                    evidence_counts[candidate_id] += 1
                if analyzed.language in _INDEXABLE_LANGUAGES:
                    term_index.add_document(analyzed.doc_id, analyzed.term_counts)
                    entity_index.add_document(
                        analyzed.doc_id, analyzed.entity_counts
                    )
                    indexed_count += 1
            del batch[:]
            del batch_rows[:]

        for event in events:
            node_id, text, supporters, *rest = event
            language = rest[0] if rest else None
            rows = tuple((cid, distance) for cid, distance in supporters)
            if not rows:
                raise ValueError(
                    f"resource {node_id!r} must support at least one candidate"
                )
            for candidate_id, distance in rows:
                if candidate_id not in evidence_counts:
                    raise KeyError(f"unknown candidate {candidate_id!r}")
                if not 0 <= distance <= config.max_distance:
                    raise ValueError(
                        f"distance {distance} outside 0..{config.max_distance}"
                    )
            if node_id in seen:
                raise ValueError(f"resource {node_id!r} already streamed")
            seen.add(node_id)
            batch.append((node_id, text, language))
            batch_rows.append(rows)
            if len(batch) >= flush_at:
                flush()
        flush()
        stream_s = time.perf_counter() - t0

        finder = cls._assemble(
            analyzer,
            term_index,
            entity_index,
            evidence_of,
            evidence_counts,
            indexed_count,
            config,
            index_mode=index_mode,
            shards=shards,
            seal_threshold=seal_threshold,
            compaction=compaction,
            block_span=block_span,
        )
        finder._build_stats = BuildStats(
            workers=workers,
            nodes=len(seen),
            analyzed=len(seen),
            indexed=indexed_count,
            gather_s=0.0,
            analyze_s=analyze_s,
            index_s=stream_s - analyze_s,
        )
        return finder

    @classmethod
    def _assemble(
        cls,
        analyzer: ResourceAnalyzer,
        term_index: InvertedIndex,
        entity_index: EntityIndex,
        evidence_of: dict[str, list[tuple[str, int]]],
        evidence_counts: dict[str, int],
        indexed_count: int,
        config: FinderConfig,
        *,
        index_mode: str,
        shards: int | None,
        seal_threshold: int | None,
        compaction: str,
        block_span: int | None,
    ) -> "ExpertFinder":
        """Wrap built indexes in the selected layout (the shared tail of
        :meth:`build` and :meth:`from_stream`)."""
        if shards is not None:
            from repro.index.segments import DEFAULT_SEAL_THRESHOLD
            from repro.index.sharded import ShardedIndex

            sharded = ShardedIndex.from_built(
                term_index,
                entity_index,
                evidence_of,
                evidence_counts,
                config,
                shards=shards,
                seal_threshold=(
                    DEFAULT_SEAL_THRESHOLD
                    if seal_threshold is None
                    else seal_threshold
                ),
                compaction=compaction,
                block_span=block_span,
            )
            return cls(
                analyzer,
                None,
                evidence_of,
                config,
                evidence_counts=evidence_counts,
                indexed_count=indexed_count,
                sharded=sharded,
            )
        if index_mode == "segmented":
            from repro.index.segments import DEFAULT_SEAL_THRESHOLD, SegmentedIndex

            segmented = SegmentedIndex.from_built(
                term_index,
                entity_index,
                evidence_of,
                config,
                seal_threshold=(
                    DEFAULT_SEAL_THRESHOLD
                    if seal_threshold is None
                    else seal_threshold
                ),
                compaction=compaction,
                block_span=block_span,
            )
            return cls(
                analyzer,
                None,
                evidence_of,
                config,
                evidence_counts=evidence_counts,
                indexed_count=indexed_count,
                segmented=segmented,
            )
        retriever = VectorSpaceRetriever(
            term_index,
            entity_index,
            CollectionStatistics(term_index, entity_index),
            idf_exponent=config.idf_exponent,
        )
        return cls(
            analyzer,
            retriever,
            evidence_of,
            config,
            evidence_counts=evidence_counts,
            indexed_count=indexed_count,
            block_span=block_span,
        )

    # -- persistence ---------------------------------------------------------------

    def save(
        self, directory: str | pathlib.Path, *, snapshot_format: str = "v3"
    ) -> None:
        """Persist the built indexes and evidence maps as a snapshot
        directory (see :mod:`repro.storage.snapshot`), so later processes
        warm-start with :meth:`load` instead of re-gathering and
        re-analyzing the evidence. ``snapshot_format="jsonl"`` writes the
        line-oriented v2 interchange format instead of the default
        binary v3."""
        from repro.storage.snapshot import save_finder

        save_finder(self, directory, snapshot_format=snapshot_format)

    @classmethod
    def load(
        cls, directory: str | pathlib.Path, analyzer: ResourceAnalyzer
    ) -> "ExpertFinder":
        """Load a finder from a snapshot written by :meth:`save`.

        *analyzer* must be equivalent to the build-time analyzer (it is
        code, not state, and is therefore not persisted)."""
        from repro.storage.snapshot import load_finder

        return load_finder(directory, analyzer)

    # -- queries -------------------------------------------------------------------

    @property
    def config(self) -> FinderConfig:
        return self._config

    @property
    def retriever(self) -> VectorSpaceRetriever:
        """The underlying retriever (read-only use: snapshots, stats).

        Only monolithic finders have one — a segmented finder's
        collection lives in its :attr:`segmented_index`, a sharded one's
        in its :attr:`sharded_index`. A v3-snapshot finder serves
        queries from the mapped columnar engine and builds the
        posting-object retriever here on first demand."""
        if self._segmented is not None:
            raise RuntimeError(
                "a segmented finder has no monolithic retriever; "
                "use segmented_index"
            )
        if self._sharded is not None:
            raise RuntimeError(
                "a sharded finder has no monolithic retriever; "
                "use sharded_index"
            )
        return self._ensure_retriever()

    def _ensure_retriever(self) -> VectorSpaceRetriever:
        if self._retriever is None:
            factory = self._retriever_factory
            if factory is None:
                raise RuntimeError(
                    f"a {self.index_mode} finder has no monolithic retriever"
                )
            self._retriever_factory = None
            self._retriever = factory()
        return self._retriever

    @property
    def index_mode(self) -> str:
        """The index layout: "monolithic", "segmented", or "sharded"."""
        if self._segmented is not None:
            return "segmented"
        if self._sharded is not None:
            return "sharded"
        return "monolithic"

    @property
    def segmented_index(self) -> "SegmentedIndex | None":
        """The segmented index (None for other layouts)."""
        return self._segmented

    @property
    def sharded_index(self) -> "ShardedIndex | None":
        """The sharded scatter-gather index (None for other layouts)."""
        return self._sharded

    @property
    def index_stats(self) -> "SegmentStats | None":
        """Segment/buffer gauges of the segmented index; None for
        monolithic finders."""
        return None if self._segmented is None else self._segmented.stats

    @property
    def evidence_of(self) -> Mapping[str, Sequence[tuple[str, int]]]:
        """Read-only view of the resource → supporters relation."""
        return MappingProxyType(self._evidence_of)

    @property
    def evidence_counts(self) -> Mapping[str, int]:
        """Read-only view of candidate → gathered-evidence counts."""
        return MappingProxyType(self._evidence_counts)

    @property
    def indexed_resources(self) -> int:
        """Number of evidence items admitted into the indexes."""
        return self._indexed_count

    @property
    def build_stats(self) -> BuildStats | None:
        """Per-stage timings of the :meth:`build` that produced this
        finder; ``None`` for snapshot-loaded finders (nothing was built)."""
        return self._build_stats

    def evidence_count(self, candidate_id: str) -> int:
        """Evidence items gathered for one candidate (pre language cut)."""
        return self._evidence_counts.get(candidate_id, 0)

    # -- query engine -------------------------------------------------------------

    @property
    def engine(self) -> str:
        """Which path :meth:`find_experts` takes: "columnar" (compiled
        fast path, the default), "columnar-pruned" (the same path with
        block-max dynamic pruning — exact for absolute-count windows,
        automatic exhaustive fallback otherwise), or "object" (the
        reference retriever/ranker path). Rankings are byte-identical
        on every engine; the object path additionally powers
        :meth:`match_resources` and :meth:`rank_matches`, which expose
        per-resource breakdowns."""
        return self._engine_kind

    @property
    def pruning_stats(self) -> PruningStats:
        """Cumulative block-max counters (pruned/fallback queries,
        blocks scanned/skipped) across this finder's "columnar-pruned"
        queries — all zero until that engine is selected."""
        return self._pruning_stats

    @engine.setter
    def engine(self, kind: str) -> None:
        if kind not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {kind!r}")
        self._engine_kind = kind

    def query_engine(self) -> "ColumnarQueryEngine":
        """The compiled columnar engine for the current collection,
        compiling it on first use. An indexing :meth:`observe`
        invalidates the compiled form (the collection statistics shift),
        so the next query pays one recompile.

        Monolithic finders only — a segmented finder never compiles a
        whole-collection engine (that is the point of the segments), and
        a sharded finder's collection is split across its shards."""
        if self._segmented is not None:
            raise RuntimeError(
                "a segmented finder has no whole-collection engine; "
                "queries evaluate across its segments"
            )
        if self._sharded is not None:
            raise RuntimeError(
                "a sharded finder has no whole-collection engine; "
                "queries scatter across its shards"
            )
        if self._engine is None:
            from repro.index.columnar import ColumnarQueryEngine

            self._engine = ColumnarQueryEngine.compile(
                self._ensure_retriever(),
                self._evidence_of,
                self._config,
                block_span=self._block_span,
            )
        return self._engine

    # -- streaming updates --------------------------------------------------------

    def observe(
        self,
        node_id: str,
        text: str,
        supporters: Sequence[tuple[str, int]],
        *,
        language: str | None = None,
    ) -> bool:
        """Ingest one new resource without rebuilding the finder.

        *supporters* lists (candidate id, distance) pairs the resource is
        evidence for — e.g. its author at distance 1 and fellow group
        members at distance 2. Returns True when the resource entered
        the index (False for non-English content, which is observed as
        evidence but not indexed, mirroring the build-time language cut).

        On a monolithic finder an indexing observe invalidates the
        compiled columnar engine (the collection statistics shift); on a
        segmented finder it lands in the write buffer and no compiled
        state is lost. Either way subsequent queries see updated
        irf/eirf values immediately. A non-indexing observe changes no
        statistics and cannot match any query, so compiled state always
        survives it.
        """
        if not supporters:
            raise ValueError("a resource must support at least one candidate")
        for candidate_id, distance in supporters:
            if not 0 <= distance <= self._config.max_distance:
                raise ValueError(
                    f"distance {distance} outside 0..{self._config.max_distance}"
                )
            if candidate_id not in self._evidence_counts:
                raise KeyError(f"unknown candidate {candidate_id!r}")
        if node_id in self._evidence_of:
            raise ValueError(f"resource {node_id!r} already observed")

        analyzed = self._analyzer.analyze(node_id, text, language=language)
        indexed = analyzed.language in _INDEXABLE_LANGUAGES
        if self._segmented is not None:
            self._segmented.add(analyzed, supporters, index=indexed)
        elif self._sharded is not None:
            # routes restricted rows to the owning shards' write buffers
            # and broadcasts to pool workers, keeping them in lockstep
            self._sharded.add(analyzed, supporters, index=indexed)
        elif indexed:
            # the compiled engine snapshots the collection and the
            # evidence relation — drop it so the next query recompiles
            # (hydrating the retriever first for v3-loaded finders)
            retriever = self._ensure_retriever()
            self._engine = None
            retriever.add_document(analyzed)
        self._evidence_of[node_id] = list(supporters)
        for candidate_id, _ in supporters:
            self._evidence_counts[candidate_id] += 1
        if indexed:
            self._indexed_count += 1
        return indexed

    def match_resources(
        self,
        need: ExpertiseNeed | str,
        *,
        alpha: float | None = None,
        limit: int | None = None,
    ) -> list[ResourceMatch]:
        """The relevant-resource set RR for a need, best first (Eq. 1).

        *alpha* overrides the configured value for parameter sweeps —
        the indexes do not depend on it, so no rebuild is needed.
        *limit* keeps only the best *limit* matches, selected with the
        retriever's bounded-heap fast path; the prefix is identical to
        the unlimited result's.
        """
        text = need.text if isinstance(need, ExpertiseNeed) else need
        query = self._analyzer.analyze("__query__", text, language="en")
        effective_alpha = self._config.alpha if alpha is None else alpha
        if self._segmented is not None:
            if limit is None:
                return self._segmented.retrieve(query, effective_alpha)
            return self._segmented.retrieve_top_k(query, effective_alpha, limit)
        if self._sharded is not None:
            if limit is None:
                return self._sharded.retrieve(query, effective_alpha)
            return self._sharded.retrieve_top_k(query, effective_alpha, limit)
        retriever = self._ensure_retriever()
        if limit is None:
            return retriever.retrieve(query, effective_alpha)
        return retriever.retrieve_top_k(query, effective_alpha, limit)

    def rank_matches(
        self,
        matches: Sequence[ResourceMatch],
        *,
        window: int | float | None | EllipsisType = _UNSET,
        config: FinderConfig | None = None,
    ) -> list[ExpertScore]:
        """Apply the window and Eq. 3 to an already retrieved match list
        (lets sweeps reuse one retrieval across several window values).

        *config* overrides every rank-time parameter (window, weight
        interval, normalization); it must agree with the build-time
        parameters, because the evidence was gathered under them.
        """
        if config is not None:
            if (
                config.max_distance != self._config.max_distance
                or config.include_friends != self._config.include_friends
            ):
                raise ValueError(
                    "rank-time config must match the finder's build-time "
                    "max_distance and include_friends"
                )
            ranker = ExpertRanker(self._evidence_of, config)
        elif window is _UNSET:
            ranker = self._ranker
        else:
            ranker = ExpertRanker(self._evidence_of, self._config.with_(window=window))
        return ranker.rank(matches)

    def find_experts(
        self,
        need: ExpertiseNeed | str,
        *,
        top_k: int | None = None,
        alpha: float | None = None,
        window: int | float | None | EllipsisType = _UNSET,
    ) -> list[ExpertScore]:
        """Rank the candidate experts for *need* (Eq. 3); the full list EX
        unless *top_k* truncates it. *alpha* and *window* override the
        configured values for parameter sweeps (``window=None`` means "no
        window"; leave it at the default to use the configured window).

        With the default "columnar" :attr:`engine`, evaluation runs on
        the compiled :class:`~repro.index.columnar.ColumnarQueryEngine`
        (flat accumulators, no per-resource objects) — or, in segmented
        :attr:`index_mode`, document-at-a-time across the live segments
        plus the write buffer; the "object" engine is the reference
        retriever/ranker path. All paths produce the same list, bit for
        bit.

        On the object path, when the effective window is an absolute
        resource count, only the top-window matches can contribute to
        Eq. 3, so retrieval takes the bounded-heap fast path; fractional
        and disabled windows depend on the total match count and
        retrieve fully.
        """
        effective_window = self._config.window if window is _UNSET else window
        if self._engine_kind != "object":
            pruned = self._engine_kind == "columnar-pruned"
            text = need.text if isinstance(need, ExpertiseNeed) else need
            query = self._analyzer.analyze("__query__", text, language="en")
            effective_alpha = self._config.alpha if alpha is None else alpha
            if self._segmented is not None:
                return self._segmented.find_experts(
                    query,
                    alpha=effective_alpha,
                    window=effective_window,
                    top_k=top_k,
                    pruned=pruned,
                    stats=self._pruning_stats,
                )
            if self._sharded is not None:
                return self._sharded.find_experts(
                    query,
                    alpha=effective_alpha,
                    window=effective_window,
                    top_k=top_k,
                    pruned=pruned,
                    stats=self._pruning_stats,
                )
            return self.query_engine().find_experts(
                query,
                alpha=effective_alpha,
                window=effective_window,
                top_k=top_k,
                pruned=pruned,
                stats=self._pruning_stats,
            )
        limit = (
            effective_window
            if isinstance(effective_window, int)
            and not isinstance(effective_window, bool)
            else None
        )
        matches = self.match_resources(need, alpha=alpha, limit=limit)
        ranked = self.rank_matches(matches, window=window)
        return ranked if top_k is None else ranked[:top_k]

    def find_experts_many(
        self,
        needs: Sequence[ExpertiseNeed | str],
        *,
        top_k: int | None = None,
        alpha: float | None = None,
        window: int | float | None | EllipsisType = _UNSET,
    ) -> list[list[ExpertScore]]:
        """Batch counterpart of :meth:`find_experts` — identical results
        to a serial loop. On a sharded finder with an active scatter
        pool (and a non-object engine) the batch is pipelined through
        the pool, overlapping this process's analyze/merge with the
        workers' shard scoring; everywhere else it loops."""
        sharded = self._sharded
        if (
            sharded is None
            or sharded.executor is None
            or self._engine_kind == "object"
        ):
            return [
                self.find_experts(need, top_k=top_k, alpha=alpha, window=window)
                for need in needs
            ]
        effective_alpha = self._config.alpha if alpha is None else alpha
        effective_window = self._config.window if window is _UNSET else window
        queries = [
            self._analyzer.analyze(
                "__query__",
                need.text if isinstance(need, ExpertiseNeed) else need,
                language="en",
            )
            for need in needs
        ]
        return sharded.find_experts_many(
            queries,
            alpha=effective_alpha,
            window=effective_window,
            top_k=top_k,
            pruned=self._engine_kind == "columnar-pruned",
            stats=self._pruning_stats,
        )

    # -- the scatter pool ---------------------------------------------------------

    def start_scatter_pool(self) -> "ShardedQueryExecutor":
        """Fork the persistent per-shard worker pool (sharded finders
        only; idempotent). Queries then scatter to the workers instead
        of evaluating shards serially in this process."""
        if self._sharded is None:
            raise RuntimeError("only a sharded finder has a scatter pool")
        return self._sharded.start_executor()

    def close_scatter_pool(self) -> None:
        """Stop the scatter pool if one is running (idempotent)."""
        if self._sharded is not None:
            self._sharded.stop_executor()
