"""Per-client token-bucket rate limiting.

Every client (keyed by the ``x-client-id`` header, falling back to the
peer address) owns one bucket of *burst* tokens refilled continuously
at *rate* tokens/second. A request spends one token (a batch spends one
per need — it does that much work); when the bucket is dry the gateway
answers 429 with a ``Retry-After`` telling the client when one token
will have accrued.

The limiter is only ever touched from the event-loop thread, so it
needs no lock. Bucket state is two floats per client; to stay bounded
under address churn the table evicts the least-recently-used *full*
buckets first (a full bucket carries no information — a fresh client
starts full), then the least-recently-used of the rest.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Callable


class TokenBucketLimiter:
    """A table of per-client token buckets over one shared policy."""

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 4096,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive tokens/second, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must admit at least one request, got {burst}")
        if max_clients < 1:
            raise ValueError(f"max_clients must be positive, got {max_clients}")
        self._rate = float(rate)
        self._burst = float(burst)
        self._clock = clock
        self._max_clients = max_clients
        #: client key → (tokens, last refill time); LRU order
        self._buckets: OrderedDict[str, tuple[float, float]] = OrderedDict()

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def burst(self) -> float:
        return self._burst

    @property
    def clients(self) -> int:
        return len(self._buckets)

    def try_acquire(self, key: str, cost: float = 1.0) -> float:
        """Spend *cost* tokens from *key*'s bucket.

        Returns 0.0 when admitted, otherwise the number of seconds
        until one token will have accrued (the ``Retry-After`` value —
        deliberately one token, not *cost*: a client over its burst
        should retry soon and requeue, not stay silent for minutes).
        """
        if cost <= 0:
            raise ValueError(f"cost must be positive, got {cost}")
        now = self._clock()
        state = self._buckets.get(key)
        if state is None:
            tokens = self._burst
        else:
            tokens, last = state
            tokens = min(self._burst, tokens + (now - last) * self._rate)
        if tokens >= cost:
            self._buckets[key] = (tokens - cost, now)
            self._buckets.move_to_end(key)
            self._evict()
            return 0.0
        self._buckets[key] = (tokens, now)
        self._buckets.move_to_end(key)
        self._evict()
        return max((1.0 - tokens) / self._rate, 1e-9)

    def _evict(self) -> None:
        if len(self._buckets) <= self._max_clients:
            return
        # pass 1: drop LRU clients whose buckets refilled to full —
        # forgetting them loses nothing
        now = self._clock()
        for key in list(self._buckets):
            if len(self._buckets) <= self._max_clients:
                return
            tokens, last = self._buckets[key]
            if min(self._burst, tokens + (now - last) * self._rate) >= self._burst:
                del self._buckets[key]
        # pass 2: still over (every client mid-refill) — drop strict LRU
        while len(self._buckets) > self._max_clients:
            self._buckets.popitem(last=False)
