"""Snapshot generations and graceful hot-reload.

The gateway never mutates a serving finder in place. A *generation* is
one fully loaded and fully compiled :class:`ExpertSearchService`; a
reload builds the next generation in an executor thread (the event loop
keeps serving generation N while the snapshot loads), then swaps one
attribute on the event-loop thread. Requests capture their generation
at dispatch, so in-flight requests drain on the finder they started on
— a torn index is unrepresentable: either a request sees generation N
(whole) or N+1 (whole), never a mix.

The retired generation's scatter pool (sharded finders fork per-shard
worker processes) is closed as soon as its last in-flight request
finishes — from the event-loop thread, so no locking is needed.

The *source* callable owns "fully compiled": it must return a service
whose engine is selected, compiled, and (for sharded finders) whose
worker pool is already forked — :func:`build_service` does exactly
that and is what the CLI, tests, and benchmarks pass.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Callable

from repro.core.expert_finder import ExpertFinder
from repro.core.service import ExpertSearchService


def build_service(
    finder: ExpertFinder,
    *,
    engine: str = "columnar",
    cache_size: int = 1024,
) -> ExpertSearchService:
    """Select *engine*, compile/fork everything queries will need, and
    wrap *finder* into a service — the standard gateway source body.

    Compiling here (not lazily on the first request) is what lets
    :class:`HotReloader` promise readiness means ready: the swap only
    happens after this returns."""
    finder.engine = engine
    if finder.index_mode == "sharded":
        if engine == "object":
            raise ValueError(
                "a sharded finder cannot serve the object engine "
                "(its collection is split across shards)"
            )
        finder.start_scatter_pool()
    elif engine != "object" and finder.index_mode == "monolithic":
        finder.query_engine()
    return ExpertSearchService(finder, cache_size=cache_size)


class Generation:
    """One serving generation with event-loop-side in-flight tracking."""

    __slots__ = ("service", "number", "label", "loaded_at", "_inflight", "_retired")

    def __init__(
        self, service: ExpertSearchService, number: int, label: str | None
    ):
        self.service = service
        self.number = number
        #: the snapshot generation directory this service came from
        #: (None for built-in-process finders)
        self.label = label
        self.loaded_at = time.time()
        self._inflight = 0
        self._retired = False

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def retired(self) -> bool:
        return self._retired

    def acquire(self) -> None:
        self._inflight += 1

    def release(self) -> None:
        self._inflight -= 1
        if self._retired and self._inflight == 0:
            self._close()

    def retire(self) -> None:
        """Stop routing new requests here; close once drained."""
        if self._retired:
            return
        self._retired = True
        if self._inflight == 0:
            self._close()

    def _close(self) -> None:
        self.service.finder.close_scatter_pool()


class HotReloader:
    """Owns the current :class:`Generation` and the swap protocol."""

    def __init__(
        self,
        source: Callable[[], ExpertSearchService],
        *,
        label: Callable[[], str | None] | None = None,
    ):
        self._source = source
        self._label = label
        self._guard = asyncio.Lock()
        self._current: Generation | None = None
        self._numbers = 0
        self.reloads = 0
        self.last_error: str | None = None

    @property
    def ready(self) -> bool:
        return self._current is not None

    @property
    def current(self) -> Generation | None:
        return self._current

    def require_current(self) -> Generation:
        generation = self._current
        if generation is None:
            from repro.serve.router import HttpError

            raise HttpError(
                503, "not_ready", "no snapshot generation is loaded yet"
            )
        return generation

    async def reload(self) -> Generation:
        """Load + compile the next generation off-loop, then swap.

        Serialized: overlapping reload requests queue and each load a
        fresh generation (the last one wins, each drains its
        predecessor). On failure the previous generation keeps serving
        and the error re-raises to the caller."""
        async with self._guard:
            loop = asyncio.get_running_loop()
            try:
                service = await loop.run_in_executor(None, self._source)
                label = self._label() if self._label is not None else None
            except Exception as exc:
                self.last_error = f"{type(exc).__name__}: {exc}"
                raise
            self._numbers += 1
            generation = Generation(service, self._numbers, label)
            old, self._current = self._current, generation
            self.reloads += 1
            self.last_error = None
            if old is not None:
                old.retire()
            return generation

    def shutdown(self) -> None:
        """Retire the current generation (event-loop thread only)."""
        if self._current is not None:
            self._current.retire()
            self._current = None
