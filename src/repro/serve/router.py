"""Request/response model, route table, and JSON validation.

The gateway's surface is small and fixed (no path parameters), so the
router is an exact ``(method, path)`` table. Validation failures raise
:class:`HttpError`, which renders as a structured JSON error body::

    {"error": {"status": 400, "code": "invalid_field",
               "message": "top_k must be a positive integer"}}

so network clients can branch on ``code`` without parsing prose.
"""

from __future__ import annotations

import json
from collections.abc import Awaitable, Callable, Mapping
from dataclasses import dataclass, field
from typing import Any


class HttpError(Exception):
    """An HTTP-visible failure with a structured payload."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after

    def to_response(self) -> "Response":
        headers = {}
        if self.retry_after is not None:
            # ceil to whole seconds; Retry-After is integral per RFC 9110
            headers["Retry-After"] = str(max(1, int(-(-self.retry_after // 1))))
        return Response(
            self.status,
            {
                "error": {
                    "status": self.status,
                    "code": self.code,
                    "message": self.message,
                }
            },
            headers=headers,
        )


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    headers: Mapping[str, str]
    body: bytes
    peer: str

    @property
    def client_key(self) -> str:
        """The rate-limiting identity: the ``x-client-id`` header when
        the client names itself, else the peer address."""
        return self.headers.get("x-client-id", self.peer)


@dataclass
class Response:
    """One response: a JSON payload plus status and extra headers."""

    status: int
    payload: Any
    headers: dict[str, str] = field(default_factory=dict)

    def encode_body(self) -> bytes:
        return (json.dumps(self.payload, sort_keys=True) + "\n").encode()


Handler = Callable[[Request], Awaitable[Response]]


@dataclass(frozen=True)
class Route:
    method: str
    path: str
    handler: Handler
    #: whether the per-client token bucket applies (work endpoints yes;
    #: probes, metrics, and admin no — operators must see a throttled
    #: gateway, not be throttled by it)
    limited: bool


class Router:
    """Exact-match route table with structured 404/405."""

    def __init__(self) -> None:
        self._routes: dict[tuple[str, str], Route] = {}
        self._paths: set[str] = set()

    def add(
        self, method: str, path: str, handler: Handler, *, limited: bool = False
    ) -> None:
        key = (method.upper(), path)
        if key in self._routes:
            raise ValueError(f"duplicate route {method} {path}")
        self._routes[key] = Route(method.upper(), path, handler, limited)
        self._paths.add(path)

    def resolve(self, method: str, path: str) -> Route:
        route = self._routes.get((method.upper(), path))
        if route is not None:
            return route
        if path in self._paths:
            allowed = sorted(
                m for (m, p) in self._routes if p == path
            )
            raise HttpError(
                405,
                "method_not_allowed",
                f"{path} only supports {', '.join(allowed)}",
            )
        raise HttpError(404, "not_found", f"unknown path {path}")

    @property
    def routes(self) -> tuple[Route, ...]:
        return tuple(self._routes.values())


# -- body validation ---------------------------------------------------------------


def parse_json_object(request: Request) -> dict[str, Any]:
    """The request body as a JSON object, or a structured 400."""
    if not request.body:
        raise HttpError(400, "empty_body", "request body must be a JSON object")
    try:
        payload = json.loads(request.body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise HttpError(400, "invalid_json", f"request body is not JSON: {exc}")
    if not isinstance(payload, dict):
        raise HttpError(
            400,
            "invalid_json",
            f"request body must be a JSON object, got {type(payload).__name__}",
        )
    return payload


def reject_unknown_fields(
    payload: Mapping[str, Any], allowed: tuple[str, ...]
) -> None:
    """Unknown fields are client typos — refuse instead of silently
    ignoring (``topk`` must not quietly mean "default top_k")."""
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise HttpError(
            400,
            "unknown_field",
            f"unknown field(s) {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(allowed))}",
        )


def require_str(payload: Mapping[str, Any], name: str) -> str:
    value = payload.get(name)
    if not isinstance(value, str) or not value.strip():
        raise HttpError(
            400, "invalid_field", f"{name} must be a non-empty string"
        )
    return value


def opt_str(payload: Mapping[str, Any], name: str) -> str | None:
    value = payload.get(name)
    if value is None:
        return None
    if not isinstance(value, str):
        raise HttpError(400, "invalid_field", f"{name} must be a string")
    return value


def opt_positive_int(payload: Mapping[str, Any], name: str) -> int | None:
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise HttpError(
            400, "invalid_field", f"{name} must be a positive integer"
        )
    return value


def opt_unit_float(payload: Mapping[str, Any], name: str) -> float | None:
    """An optional float in [0, 1] (alpha-style mixing weights)."""
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise HttpError(400, "invalid_field", f"{name} must be a number")
    if not 0.0 <= value <= 1.0:
        raise HttpError(400, "invalid_field", f"{name} must be in [0, 1]")
    return float(value)


def opt_number(payload: Mapping[str, Any], name: str) -> float | None:
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise HttpError(400, "invalid_field", f"{name} must be a number")
    return float(value)


def require_str_list(payload: Mapping[str, Any], name: str) -> list[str]:
    value = payload.get(name)
    if (
        not isinstance(value, list)
        or not value
        or not all(isinstance(item, str) and item.strip() for item in value)
    ):
        raise HttpError(
            400,
            "invalid_field",
            f"{name} must be a non-empty array of non-empty strings",
        )
    return value
