"""Host a gateway in a background thread.

Tests, ``benchmarks/bench_serve_http.py``, and ``examples/http_client.py``
all need a real listening gateway without giving up the calling thread.
:class:`GatewayHarness` runs an event loop in a daemon thread, starts a
:class:`~repro.serve.server.GatewayServer` on an ephemeral port, and
exposes a small synchronous HTTP client (stdlib ``http.client``) for
driving it — requests issued from any number of caller threads exercise
the same code path as remote clients.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from collections.abc import Callable
from typing import Any

from repro.core.service import ExpertSearchService
from repro.serve.app import GatewayConfig, ServeApp
from repro.serve.server import GatewayServer


class GatewayHarness:
    """A gateway on ``127.0.0.1:<ephemeral>`` in a background thread."""

    def __init__(
        self,
        source: Callable[[], ExpertSearchService],
        *,
        label: Callable[[], str | None] | None = None,
        config: GatewayConfig | None = None,
        reloadable: bool = True,
    ):
        self.app = ServeApp(
            source, label=label, config=config, reloadable=reloadable
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="gateway-harness", daemon=True
        )
        self._server = GatewayServer(self.app, host="127.0.0.1", port=0)
        self._startup: "asyncio.Future[Any] | None" = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self, *, wait_ready: bool = True, timeout: float = 120.0) -> None:
        """Open the socket; optionally block until the first generation
        is loaded and compiled (``wait_ready=False`` leaves the gateway
        answering 503 on ``/readyz`` while the load runs)."""
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self._server.start(), self._loop
        ).result(timeout)
        startup = asyncio.run_coroutine_threadsafe(
            self.app.startup(), self._loop
        )
        self._startup = startup  # type: ignore[assignment]
        if wait_ready:
            startup.result(timeout)

    def wait_ready(self, timeout: float = 120.0) -> None:
        assert self._startup is not None, "start() first"
        self._startup.result(timeout)  # type: ignore[union-attr]

    def stop(self, timeout: float = 30.0) -> None:
        asyncio.run_coroutine_threadsafe(
            self._server.shutdown(), self._loop
        ).result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "GatewayHarness":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- addressing --------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._server.host

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- a small synchronous client ----------------------------------------------

    def connection(self) -> http.client.HTTPConnection:
        """A fresh keep-alive connection (one per caller thread)."""
        return http.client.HTTPConnection(self.host, self.port, timeout=60)

    def request(
        self,
        method: str,
        path: str,
        payload: Any = None,
        *,
        headers: dict[str, str] | None = None,
        conn: http.client.HTTPConnection | None = None,
    ) -> tuple[int, dict[str, str], Any]:
        """One request → ``(status, headers, parsed JSON body)``."""
        owned = conn is None
        connection = self.connection() if conn is None else conn
        try:
            body = (
                None if payload is None else json.dumps(payload).encode()
            )
            connection.request(method, path, body=body, headers=headers or {})
            response = connection.getresponse()
            raw = response.read()
            parsed = json.loads(raw) if raw else None
            return (
                response.status,
                {k.lower(): v for k, v in response.getheaders()},
                parsed,
            )
        finally:
            if owned:
                connection.close()
