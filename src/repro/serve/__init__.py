"""``repro.serve`` — the asyncio HTTP serving gateway.

The first networked front end over :class:`repro.core.ExpertSearchService`:
a dependency-free (stdlib asyncio, hand-rolled HTTP/1.1) gateway that
serves the query, batch, observe, and crowd workloads over a socket,
with per-client token-bucket rate limiting, an operational metrics
endpoint, health/readiness probes, and graceful snapshot hot-reload.

Module map (request path top to bottom):

* :mod:`~repro.serve.server` — the asyncio HTTP/1.1 wire layer:
  connection loop, bounded request parsing, keep-alive, graceful
  shutdown;
* :mod:`~repro.serve.app` — :class:`ServeApp`: dispatch = rate limit →
  route → handler, with metrics around every request;
* :mod:`~repro.serve.router` — request/response model, route table,
  structured JSON error payloads, body validation helpers;
* :mod:`~repro.serve.routes` — the endpoint handlers
  (``/v1/query``, ``/v1/query/batch``, ``/v1/observe``,
  ``/v1/crowd/*``, ``/v1/metrics``, ``/healthz``, ``/readyz``,
  ``/admin/reload``);
* :mod:`~repro.serve.limiter` — the per-client token bucket;
* :mod:`~repro.serve.metrics` — gateway counters and per-route
  latency percentiles;
* :mod:`~repro.serve.reload` — snapshot generations: load + compile a
  new service off the event loop, atomically swap it in, drain the old
  one;
* :mod:`~repro.serve.harness` — run a gateway in a background thread
  (used by the tests, ``bench_serve_http``, and the example client).
"""

from repro.serve.app import GatewayConfig, ServeApp
from repro.serve.harness import GatewayHarness
from repro.serve.limiter import TokenBucketLimiter
from repro.serve.metrics import GatewayMetrics
from repro.serve.reload import Generation, HotReloader
from repro.serve.router import HttpError, Request, Response, Router
from repro.serve.server import GatewayServer, run_gateway

__all__ = [
    "GatewayConfig",
    "GatewayHarness",
    "GatewayMetrics",
    "GatewayServer",
    "Generation",
    "HotReloader",
    "HttpError",
    "Request",
    "Response",
    "Router",
    "ServeApp",
    "TokenBucketLimiter",
    "run_gateway",
]
