"""The asyncio HTTP/1.1 wire layer.

Hand-rolled on ``asyncio.start_server`` — no http.server, no external
framework. The parser is deliberately strict and bounded: request line
+ headers under ``max_header_bytes`` (431 beyond), bodies under
``max_body_bytes`` (413 beyond), ``Content-Length`` only (chunked
requests get 501 — no gateway client needs them), keep-alive per
HTTP/1.1 defaults with an idle timeout. Responses always carry
``Content-Length`` and a JSON body.

Graceful shutdown: stop accepting, let in-flight requests finish (up to
``shutdown_grace`` seconds), then cancel lingering keep-alive readers
and retire the serving generation (closing its scatter pool).
"""

from __future__ import annotations

import asyncio
import signal
import sys
from collections.abc import Callable

from repro.serve.app import ServeApp
from repro.serve.router import HttpError, Request, Response

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Content Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

_MAX_HEADER_COUNT = 100


class GatewayServer:
    """One listening socket serving a :class:`ServeApp`."""

    def __init__(self, app: ServeApp, *, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self._requested_host = host
        self._requested_port = port
        self._server: asyncio.Server | None = None
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self._closing = False
        self.host = host
        self.port = port

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self._requested_host, self._requested_port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight work, close connections."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = (
            asyncio.get_running_loop().time() + self.app.config.shutdown_grace
        )
        while (
            self.app.metrics.in_flight > 0
            and asyncio.get_running_loop().time() < deadline
        ):
            await asyncio.sleep(0.02)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.app.shutdown()

    # -- connection loop ---------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) else str(peername)
        try:
            while not self._closing:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader, peer),
                        timeout=self.app.config.idle_timeout,
                    )
                except (
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                    ConnectionError,
                ):
                    break
                except HttpError as exc:
                    # wire-level violation: answer if possible, then close
                    self.app.metrics.begin()
                    self.app.metrics.end("<malformed>", exc.status, 0.0)
                    await self._write_response(
                        writer, exc.to_response(), keep_alive=False
                    )
                    break
                if request is None:
                    break
                response = await self.app.dispatch(request)
                keep_alive = self._keep_alive(request) and not self._closing
                await self._write_response(writer, response, keep_alive)
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            pass
        except ConnectionError:
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    @staticmethod
    def _keep_alive(request: Request) -> bool:
        return request.headers.get("connection", "keep-alive").lower() != "close"

    async def _read_request(
        self, reader: asyncio.StreamReader, peer: str
    ) -> Request | None:
        """Parse one request off the stream; None on clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        try:
            parts = line.decode("latin-1").strip().split()
        except UnicodeDecodeError:
            raise HttpError(400, "bad_request_line", "undecodable request line")
        if len(parts) != 3:
            raise HttpError(
                400, "bad_request_line", "expected 'METHOD /path HTTP/1.x'"
            )
        method, target, version = parts
        if not version.startswith("HTTP/1."):
            raise HttpError(
                400, "bad_request_line", f"unsupported version {version!r}"
            )
        headers: dict[str, str] = {}
        header_bytes = len(line)
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n"):
                break
            if not raw:
                raise HttpError(
                    400, "bad_header", "connection closed mid-headers"
                )
            header_bytes += len(raw)
            if (
                header_bytes > self.app.config.max_header_bytes
                or len(headers) >= _MAX_HEADER_COUNT
            ):
                raise HttpError(
                    431,
                    "headers_too_large",
                    f"headers exceed {self.app.config.max_header_bytes} bytes",
                )
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep or not name.strip():
                raise HttpError(400, "bad_header", f"malformed header {raw!r}")
            headers[name.strip().lower()] = value.strip()
        if "transfer-encoding" in headers:
            raise HttpError(
                501,
                "chunked_unsupported",
                "chunked request bodies are not supported; send "
                "Content-Length",
            )
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(
                400, "bad_header", f"malformed Content-Length {length_text!r}"
            )
        if length < 0:
            raise HttpError(
                400, "bad_header", "Content-Length must be non-negative"
            )
        if length > self.app.config.max_body_bytes:
            raise HttpError(
                413,
                "body_too_large",
                f"request body is limited to "
                f"{self.app.config.max_body_bytes} bytes, got {length}",
            )
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return Request(
            method=method, path=path, headers=headers, body=body, peer=peer
        )

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter, response: Response, keep_alive: bool
    ) -> None:
        body = response.encode_body()
        reason = _REASONS.get(response.status, "Unknown")
        head_lines = [
            f"HTTP/1.1 {response.status} {reason}",
            "content-type: application/json",
            f"content-length: {len(body)}",
            f"connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in response.headers.items():
            head_lines.append(f"{name}: {value}")
        head = ("\r\n".join(head_lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()


async def run_gateway(
    app: ServeApp,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    install_signals: bool = True,
    echo: Callable[[str], None] = print,
) -> None:
    """Run a gateway until SIGTERM/SIGINT (the CLI entry point).

    The socket opens before the first snapshot generation loads, so
    probes answer immediately: ``/healthz`` 200, ``/readyz`` 503 until
    the load + compile finishes. SIGHUP hot-reloads the snapshot."""
    server = GatewayServer(app, host=host, port=port)
    await server.start()
    echo(
        f"listening on http://{server.host}:{server.port} "
        "(loading snapshot, readyz=503 until done)"
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()

    def _request_stop() -> None:
        stop.set()

    def _request_reload() -> None:
        async def _reload() -> None:
            try:
                generation = await app.trigger_reload()
            except HttpError as exc:
                echo(f"SIGHUP reload failed: {exc.message}")
            else:
                echo(
                    f"SIGHUP reload complete: generation "
                    f"{generation.number} ({generation.label})"
                )

        loop.create_task(_reload())

    if install_signals:
        loop.add_signal_handler(signal.SIGTERM, _request_stop)
        loop.add_signal_handler(signal.SIGINT, _request_stop)
        loop.add_signal_handler(signal.SIGHUP, _request_reload)
    try:
        generation = await app.startup()
        echo(
            f"ready: generation {generation.number}"
            + (
                f" (snapshot {generation.label})"
                if generation.label is not None
                else ""
            )
        )
        await stop.wait()
    except Exception as exc:
        print(f"gateway startup failed: {exc}", file=sys.stderr)
        raise
    finally:
        if install_signals:
            loop.remove_signal_handler(signal.SIGTERM)
            loop.remove_signal_handler(signal.SIGINT)
            loop.remove_signal_handler(signal.SIGHUP)
        await server.shutdown()
        echo("gateway stopped")
