"""The gateway's endpoint handlers.

Every workload the repo can serve, reachable over a socket:

========================  ======================================================
``POST /v1/query``        one expertise need → ranked experts (Eq. 3)
``POST /v1/query/batch``  many needs in one request, routed through
                          ``find_experts_batch`` so sharded finders pipeline
                          the misses through the scatter pool
``POST /v1/observe``      append one streamed resource (segmented finders
                          take the buffer-only write path)
``POST /v1/crowd/route``  question routing over the ranking (Fig.-1 scenario)
``POST /v1/crowd/jury``   jury selection over the ranking (Cao et al.)
``POST /v1/crowd/team``   team formation over several needs (Lappas et al.)
``GET  /v1/metrics``      ServiceStats + gateway counters, one JSON document
``GET  /healthz``         liveness (always 200 while the process runs)
``GET  /readyz``          readiness (503 until the first snapshot generation
                          is fully loaded and compiled)
``POST /admin/reload``    load the snapshot's next generation and swap
========================  ======================================================

Handlers run finder/crowd compute in the event loop's executor so the
loop keeps accepting connections; each request captures its generation
first, which is what lets a concurrent reload drain instead of tear.
"""

from __future__ import annotations

import asyncio
import functools
import json
from collections.abc import Callable, Mapping
from types import EllipsisType
from typing import TYPE_CHECKING, Any, TypeVar

from repro.core.expert_finder import _UNSET
from repro.core.ranking import ExpertScore
from repro.crowd.jury import JurorProfile, JurySelector
from repro.crowd.routing import (
    QuestionRouter,
    RoutingStrategy,
    default_contact_models,
)
from repro.crowd.team_formation import TeamFormation
from repro.serve.reload import Generation
from repro.serve.router import (
    HttpError,
    Request,
    Response,
    Router,
    opt_number,
    opt_positive_int,
    opt_str,
    opt_unit_float,
    parse_json_object,
    reject_unknown_fields,
    require_str,
    require_str_list,
)

if TYPE_CHECKING:
    from repro.serve.app import ServeApp

T = TypeVar("T")


def _expert_dict(expert: ExpertScore) -> dict[str, Any]:
    return {
        "candidate_id": expert.candidate_id,
        "score": expert.score,
        "supporting_resources": expert.supporting_resources,
    }


def _window_param(payload: Mapping[str, Any]) -> int | float | None | EllipsisType:
    """The window field keeps the finder's three-way semantics on the
    wire: absent → the configured window, ``null`` → no window, an
    integer → absolute resource count, a float in (0, 1] → fraction."""
    if "window" not in payload:
        return _UNSET
    value = payload["window"]
    if value is None:
        return None
    if isinstance(value, bool):
        raise HttpError(400, "invalid_field", "window must be a number or null")
    if isinstance(value, int):
        if value < 1:
            raise HttpError(
                400, "invalid_field", "integer window must be positive"
            )
        return value
    if isinstance(value, float):
        if not 0.0 < value <= 1.0:
            raise HttpError(
                400, "invalid_field", "fractional window must be in (0, 1]"
            )
        return value
    raise HttpError(400, "invalid_field", "window must be a number or null")


def _ranking_params(
    payload: Mapping[str, Any],
) -> dict[str, Any]:
    return {
        "top_k": opt_positive_int(payload, "top_k"),
        "alpha": opt_unit_float(payload, "alpha"),
        "window": _window_param(payload),
    }


async def _compute(generation: Generation, fn: Callable[[], T]) -> T:
    """Run blocking finder/crowd work in the executor while holding the
    generation in-flight (so a reload drains, never tears)."""
    loop = asyncio.get_running_loop()
    generation.acquire()
    try:
        return await loop.run_in_executor(None, fn)
    finally:
        generation.release()


def _crowd_error(exc: Exception) -> HttpError:
    """Crowd-module validation failures are client errors: the inputs
    (candidate sets, budgets, skills) came off the wire."""
    return HttpError(400, "invalid_input", str(exc))


def batch_cost(request: Request) -> float:
    """A batch spends one token per need — it does that much ranking
    work. Unparseable bodies cost one token; the handler 400s them."""
    try:
        payload = json.loads(request.body)
        needs = payload.get("needs")
    except (ValueError, UnicodeDecodeError, AttributeError):
        return 1.0
    return float(max(1, len(needs))) if isinstance(needs, list) else 1.0


def build_router(app: "ServeApp") -> Router:
    router = Router()

    # -- query workloads ---------------------------------------------------------

    async def query(request: Request) -> Response:
        generation = app.reloader.require_current()
        payload = parse_json_object(request)
        reject_unknown_fields(payload, ("need", "top_k", "alpha", "window"))
        need = require_str(payload, "need")
        params = _ranking_params(payload)
        experts = await _compute(
            generation,
            functools.partial(generation.service.find_experts, need, **params),
        )
        return Response(
            200,
            {
                "experts": [_expert_dict(e) for e in experts],
                "generation": generation.number,
            },
        )

    async def query_batch(request: Request) -> Response:
        generation = app.reloader.require_current()
        payload = parse_json_object(request)
        reject_unknown_fields(payload, ("needs", "top_k", "alpha", "window"))
        needs = require_str_list(payload, "needs")
        if len(needs) > app.config.max_batch_needs:
            raise HttpError(
                400,
                "invalid_field",
                f"needs is limited to {app.config.max_batch_needs} entries "
                f"per request, got {len(needs)}",
            )
        params = _ranking_params(payload)
        results = await _compute(
            generation,
            functools.partial(
                generation.service.find_experts_batch, needs, **params
            ),
        )
        return Response(
            200,
            {
                "results": [
                    [_expert_dict(e) for e in experts] for experts in results
                ],
                "generation": generation.number,
            },
        )

    async def observe(request: Request) -> Response:
        generation = app.reloader.require_current()
        payload = parse_json_object(request)
        reject_unknown_fields(
            payload, ("node_id", "text", "supporters", "language")
        )
        node_id = require_str(payload, "node_id")
        text = require_str(payload, "text")
        language = opt_str(payload, "language")
        raw = payload.get("supporters")
        if not isinstance(raw, list) or not raw:
            raise HttpError(
                400,
                "invalid_field",
                "supporters must be a non-empty array of [candidate_id, "
                "distance] pairs",
            )
        supporters: list[tuple[str, int]] = []
        for item in raw:
            if (
                not isinstance(item, list)
                or len(item) != 2
                or not isinstance(item[0], str)
                or not item[0]
                or isinstance(item[1], bool)
                or not isinstance(item[1], int)
                or item[1] < 0
            ):
                raise HttpError(
                    400,
                    "invalid_field",
                    "each supporter must be [candidate_id, distance>=0], "
                    f"got {item!r}",
                )
            supporters.append((item[0], item[1]))
        try:
            indexed = await _compute(
                generation,
                functools.partial(
                    generation.service.observe,
                    node_id,
                    text,
                    supporters,
                    language=language,
                ),
            )
        except ValueError as exc:
            raise HttpError(400, "invalid_input", str(exc))
        return Response(
            200, {"indexed": indexed, "generation": generation.number}
        )

    # -- crowd workloads ---------------------------------------------------------

    async def crowd_route(request: Request) -> Response:
        generation = app.reloader.require_current()
        payload = parse_json_object(request)
        reject_unknown_fields(
            payload,
            ("need", "strategy", "top_k", "target_probability", "wave_size",
             "seed"),
        )
        need = require_str(payload, "need")
        strategy_name = payload.get("strategy", "hybrid")
        try:
            strategy = RoutingStrategy(strategy_name)
        except ValueError:
            raise HttpError(
                400,
                "invalid_field",
                f"strategy must be one of "
                f"{', '.join(s.value for s in RoutingStrategy)}, "
                f"got {strategy_name!r}",
            )
        top_k = opt_positive_int(payload, "top_k") or 5
        wave_size = opt_positive_int(payload, "wave_size") or 2
        target = opt_unit_float(payload, "target_probability")
        seed = opt_positive_int(payload, "seed") or 0

        def plan_route() -> dict[str, Any]:
            ranked = generation.service.find_experts(need, top_k=top_k)
            if not ranked:
                raise HttpError(
                    404, "no_experts", "no candidate shows matching expertise"
                )
            models = default_contact_models(
                [e.candidate_id for e in ranked], seed=seed
            )
            kwargs: dict[str, Any] = {"top_k": top_k, "wave_size": wave_size}
            if target is not None:
                kwargs["target_probability"] = target
            try:
                plan = QuestionRouter(models).plan(ranked, strategy, **kwargs)
            except (ValueError, KeyError) as exc:
                raise _crowd_error(exc)
            return {
                "strategy": plan.strategy.value,
                "waves": [list(wave) for wave in plan.waves],
                "answer_probability": plan.answer_probability,
                "expected_latency": plan.expected_latency,
                "contacts": plan.contacts,
                "generation": generation.number,
            }

        return Response(200, await _compute(generation, plan_route))

    async def crowd_jury(request: Request) -> Response:
        generation = app.reloader.require_current()
        payload = parse_json_object(request)
        reject_unknown_fields(
            payload,
            ("need", "top_k", "budget", "max_size", "best_error",
             "worst_error"),
        )
        need = require_str(payload, "need")
        top_k = opt_positive_int(payload, "top_k") or 10
        budget = opt_number(payload, "budget")
        max_size = opt_positive_int(payload, "max_size")
        best_error = opt_unit_float(payload, "best_error")
        worst_error = opt_unit_float(payload, "worst_error")
        best = 0.05 if best_error is None else best_error
        worst = 0.45 if worst_error is None else worst_error
        if not best <= worst <= 0.5:
            raise HttpError(
                400,
                "invalid_field",
                "need best_error <= worst_error <= 0.5",
            )
        if budget is not None and budget <= 0:
            raise HttpError(
                400, "invalid_field", "budget must be positive when given"
            )

        def select_jury() -> dict[str, Any]:
            ranked = generation.service.find_experts(need, top_k=top_k)
            if not ranked:
                raise HttpError(
                    404, "no_experts", "no candidate shows matching expertise"
                )
            # expertise → error rate: the strongest-scored candidate errs
            # at best_error, a hypothetical zero-score one at worst_error
            top_score = ranked[0].score
            jurors = [
                JurorProfile(
                    candidate_id=e.candidate_id,
                    error_rate=worst - (worst - best) * (e.score / top_score),
                )
                for e in ranked
            ]
            try:
                decision = JurySelector(jurors).select(
                    budget=float("inf") if budget is None else budget,
                    max_size=max_size,
                )
            except ValueError as exc:
                raise _crowd_error(exc)
            return {
                "members": list(decision.members),
                "jury_error_rate": decision.jury_error_rate,
                "total_cost": decision.total_cost,
                "generation": generation.number,
            }

        return Response(200, await _compute(generation, select_jury))

    async def crowd_team(request: Request) -> Response:
        generation = app.reloader.require_current()
        payload = parse_json_object(request)
        reject_unknown_fields(
            payload, ("skills", "algorithm", "top_k_per_skill")
        )
        skills = require_str_list(payload, "skills")
        algorithm = payload.get("algorithm", "greedy_cover")
        if algorithm not in ("greedy_cover", "rarest_first"):
            raise HttpError(
                400,
                "invalid_field",
                "algorithm must be greedy_cover or rarest_first, "
                f"got {algorithm!r}",
            )
        top_k = opt_positive_int(payload, "top_k_per_skill") or 5

        def form_team() -> dict[str, Any]:
            holders: dict[str, set[str]] = {}
            for skill in skills:
                ranked = generation.service.find_experts(skill, top_k=top_k)
                if not ranked:
                    raise HttpError(
                        404,
                        "no_experts",
                        f"no candidate shows expertise for skill {skill!r}",
                    )
                for expert in ranked:
                    holders.setdefault(expert.candidate_id, set()).add(skill)
            graph = app.team_graph(generation)
            try:
                formation = TeamFormation(holders, graph)
                if algorithm == "greedy_cover":
                    team = formation.greedy_cover(skills)
                else:
                    team = formation.rarest_first(skills)
            except (ValueError, KeyError) as exc:
                raise _crowd_error(exc)
            return {
                "members": sorted(team.members),
                "required_skills": sorted(team.required_skills),
                "diameter_cost": team.diameter_cost,
                "mst_cost": team.mst_cost,
                "generation": generation.number,
            }

        return Response(200, await _compute(generation, form_team))

    # -- operations --------------------------------------------------------------

    async def metrics(request: Request) -> Response:
        generation = app.reloader.current
        service_stats = (
            generation.service.stats.to_dict() if generation is not None else None
        )
        return Response(
            200,
            {
                "ready": app.reloader.ready,
                "generation": 0 if generation is None else generation.number,
                "snapshot_generation": (
                    None if generation is None else generation.label
                ),
                "service": service_stats,
                "gateway": app.metrics.snapshot(),
            },
        )

    async def healthz(request: Request) -> Response:
        return Response(200, {"status": "ok"})

    async def readyz(request: Request) -> Response:
        generation = app.reloader.current
        if generation is None:
            return Response(503, {"ready": False})
        return Response(200, {"ready": True, "generation": generation.number})

    async def admin_reload(request: Request) -> Response:
        generation = await app.trigger_reload()
        return Response(
            200,
            {
                "reloaded": True,
                "generation": generation.number,
                "snapshot_generation": generation.label,
            },
        )

    router.add("POST", "/v1/query", query, limited=True)
    router.add("POST", "/v1/query/batch", query_batch, limited=True)
    router.add("POST", "/v1/observe", observe, limited=True)
    router.add("POST", "/v1/crowd/route", crowd_route, limited=True)
    router.add("POST", "/v1/crowd/jury", crowd_jury, limited=True)
    router.add("POST", "/v1/crowd/team", crowd_team, limited=True)
    router.add("GET", "/v1/metrics", metrics)
    router.add("GET", "/healthz", healthz)
    router.add("GET", "/readyz", readyz)
    router.add("POST", "/admin/reload", admin_reload)
    return router
