"""Gateway-side operational metrics.

:class:`GatewayMetrics` counts what the HTTP layer adds on top of the
service's own :class:`~repro.core.service.ServiceStats`: request and
response totals, per-route wall-clock latency percentiles (measured
around the whole dispatch, queueing included), the in-flight gauge,
token-bucket rejections, and reload outcomes. All mutation happens on
the event-loop thread, so plain ints suffice.

``/v1/metrics`` serves ``{"service": ServiceStats.to_dict(), "gateway":
GatewayMetrics.snapshot()}`` — the service half is the same helper
``repro serve-bench --json`` emits, so the two surfaces cannot drift.
"""

from __future__ import annotations

from repro.core.service import percentile

#: per-route latency samples kept (the buffer halves itself when full,
#: like the service's — recent traffic wins)
_MAX_SAMPLES = 4096


class RouteMetrics:
    """Latency + count accounting of one route."""

    __slots__ = ("requests", "errors", "_samples")

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self._samples: list[float] = []

    def record(self, elapsed: float, status: int) -> None:
        self.requests += 1
        if status >= 500:
            self.errors += 1
        if len(self._samples) >= _MAX_SAMPLES:
            del self._samples[: len(self._samples) // 2]
        self._samples.append(elapsed)

    def snapshot(self) -> dict[str, float | int]:
        ordered = sorted(self._samples)
        return {
            "requests": self.requests,
            "errors": self.errors,
            "p50_latency_s": percentile(ordered, 50),
            "p95_latency_s": percentile(ordered, 95),
        }


class GatewayMetrics:
    """Counters for one gateway process."""

    def __init__(self) -> None:
        self.requests_total = 0
        self.responses_by_status: dict[int, int] = {}
        self.rate_limited_total = 0
        self.bad_requests_total = 0
        self.in_flight = 0
        self.reloads = 0
        self.reload_failures = 0
        self._routes: dict[str, RouteMetrics] = {}

    def begin(self) -> None:
        self.requests_total += 1
        self.in_flight += 1

    def end(self, route: str, status: int, elapsed: float) -> None:
        self.in_flight -= 1
        self.responses_by_status[status] = (
            self.responses_by_status.get(status, 0) + 1
        )
        if status == 429:
            self.rate_limited_total += 1
        elif 400 <= status < 500:
            self.bad_requests_total += 1
        per_route = self._routes.get(route)
        if per_route is None:
            per_route = self._routes[route] = RouteMetrics()
        per_route.record(elapsed, status)

    def snapshot(self) -> dict[str, object]:
        """The gateway half of the ``/v1/metrics`` payload."""
        return {
            "requests_total": self.requests_total,
            "responses_by_status": {
                str(status): count
                for status, count in sorted(self.responses_by_status.items())
            },
            "rate_limited_total": self.rate_limited_total,
            "bad_requests_total": self.bad_requests_total,
            "in_flight": self.in_flight,
            "reloads": self.reloads,
            "reload_failures": self.reload_failures,
            "routes": {
                name: route.snapshot()
                for name, route in sorted(self._routes.items())
            },
        }
