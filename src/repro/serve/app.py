"""Gateway application state and the dispatch pipeline.

:class:`ServeApp` ties the pieces together: one :class:`HotReloader`
(the serving generations), one :class:`TokenBucketLimiter` (or none),
one :class:`GatewayMetrics`, and the route table. ``dispatch`` is the
entire request pipeline the wire layer calls: rate limit → route →
handler, with metrics around the whole thing and every failure rendered
as a structured JSON error.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Callable
from dataclasses import dataclass

import networkx as nx

from repro.core.service import ExpertSearchService
from repro.serve.limiter import TokenBucketLimiter
from repro.serve.metrics import GatewayMetrics
from repro.serve.reload import Generation, HotReloader
from repro.serve.router import HttpError, Request, Response
from repro.serve.routes import batch_cost, build_router


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables of one gateway process."""

    #: per-client token-bucket refill rate (tokens/second); ``None``
    #: disables rate limiting entirely
    rate_limit: float | None = 50.0
    #: bucket capacity (burst size) per client
    burst: float = 100.0
    #: request bodies beyond this answer 413
    max_body_bytes: int = 1 << 20
    #: cumulative request-header bytes beyond this answer 431
    max_header_bytes: int = 16384
    #: idle keep-alive connections are closed after this many seconds
    idle_timeout: float = 30.0
    #: upper bound on needs per batch request
    max_batch_needs: int = 256
    #: seconds a graceful shutdown waits for in-flight requests
    shutdown_grace: float = 5.0


class ServeApp:
    """One gateway: generations, limiter, metrics, routes."""

    def __init__(
        self,
        source: Callable[[], ExpertSearchService],
        *,
        label: Callable[[], str | None] | None = None,
        config: GatewayConfig | None = None,
        reloadable: bool = True,
    ):
        self.config = config if config is not None else GatewayConfig()
        self.metrics = GatewayMetrics()
        self.reloader = HotReloader(source, label=label)
        self.reloadable = reloadable
        self.limiter = (
            TokenBucketLimiter(self.config.rate_limit, self.config.burst)
            if self.config.rate_limit
            else None
        )
        self.router = build_router(self)
        #: per-generation co-support communication graph for the team
        #: endpoint (built lazily, keyed by generation number)
        self._team_graphs: dict[int, nx.Graph] = {}

    # -- lifecycle ---------------------------------------------------------------

    async def startup(self) -> Generation:
        """Load the first generation; readiness flips when this
        returns. The caller decides whether to await it before or after
        the listening socket opens (the CLI opens the socket first so
        ``/healthz``/``/readyz`` answer during a slow load)."""
        return await self.reloader.reload()

    async def trigger_reload(self) -> Generation:
        """Reload for ``/admin/reload`` and SIGHUP, with accounting."""
        if not self.reloadable:
            raise HttpError(
                409,
                "not_reloadable",
                "this gateway was built in-process without a snapshot; "
                "nothing to reload from",
            )
        try:
            generation = await self.reloader.reload()
        except HttpError:
            raise
        except Exception as exc:
            self.metrics.reload_failures += 1
            raise HttpError(
                500, "reload_failed", f"{type(exc).__name__}: {exc}"
            )
        self.metrics.reloads += 1
        self._team_graphs.clear()
        return generation

    def shutdown(self) -> None:
        self.reloader.shutdown()
        self._team_graphs.clear()

    # -- dispatch ----------------------------------------------------------------

    async def dispatch(self, request: Request) -> Response:
        """The whole request pipeline; never raises."""
        self.metrics.begin()
        started = time.perf_counter()
        route_name = "<unrouted>"
        try:
            route = self.router.resolve(request.method, request.path)
            route_name = route.path
            if route.limited and self.limiter is not None:
                cost = (
                    batch_cost(request)
                    if route.path == "/v1/query/batch"
                    else 1.0
                )
                retry_after = self.limiter.try_acquire(
                    request.client_key, cost
                )
                if retry_after > 0.0:
                    raise HttpError(
                        429,
                        "rate_limited",
                        f"client {request.client_key!r} exceeded "
                        f"{self.limiter.rate:g} requests/second "
                        f"(burst {self.limiter.burst:g})",
                        retry_after=retry_after,
                    )
            response = await route.handler(request)
        except HttpError as exc:
            response = exc.to_response()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            response = HttpError(
                500, "internal_error", f"{type(exc).__name__}: {exc}"
            ).to_response()
        self.metrics.end(
            route_name, response.status, time.perf_counter() - started
        )
        return response

    # -- shared derived state ----------------------------------------------------

    def team_graph(self, generation: Generation) -> nx.Graph:
        """The co-support communication graph of one generation:
        candidates are linked when they support the same resource
        (Table-1 gathering places both within graph distance of it).
        Built once per generation; safe to race — both builders produce
        the identical graph and the last assignment wins."""
        cached = self._team_graphs.get(generation.number)
        if cached is not None:
            return cached
        graph = nx.Graph()
        for supporters in generation.service.finder.evidence_of.values():
            cids = sorted({cid for cid, _ in supporters})
            graph.add_nodes_from(cids)
            for i, a in enumerate(cids):
                for b in cids[i + 1 :]:
                    graph.add_edge(a, b)
        self._team_graphs = {generation.number: graph}
        return graph
