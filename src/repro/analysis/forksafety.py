"""``fork-safety`` — only module-level callables cross the fork seam.

The cold build (:mod:`repro.index.parallel`) and the sharded executor
(:mod:`repro.index.sharded`) submit work to fork-based process pools.
A lambda, closure, or bound method handed to ``submit``/``map``/
``Process(target=...)`` either fails to pickle outright or — worse
under the ``fork`` start method — captures live state (locks, mmap
handles, half-built indexes) that silently diverges in the child.
Every callable crossing the seam must therefore be a module-level
function, mirroring ``_analyze_chunk``/``_worker_main``.

The rule runs everywhere (pools appear in benchmarks and tests too)
and flags the callable argument of:

* ``<pool>.submit/map/apply/apply_async/imap/imap_unordered/starmap/
  starmap_async`` where ``<pool>`` was created from
  ``ProcessPoolExecutor(...)`` or ``<ctx>.Pool(...)`` (or is a name
  containing ``pool``/``executor``);
* ``Process(target=...)`` and pool ``initializer=...`` keywords;
* ``functools.partial`` wrappers are unwrapped to their first argument.

Violations: lambdas, names bound to lambdas, functions defined inside
another function (closures), and ``self.x``/``obj.x`` bound methods on
local objects. Attribute access through an imported module alias
(``module.function``) stays allowed.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .base import Checker, FileContext
from .findings import Finding

_SUBMIT_METHODS = {
    "submit",
    "map",
    "apply",
    "apply_async",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
}
_POOLISH_NAME = re.compile(r"pool|executor", re.IGNORECASE)


def _is_pool_constructor(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in {"ProcessPoolExecutor", "Pool"}
    if isinstance(func, ast.Attribute):
        return func.attr in {"ProcessPoolExecutor", "Pool"}
    return False


def _is_process_constructor(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "Process"
    if isinstance(func, ast.Attribute):
        return func.attr == "Process"
    return False


def _is_partial(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "partial"
    if isinstance(func, ast.Attribute):
        return func.attr == "partial"
    return False


class _ModuleInfo:
    """Names that are safe to submit: module-level defs and imports."""

    def __init__(self, tree: ast.Module):
        self.module_defs: set[str] = set()
        self.module_aliases: set[str] = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.module_defs.add(stmt.name)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    self.module_aliases.add(
                        alias.asname or alias.name.split(".")[0]
                    )
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    self.module_defs.add(alias.asname or alias.name)


class _Scope(ast.NodeVisitor):
    """One function (or module) body: tracks lambda bindings, nested
    defs, local object names, and pool-bound names."""

    def __init__(
        self,
        checker: "ForkSafetyChecker",
        ctx: FileContext,
        info: _ModuleInfo,
        findings: list[Finding],
        at_module_level: bool,
    ):
        self.checker = checker
        self.ctx = ctx
        self.info = info
        self.findings = findings
        self.at_module_level = at_module_level
        self.lambda_names: set[str] = set()
        self.nested_defs: set[str] = set()
        self.local_names: set[str] = set()
        self.pool_names: set[str] = set()

    # -- scope bookkeeping ---------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if not self.at_module_level:
            self.nested_defs.add(node.name)
        self.checker._check_scope(self.ctx, self.info, node, self.findings)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            self.visit(stmt)

    def _bind(self, target: ast.expr, value: ast.expr | None) -> None:
        if not isinstance(target, ast.Name):
            return
        name = target.id
        self.local_names.add(name)
        self.lambda_names.discard(name)
        self.pool_names.discard(name)
        if isinstance(value, ast.Lambda):
            self.lambda_names.add(name)
        elif value is not None and _is_pool_constructor(value):
            self.pool_names.add(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            self._bind(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        self._bind(node.target, node.value)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if item.optional_vars is not None:
                self._bind(item.optional_vars, item.context_expr)
        self.generic_visit(node)

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_For(self, node: ast.For) -> None:
        self._bind(node.target, None)
        self.generic_visit(node)

    # -- submission sites ----------------------------------------------------------

    def _is_poolish(self, node: ast.expr) -> bool:
        if _is_pool_constructor(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.pool_names or bool(
                _POOLISH_NAME.search(node.id)
            )
        if isinstance(node, ast.Attribute):
            return bool(_POOLISH_NAME.search(node.attr))
        return False

    def _describe_violation(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Lambda):
            return "a lambda"
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.lambda_names:
                return f"{name!r}, a name bound to a lambda"
            if name in self.nested_defs:
                return f"{name!r}, a function defined inside another function"
            return None
        if isinstance(node, ast.Attribute):
            value = node.value
            if isinstance(value, ast.Name):
                receiver = value.id
                if receiver in {"self", "cls"}:
                    return f"the bound method {receiver}.{node.attr}"
                if (
                    receiver in self.local_names
                    and receiver not in self.info.module_aliases
                ):
                    return (
                        f"{receiver}.{node.attr}, a method bound to a "
                        "local object"
                    )
            return None
        if _is_partial(node):
            call = node  # partial(fn, ...): the wrapped callable must be safe
            assert isinstance(call, ast.Call)
            if call.args:
                return self._describe_violation(call.args[0])
        return None

    def _check_callable(self, node: ast.expr, where: str) -> None:
        described = self._describe_violation(node)
        if described is not None:
            self.findings.append(
                self.checker.finding(
                    self.ctx,
                    node,
                    f"{described} is passed to {where}; callables crossing "
                    "the fork seam must be module-level functions "
                    "(pickling/fork-safety)",
                )
            )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SUBMIT_METHODS
            and self._is_poolish(func.value)
        ):
            target: ast.expr | None = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg in {"func", "fn"}:
                    target = kw.value
            if target is not None:
                self._check_callable(target, f"a pool's .{func.attr}()")
        if _is_process_constructor(node):
            for kw in node.keywords:
                if kw.arg == "target":
                    self._check_callable(kw.value, "Process(target=...)")
        if _is_pool_constructor(node):
            for kw in node.keywords:
                if kw.arg == "initializer":
                    self._check_callable(kw.value, "a pool initializer")
        self.generic_visit(node)


class ForkSafetyChecker(Checker):
    rule = "fork-safety"
    description = (
        "callables submitted to process pools must be module-level "
        "functions (no lambdas, closures, or bound methods)"
    )
    scope = None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: list[Finding] = []
        info = _ModuleInfo(ctx.tree)
        self._check_scope(ctx, info, ctx.tree, findings)
        yield from findings

    def _check_scope(
        self,
        ctx: FileContext,
        info: _ModuleInfo,
        root: ast.Module | ast.FunctionDef | ast.AsyncFunctionDef,
        findings: list[Finding],
    ) -> None:
        at_module_level = isinstance(root, ast.Module)
        scope = _Scope(self, ctx, info, findings, at_module_level)
        if not at_module_level:
            args = root.args
            for arg in (
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ):
                scope.local_names.add(arg.arg)
        for stmt in root.body:
            scope.visit(stmt)
