"""Checker interface and per-file context for the lint engine.

A checker is a small class with a ``rule`` name, an optional module
``scope``, and a ``check(ctx)`` method yielding :class:`Finding`s over
the file's AST. The engine owns file discovery, suppression handling,
and caching; checkers only look at one parsed file at a time.

Module scoping
--------------
Rules like *determinism* only make sense inside the scoring packages —
a ``set`` comprehension in a test helper is fine. Each file therefore
resolves to a dotted module name (the path from its last ``repro``
component, e.g. ``src/repro/index/vsm.py`` → ``repro.index.vsm``);
files outside the package tree resolve to ``None`` and scoped rules
skip them. Fixture files opt into a scope explicitly with a module
pragma on any of their first lines::

    # repro: lint-module[repro.index.fake]

Suppressions
------------
A finding is suppressed by ``# repro: lint-ok[rule]`` (or a
comma-separated rule list) on the reported line, or on an immediately
preceding comment-only line. Suppressions should carry a reason after
the bracket; the meta-test keeps the repo's own suppressions reviewed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .findings import Finding

_MODULE_PRAGMA = re.compile(r"#\s*repro:\s*lint-module\[([A-Za-z0-9_.]+)\]")
_SUPPRESS_PRAGMA = re.compile(r"#\s*repro:\s*lint-ok\[([A-Za-z0-9_,\s-]+)\]")
_COMMENT_ONLY = re.compile(r"^\s*#")


def resolve_module(path: Path) -> str | None:
    """The dotted module name of *path*, anchored at its last ``repro``
    path component, or ``None`` when the file is outside the package."""
    parts = list(path.parts)
    anchor = -1
    for i, part in enumerate(parts):
        if part == "repro":
            anchor = i
    if anchor < 0:
        return None
    tail = parts[anchor:-1]
    stem = path.stem
    if stem != "__init__":
        tail = [*tail, stem]
    return ".".join(tail)


def _scan_pragmas(
    lines: list[str],
) -> tuple[str | None, dict[int, frozenset[str]]]:
    """Return the module pragma (if any) and a 1-based line → rule-set
    suppression map, with comment-only pragmas forwarded to the next
    source line."""
    module_pragma: str | None = None
    suppressions: dict[int, frozenset[str]] = {}
    pending: set[str] = set()
    for lineno, line in enumerate(lines, start=1):
        if module_pragma is None:
            pragma = _MODULE_PRAGMA.search(line)
            if pragma:
                module_pragma = pragma.group(1)
        match = _SUPPRESS_PRAGMA.search(line)
        rules = (
            {rule.strip() for rule in match.group(1).split(",") if rule.strip()}
            if match
            else set()
        )
        if _COMMENT_ONLY.match(line) or not line.strip():
            pending |= rules
            continue
        applicable = rules | pending
        pending = set()
        if applicable:
            suppressions[lineno] = frozenset(applicable)
    return module_pragma, suppressions


@dataclass
class FileContext:
    """One parsed file handed to every applicable checker."""

    path: Path
    tree: ast.Module
    lines: list[str]
    module: str | None
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, source: str) -> "FileContext":
        tree = ast.parse(source, filename=str(path))
        lines = source.splitlines()
        module_pragma, suppressions = _scan_pragmas(lines)
        module = module_pragma or resolve_module(path)
        return cls(
            path=path,
            tree=tree,
            lines=lines,
            module=module,
            suppressions=suppressions,
        )

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        return rules is not None and finding.rule in rules


class Checker:
    """Base class for one lint rule."""

    #: the rule name used in reports and ``lint-ok[...]`` pragmas
    rule: str = ""
    #: one-line description shown by the rule catalog
    description: str = ""
    #: dotted module prefixes the rule applies to; ``None`` = every file
    scope: tuple[str, ...] | None = None
    #: dotted modules exempt even when inside ``scope``
    exempt: tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module is not None and ctx.module in self.exempt:
            return False
        if self.scope is None:
            return True
        if ctx.module is None:
            return False
        return any(
            ctx.module == prefix or ctx.module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule,
            message=message,
        )


def walk_functions(
    tree: ast.Module,
) -> Iterable[tuple[ast.AST, tuple[str, ...]]]:
    """Yield ``(node, enclosing function-name stack)`` for every node,
    innermost function last; module-level nodes carry an empty stack."""

    def visit(node: ast.AST, stack: tuple[str, ...]) -> Iterator[tuple[ast.AST, tuple[str, ...]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, stack
                yield from visit(child, (*stack, child.name))
            else:
                yield child, stack
                yield from visit(child, stack)

    yield tree, ()
    yield from visit(tree, ())
