"""The lint engine: file discovery, suppression, caching, reporting.

``lint_paths`` is the importable API behind ``repro lint``. For every
``.py`` file under the given paths it parses once, runs each
applicable checker (see :data:`ALL_CHECKERS` in the package root),
drops findings suppressed by ``# repro: lint-ok[rule]`` pragmas, and
aggregates a :class:`~repro.analysis.findings.LintReport`.

Caching is per file: a JSON map keyed by path holding the content
sha256 and the (pre-serialized) findings. A cache entry is replayed
only when both the content hash and :data:`RULESET_VERSION` match —
bump the version whenever a checker's behavior changes so stale
verdicts can't survive an upgrade.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .base import Checker, FileContext
from .findings import FileResult, Finding, LintReport

#: bump when any checker's behavior changes; invalidates every cache entry
RULESET_VERSION = 1

#: path substrings excluded by default — the lint test fixtures violate
#: rules on purpose, so ``repro lint tests`` must not trip over them
DEFAULT_EXCLUDE: tuple[str, ...] = ("tests/analysis/fixtures",)


def iter_python_files(
    paths: Sequence[str | Path],
    exclude: Sequence[str] = DEFAULT_EXCLUDE,
) -> Iterator[Path]:
    """Yield the ``.py`` files under *paths* in sorted order, skipping
    any whose path contains one of the *exclude* substrings."""
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates: Iterable[Path] = [root] if root.suffix == ".py" else []
        elif root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            raise FileNotFoundError(f"lint path does not exist: {root}")
        for path in candidates:
            posix = path.as_posix()
            if any(marker in posix for marker in exclude):
                continue
            if path not in seen:
                seen.add(path)
                yield path


def lint_source(
    path: Path,
    source: str,
    checkers: Sequence[Checker],
) -> FileResult:
    """Lint one file's *source*; parse errors become a ``parse`` finding."""
    result = FileResult(path=str(path))
    try:
        ctx = FileContext.parse(path, source)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                rule="parse",
                message=f"file does not parse: {exc.msg}",
            )
        )
        return result
    for checker in checkers:
        if not checker.applies_to(ctx):
            continue
        for finding in checker.check(ctx):
            if ctx.is_suppressed(finding):
                result.suppressed += 1
            else:
                result.findings.append(finding)
    result.findings.sort()
    return result


class _Cache:
    """Per-file verdict cache keyed by content sha256 + ruleset version."""

    def __init__(self, path: Path | None):
        self.path = path
        self.entries: dict[str, dict[str, object]] = {}
        self.dirty = False
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                data = {}
            if data.get("ruleset") == RULESET_VERSION:
                entries = data.get("files")
                if isinstance(entries, dict):
                    self.entries = entries

    def lookup(self, key: str, sha: str) -> FileResult | None:
        entry = self.entries.get(key)
        if not isinstance(entry, dict) or entry.get("sha") != sha:
            return None
        try:
            findings = [
                Finding(
                    path=str(f["path"]),
                    line=int(f["line"]),
                    col=int(f["col"]),
                    rule=str(f["rule"]),
                    message=str(f["message"]),
                )
                for f in entry["findings"]  # type: ignore[union-attr]
            ]
            suppressed = int(entry["suppressed"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            return None
        return FileResult(
            path=key, findings=findings, suppressed=suppressed, from_cache=True
        )

    def store(self, key: str, sha: str, result: FileResult) -> None:
        self.entries[key] = {
            "sha": sha,
            "findings": [f.to_json() for f in result.findings],
            "suppressed": result.suppressed,
        }
        self.dirty = True

    def save(self) -> None:
        if self.path is None or not self.dirty:
            return
        payload = {"ruleset": RULESET_VERSION, "files": self.entries}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )


def lint_paths(
    paths: Sequence[str | Path],
    *,
    checkers: Sequence[Checker] | None = None,
    cache_path: str | Path | None = None,
    exclude: Sequence[str] = DEFAULT_EXCLUDE,
) -> LintReport:
    """Lint every Python file under *paths* and return the report."""
    if checkers is None:
        from . import ALL_CHECKERS

        checkers = ALL_CHECKERS
    cache = _Cache(Path(cache_path) if cache_path is not None else None)
    report = LintReport()
    for path in iter_python_files(paths, exclude):
        source = path.read_text(encoding="utf-8")
        key = str(path)
        sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
        cached = cache.lookup(key, sha)
        if cached is not None:
            report.results.append(cached)
            continue
        result = lint_source(path, source, checkers)
        cache.store(key, sha, result)
        report.results.append(result)
    cache.save()
    return report
