"""Finding and report datatypes shared by the lint engine and CLI."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Ordered by ``(path, line, col, rule)`` so reports are stable across
    runs and cache replays.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class FileResult:
    """The outcome of linting one file."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    from_cache: bool = False


@dataclass
class LintReport:
    """Aggregated outcome of a lint run over many files."""

    results: list[FileResult] = field(default_factory=list)

    @property
    def findings(self) -> list[Finding]:
        out = [f for result in self.results for f in result.findings]
        out.sort()
        return out

    @property
    def files_checked(self) -> int:
        return len(self.results)

    @property
    def files_cached(self) -> int:
        return sum(1 for result in self.results if result.from_cache)

    @property
    def suppressed(self) -> int:
        return sum(result.suppressed for result in self.results)

    @property
    def is_clean(self) -> bool:
        return not any(result.findings for result in self.results)

    def to_json(self) -> dict[str, object]:
        return {
            "files_checked": self.files_checked,
            "files_cached": self.files_cached,
            "suppressed": self.suppressed,
            "findings": [f.to_json() for f in self.findings],
        }
