"""``float-equality`` — no exact ``==``/``!=`` between float scores.

Block-max pruning compares a block's upper bound against the current
top-window floor; the two sides reach the same mathematical value
through different operation orders (raw block maxima scaled per query
vs the evaluated posting fold), so exact comparison is wrong at the
ULP level — :func:`repro.index.blockmax.ub_slack` exists precisely to
absorb that. The same applies to any merge/pruning code equating two
computed scores.

Inside ``repro.index``/``repro.core`` the rule flags ``==``/``!=``
where either side is a nonzero float literal, or where both sides are
computed float expressions (arithmetic over floats, float constants,
or ``float(...)``-style producers). Comparison against the literal
``0.0`` stays allowed: it is the codebase's exact sentinel — the irf
of an unseen term is exactly ``0.0``, never approximately so.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import Checker, FileContext
from .findings import Finding

_ARITHMETIC = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow)
_FLOAT_PRODUCERS = {"float", "fsum", "sqrt", "log", "exp", "pow"}


def _is_zero_literal(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value == 0
    )


def _is_nonzero_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_nonzero_float_literal(node.operand)
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value != 0.0
    )


def _is_floaty(node: ast.expr) -> bool:
    """A computed float expression: arithmetic, float literals, or a
    call to a known float producer."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITHMETIC):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_floaty(node.operand)
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        return name in _FLOAT_PRODUCERS
    return False


class FloatEqualityChecker(Checker):
    rule = "float-equality"
    description = (
        "exact ==/!= between computed float scores; route through "
        "ub_slack/math.isclose (comparison to the 0.0 sentinel is exempt)"
    )
    scope = ("repro.index", "repro.core")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            sides = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = sides[i], sides[i + 1]
                if _is_zero_literal(left) or _is_zero_literal(right):
                    continue  # the exact-0.0 sentinel idiom (unseen-term irf)
                if _is_nonzero_float_literal(left) or _is_nonzero_float_literal(
                    right
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "exact comparison against a nonzero float literal; "
                        "float scores must be compared through "
                        "ub_slack/math.isclose",
                    )
                elif _is_floaty(left) and _is_floaty(right):
                    yield self.finding(
                        ctx,
                        node,
                        "exact ==/!= between two computed float "
                        "expressions; operation order differs across "
                        "engines at the ULP level — use "
                        "ub_slack/math.isclose",
                    )
