"""``determinism`` — no unordered iteration or entropy in scoring paths.

Rankings are byte-identical across the columnar, pruned, segmented,
and sharded execution paths only because every fold that feeds them
visits documents in a reproducible order (see ``_match_order`` in
:mod:`repro.index.vsm` and the ``(-score, doc_id)`` merge keys). A
``for`` over a ``set`` — or over ``dict.keys() | dict.keys()``, which
is a set again — silently breaks that the moment two scores tie, and
only at a scale where the hash order happens to differ. Likewise,
``random``/``time.time``/``os.urandom`` in a scoring module makes
reruns incomparable.

The rule flags, inside ``repro.index``/``repro.core``:

* ``for``/comprehension iteration, ``list()``/``tuple()``/
  ``enumerate()``/``.join()`` materialization over an unordered
  expression — a ``set``/``frozenset`` literal, constructor or
  comprehension, a ``.doc_ids()`` result (a ``frozenset`` in this
  codebase), a set-operator ``BinOp`` over ``.keys()`` views, or a name
  assigned from any of those;
* imports of ``random``/``secrets``/``uuid``, ``from time import
  time``, and call sites of ``time.time``/``os.urandom``.

``sorted(...)`` over an unordered expression is the sanctioned fix;
order-independent reductions (``sum``/``min``/``max``/``len``/``any``/
``all``/``frozenset``/``set``) are allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import Checker, FileContext
from .findings import Finding

_ENTROPY_MODULES = {"random", "secrets", "uuid"}
_SET_CONSTRUCTORS = {"set", "frozenset"}
_UNORDERED_RETURNING_METHODS = {"doc_ids"}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_ORDER_FREE_REDUCTIONS = {
    "sum",
    "min",
    "max",
    "len",
    "any",
    "all",
    "sorted",
    "set",
    "frozenset",
}
_MATERIALIZERS = {"list", "tuple", "enumerate"}


def _is_keys_view(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
    )


class _Scope(ast.NodeVisitor):
    """One function (or module) body; tracks names bound to unordered
    values in statement order and reports order-dependent iteration."""

    def __init__(self, checker: "DeterminismChecker", ctx: FileContext):
        self.checker = checker
        self.ctx = ctx
        self.tainted: set[str] = set()
        self.findings: list[Finding] = []

    # -- unordered-expression classification ---------------------------------------

    def is_unordered(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_CONSTRUCTORS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _UNORDERED_RETURNING_METHODS
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            for side in (node.left, node.right):
                if _is_keys_view(side) or self.is_unordered(side):
                    return True
        return False

    # -- statements ----------------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.checker._check_scope(self.ctx, node.body, self.findings)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        unordered = self.is_unordered(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if unordered:
                    self.tainted.add(target.id)
                else:
                    self.tainted.discard(target.id)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if isinstance(node.target, ast.Name) and node.value is not None:
            if self.is_unordered(node.value):
                self.tainted.add(node.target.id)
            else:
                self.tainted.discard(node.target.id)

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.checker.finding(self.ctx, node, message))

    def _check_iter(self, node: ast.expr, what: str) -> None:
        if self.is_unordered(node):
            self._flag(
                node,
                f"{what} iterates an unordered set expression; ranking and "
                "merge outputs must not depend on hash order — wrap it in "
                "sorted(...) or suppress with a reason",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.expr) -> None:
        for gen in getattr(node, "generators", ()):
            self._check_iter(gen.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # building a set from a set is fine — order is discarded again
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in _MATERIALIZERS
            and node.args
            and self.is_unordered(node.args[0])
        ):
            self._flag(
                node,
                f"{func.id}() materializes an unordered set expression in "
                "hash order — use sorted(...) instead",
            )
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and node.args
            and self.is_unordered(node.args[0])
        ):
            self._flag(
                node,
                "str.join over an unordered set expression is "
                "hash-order-dependent — sort the operand first",
            )
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            receiver = func.value.id
            if receiver in _ENTROPY_MODULES:
                self._flag(
                    node,
                    f"{receiver}.{func.attr}() injects entropy into a "
                    "scoring path; reruns must be reproducible",
                )
            elif receiver == "time" and func.attr == "time":
                self._flag(
                    node,
                    "time.time() in a scoring path makes reruns "
                    "incomparable; use perf_counter/monotonic for timing "
                    "outside scoring folds",
                )
            elif receiver == "os" and func.attr == "urandom":
                self._flag(node, "os.urandom() injects entropy into a scoring path")
        self.generic_visit(node)


class DeterminismChecker(Checker):
    rule = "determinism"
    description = (
        "no unordered set/dict-view iteration or entropy sources in "
        "ranking and merge paths"
    )
    scope = ("repro.index", "repro.core")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: list[Finding] = []
        for stmt in ctx.tree.body:
            self._check_imports(ctx, stmt, findings)
        self._check_scope(ctx, ctx.tree.body, findings)
        yield from findings

    def _check_imports(
        self, ctx: FileContext, stmt: ast.stmt, findings: list[Finding]
    ) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                root = alias.name.split(".")[0]
                if root in _ENTROPY_MODULES:
                    findings.append(
                        self.finding(
                            ctx,
                            stmt,
                            f"import of {root!r} in a scoring module; "
                            "determinism forbids entropy sources here",
                        )
                    )
        elif isinstance(stmt, ast.ImportFrom):
            root = (stmt.module or "").split(".")[0]
            if root in _ENTROPY_MODULES:
                findings.append(
                    self.finding(
                        ctx,
                        stmt,
                        f"import from {root!r} in a scoring module; "
                        "determinism forbids entropy sources here",
                    )
                )
            elif root == "time" and any(a.name == "time" for a in stmt.names):
                findings.append(
                    self.finding(
                        ctx,
                        stmt,
                        "from time import time in a scoring module; use "
                        "perf_counter/monotonic for timing",
                    )
                )

    def _check_scope(
        self,
        ctx: FileContext,
        body: list[ast.stmt],
        findings: list[Finding],
    ) -> None:
        scope = _Scope(self, ctx)
        scope.findings = findings
        for stmt in body:
            scope.visit(stmt)
