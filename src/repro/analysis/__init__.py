"""Repo-specific static analysis (``repro lint``).

Five AST-based rules guard the invariants the runtime equivalence
tests enforce dynamically — catching whole bug classes at review time
instead of when a benchmark trips:

========================  ======================================================
``determinism``           no unordered iteration / entropy in scoring paths
``fork-safety``           only module-level callables cross the fork seam
``mmap-discipline``       mapped sections are read-only; columns immutable
``float-equality``        float scores compare through ub_slack, not ``==``
``section-registry``      layout names come from ``repro.storage.sections``
========================  ======================================================

See ``docs/static_analysis.md`` for the full rule catalog, the
suppression syntax (``# repro: lint-ok[rule]``), and how to add a
checker.
"""

from __future__ import annotations

from .base import Checker, FileContext, resolve_module
from .determinism import DeterminismChecker
from .engine import (
    DEFAULT_EXCLUDE,
    RULESET_VERSION,
    iter_python_files,
    lint_paths,
    lint_source,
)
from .findings import FileResult, Finding, LintReport
from .floateq import FloatEqualityChecker
from .forksafety import ForkSafetyChecker
from .mmapdiscipline import MmapDisciplineChecker
from .registry import SectionRegistryChecker

#: every registered rule, in report order
ALL_CHECKERS: tuple[Checker, ...] = (
    DeterminismChecker(),
    ForkSafetyChecker(),
    MmapDisciplineChecker(),
    FloatEqualityChecker(),
    SectionRegistryChecker(),
)

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "DEFAULT_EXCLUDE",
    "DeterminismChecker",
    "FileContext",
    "FileResult",
    "Finding",
    "FloatEqualityChecker",
    "ForkSafetyChecker",
    "LintReport",
    "MmapDisciplineChecker",
    "RULESET_VERSION",
    "SectionRegistryChecker",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "resolve_module",
]
