"""``mmap-discipline`` — mapped snapshot sections are read-only.

v3 snapshots are served zero-copy: :mod:`repro.storage.binary` maps a
section container and hands out ``memoryview`` casts over the shared
pages. Writing through such a view corrupts the snapshot for every
process mapping it — the crash-safety story (generational ``CURRENT``
swaps) assumes sealed files never change. Similarly, a ``Segment``'s
compiled columns are the immutable query-time truth; mutating them
outside the sanctioned compile/hydrate paths desynchronizes block
metadata and scratch sizing.

Two sub-rules:

* **view mutation** (every module): no item assignment, ``del``, or
  mutating method call (``byteswap``/``append``/``frombytes``/…) on a
  value derived from ``memoryview(...)``, a mapped-section accessor
  (``.array(...)``/``.blob(...)``), or a ``.cast(...)``/slice of one;
* **column mutation** (``repro.index`` only): compiled column
  attributes (``_term_cols``, ``_entity_blocks``, ``_sup_weight``, …)
  may only be written inside the sanctioned construction and lazy
  block-build paths (``__init__``, ``compile``, ``from_columns``,
  ``_init_blocks``, ``_pruned_term``, …).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .base import Checker, FileContext
from .findings import Finding

_VIEW_SOURCES = {"array", "blob"}
_MUTATING_METHODS = {
    "byteswap",
    "append",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "reverse",
    "sort",
    "clear",
    "frombytes",
    "fromlist",
    "fromunicode",
    "update",
    "setdefault",
}
_COLUMN_ATTR = re.compile(
    r"^_(term|entity|sup)_(cols|blocks|pruned|offsets|cand|weight|pairs)$"
)
_SANCTIONED_COLUMN_WRITERS = {
    "__init__",
    "compile",
    "from_columns",
    "restore_compiled",
    "_init_blocks",
    "_init_scratch",
    "_run_hydrate",
    "_build_pruned",
    "_pruned_term",
    "_pruned_entity",
}
_DICT_MUTATORS = {"update", "clear", "pop", "popitem", "setdefault"}


def _attr_name(node: ast.expr) -> str | None:
    """The attribute name when *node* is ``<anything>.<attr>``."""
    return node.attr if isinstance(node, ast.Attribute) else None


class _Scope(ast.NodeVisitor):
    def __init__(
        self,
        checker: "MmapDisciplineChecker",
        ctx: FileContext,
        findings: list[Finding],
        function_stack: tuple[str, ...],
        column_rule: bool,
    ):
        self.checker = checker
        self.ctx = ctx
        self.findings = findings
        self.function_stack = function_stack
        self.column_rule = column_rule
        self.view_names: set[str] = set()
        self.column_aliases: set[str] = set()

    # -- taint classification --------------------------------------------------------

    def is_view(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.view_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "memoryview":
                return True
            if isinstance(func, ast.Attribute):
                if func.attr in _VIEW_SOURCES:
                    return True
                if func.attr == "cast" and self.is_view(func.value):
                    return True
            return False
        if isinstance(node, ast.Subscript):
            # slicing a memoryview yields another view over the same pages
            return isinstance(node.slice, ast.Slice) and self.is_view(node.value)
        return False

    def _is_column_attr(self, node: ast.expr) -> bool:
        if not self.column_rule:
            return False
        attr = _attr_name(node)
        if attr is not None and _COLUMN_ATTR.match(attr):
            return True
        return isinstance(node, ast.Name) and node.id in self.column_aliases

    def _sanctioned(self) -> bool:
        return bool(
            self.function_stack
            and self.function_stack[-1] in _SANCTIONED_COLUMN_WRITERS
        )

    # -- bookkeeping -----------------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.checker._check_scope(
            self.ctx,
            node,
            self.findings,
            (*self.function_stack, node.name),
            self.column_rule,
        )

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            self.visit(stmt)

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.checker.finding(self.ctx, node, message))

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        view_value = self.is_view(node.value)
        column_value = self._is_column_attr(node.value)
        for target in node.targets:
            self._check_store(target)
            if isinstance(target, ast.Name):
                if view_value:
                    self.view_names.add(target.id)
                else:
                    self.view_names.discard(target.id)
                if column_value:
                    self.column_aliases.add(target.id)
                else:
                    self.column_aliases.discard(target.id)
            elif self._is_column_attr(target) and not self._sanctioned():
                self._flag(
                    target,
                    f"compiled column attribute .{_attr_name(target)} is "
                    "assigned outside the sanctioned compile/hydrate paths",
                )

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        self._check_store(node.target)
        if isinstance(node.target, ast.Name) and node.value is not None:
            if self.is_view(node.value):
                self.view_names.add(node.target.id)
            else:
                self.view_names.discard(node.target.id)
        elif (
            isinstance(node.target, ast.Attribute)
            and self._is_column_attr(node.target)
            and node.value is not None
            and not self._sanctioned()
        ):
            self._flag(
                node.target,
                f"compiled column attribute .{node.target.attr} is "
                "assigned outside the sanctioned compile/hydrate paths",
            )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.generic_visit(node)
        self._check_store(node.target)

    def visit_Delete(self, node: ast.Delete) -> None:
        self.generic_visit(node)
        for target in node.targets:
            self._check_store(target)

    def _check_store(self, target: ast.expr) -> None:
        if not isinstance(target, ast.Subscript):
            return
        base = target.value
        if self.is_view(base):
            self._flag(
                target,
                "item write through a memoryview derived from a mapped "
                "snapshot section; mapped pages are shared and sealed — "
                "copy into a fresh array() before mutating",
            )
        elif self._is_column_attr(base) and not self._sanctioned():
            self._flag(
                target,
                f"item write into compiled column attribute "
                f".{_attr_name(base) or '<alias>'} outside the sanctioned "
                "compile/hydrate paths",
            )

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in _MUTATING_METHODS and self.is_view(func.value):
            self._flag(
                node,
                f".{func.attr}() mutates a memoryview derived from a "
                "mapped snapshot section; copy into a fresh array() first",
            )
        elif (
            func.attr in _DICT_MUTATORS
            and self._is_column_attr(func.value)
            and not self._sanctioned()
        ):
            self._flag(
                node,
                f".{func.attr}() mutates compiled column attribute "
                f".{_attr_name(func.value) or '<alias>'} outside the "
                "sanctioned compile/hydrate paths",
            )

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if isinstance(item.optional_vars, ast.Name) and self.is_view(
                item.context_expr
            ):
                self.view_names.add(item.optional_vars.id)
        self.generic_visit(node)


class MmapDisciplineChecker(Checker):
    rule = "mmap-discipline"
    description = (
        "no writes through mapped-section memoryviews; compiled columns "
        "only mutate inside sanctioned compile/hydrate paths"
    )
    scope = None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: list[Finding] = []
        column_rule = ctx.module is not None and (
            ctx.module == "repro.index" or ctx.module.startswith("repro.index.")
        )
        self._check_scope(ctx, ctx.tree, findings, (), column_rule)
        yield from findings

    def _check_scope(
        self,
        ctx: FileContext,
        root: ast.Module | ast.FunctionDef | ast.AsyncFunctionDef,
        findings: list[Finding],
        function_stack: tuple[str, ...],
        column_rule: bool,
    ) -> None:
        scope = _Scope(self, ctx, findings, function_stack, column_rule)
        for stmt in root.body:
            scope.visit(stmt)
