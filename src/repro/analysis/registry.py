"""``section-registry`` — layout names come from one module.

The v3 snapshot layout is a contract between independent writer and
reader paths (monolithic, segmented, sharded; plus migration and
pruning). A section or file name spelled ad hoc in one of them —
``"term#of"`` for ``"term#off"`` — produces a snapshot the reader
rejects, or silently pairs a column with the wrong offsets. All names
therefore live in :mod:`repro.storage.sections`, and this rule flags,
inside the storage/index/core packages:

* string literals shaped like section names (``prefix#column``);
* literals naming registered layout files (``stats.bin``, ``CURRENT``,
  ``segments.jsonl``, …) or shaped like container/flat-file names
  (``*.bin``, ``*.jsonl``, ``*.jsonl.gz``);
* f-strings whose constant parts smuggle a ``#column`` suffix or a
  container extension past the registry (``f"{name}#off"``).

Docstrings are exempt; :mod:`repro.storage.sections` itself is exempt.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.storage.sections import REGISTERED_FILES

from .base import Checker, FileContext
from .findings import Finding

_SECTION_SHAPE = re.compile(r"^[a-z]+#[a-z]+$")
_FILE_SHAPE = re.compile(r"^[A-Za-z0-9_.{}:-]*\.(bin|jsonl|jsonl\.gz)$")
_FSTRING_SMUGGLE = re.compile(r"#[a-z]+|\.(bin|jsonl)\b")


def _docstring_nodes(tree: ast.Module) -> set[int]:
    """ids of Constant nodes serving as docstrings."""
    out: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(id(body[0].value))
    return out


class SectionRegistryChecker(Checker):
    rule = "section-registry"
    description = (
        "snapshot section/file names must come from repro.storage.sections, "
        "not ad-hoc literals"
    )
    scope = (
        "repro.storage.binary",
        "repro.storage.snapshot",
        "repro.index",
        "repro.core",
    )
    exempt = ("repro.storage.sections",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        docstrings = _docstring_nodes(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                if id(node) in docstrings:
                    continue
                value = node.value
                if _SECTION_SHAPE.match(value):
                    yield self.finding(
                        ctx,
                        node,
                        f"ad-hoc section-name literal {value!r}; use the "
                        "constant or helper in repro.storage.sections",
                    )
                elif value in REGISTERED_FILES:
                    yield self.finding(
                        ctx,
                        node,
                        f"ad-hoc layout file-name literal {value!r}; use "
                        "the constant in repro.storage.sections",
                    )
                elif _FILE_SHAPE.match(value):
                    yield self.finding(
                        ctx,
                        node,
                        f"container/flat-file name literal {value!r} "
                        "bypasses the repro.storage.sections registry",
                    )
            elif isinstance(node, ast.JoinedStr):
                for part in node.values:
                    if (
                        isinstance(part, ast.Constant)
                        and isinstance(part.value, str)
                        and _FSTRING_SMUGGLE.search(part.value)
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            f"f-string builds a section/file name around "
                            f"{part.value!r}; use the helpers in "
                            "repro.storage.sections",
                        )
                        break
