"""Table 3 + Fig. 9 — contribution of resource distance and network.

Regenerates the {All, FB, TW, LI} × distance {0, 1, 2} grid (window =
100, α = 0.6) against the random baseline and checks the paper's
headline findings:

1. profiles alone (distance 0) are *worse than random selection*;
2. adding social behaviour (distances 1 and 2) beats random decisively;
3. Twitter at distance 2 is the strongest single-network configuration
   on MAP;
4. LinkedIn is the weakest network at behavioural distances.
"""

from repro.experiments import tab3_fig9_networks


def bench_tab3_fig9_networks(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        tab3_fig9_networks.run, args=(ctx,), rounds=1, iterations=1
    )
    save_result("tab3_fig9_networks", result.render())
    random_map = result.baseline.map

    # (1) distance 0 below random — "profiles alone are inadequate"
    assert result.summary("All", 0).map < random_map

    # (2) behaviour beats random, and distance 2 is the best "All" row
    assert result.summary("All", 1).map > random_map
    assert result.summary("All", 2).map > random_map
    assert result.summary("All", 2).map > result.summary("All", 1).map

    # (3) Twitter@2 best single network on MAP, and at worst a hair
    # behind on NDCG (the paper has it leading 3 of 4 metrics)
    tw2 = result.summary("TW", 2)
    assert tw2.map >= result.summary("FB", 2).map
    assert tw2.map >= result.summary("LI", 2).map
    assert tw2.ndcg >= 0.95 * result.summary("FB", 2).ndcg
    assert tw2.ndcg >= result.summary("LI", 2).ndcg

    # (4) LinkedIn weakest at distances 1 and 2
    for distance in (1, 2):
        li = result.summary("LI", distance).map
        assert li <= result.summary("FB", distance).map
        assert li <= result.summary("TW", distance).map

    # Fig. 9: the distance-2 11-point curve dominates the distance-0 one
    d0_curve = result.eleven_point_all[0]
    d2_curve = result.eleven_point_all[2]
    assert sum(d2_curve) > sum(d0_curve)
    # DCG curves are monotone in the cut-off
    for curve in result.dcg_all.values():
        assert list(curve) == sorted(curve)
