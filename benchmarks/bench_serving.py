"""Serving-layer benchmark: snapshot warm starts and query caching.

Measures the two claims the serving layer makes:

* **warm start** — loading a finder snapshot must beat a cold build
  (gather + analyze + index) by at least 5×, since load skips the
  expensive text/entity analysis entirely;
* **query cache** — answering the query set from the service's LRU
  cache must beat uncached evaluation by at least 10× QPS.

The rendered report (cold/save/load times, cached/uncached QPS, p50/p95
latencies) is written to ``benchmarks/results/serving.txt``, and the
same numbers go to ``benchmarks/results/BENCH_serving.json`` in the
shared machine-readable benchmark schema (see ``conftest.save_json``).
"""

from __future__ import annotations

import time

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.core.service import ExpertSearchService

#: extra cache-served passes over the query set (pass 1 misses)
_CACHED_ROUNDS = 20


def bench_serving(ctx, save_result, save_json, tmp_path):
    dataset = ctx.dataset
    queries = list(dataset.queries)
    snapshot_dir = tmp_path / "finder_snapshot"

    # cold build: no pre-analyzed corpus — gather, analyze, index
    t0 = time.perf_counter()
    cold_finder = ExpertFinder.build(
        dataset.merged_graph,
        dataset.candidates_for(None),
        dataset.analyzer,
        FinderConfig(),
    )
    cold_build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    cold_finder.save(snapshot_dir)
    save_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    loaded_finder = ExpertFinder.load(snapshot_dir, dataset.analyzer)
    load_s = time.perf_counter() - t0

    # the snapshot must reproduce the cold finder's rankings exactly
    for need in queries:
        assert loaded_finder.find_experts(need) == cold_finder.find_experts(need)

    service = ExpertSearchService(loaded_finder, cache_size=len(queries) * 2)
    t0 = time.perf_counter()
    service.find_experts_batch(queries, top_k=10)
    uncached_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(_CACHED_ROUNDS):
        service.find_experts_batch(queries, top_k=10)
    cached_s = time.perf_counter() - t0

    uncached_qps = len(queries) / uncached_s
    cached_qps = len(queries) * _CACHED_ROUNDS / cached_s
    stats = service.stats
    lines = [
        "Serving layer — snapshot warm start and query caching",
        f"dataset: scale={dataset.scale.value} seed={dataset.seed} "
        f"({cold_finder.indexed_resources} indexed resources, "
        f"{len(queries)} queries)",
        "",
        f"cold build (gather+analyze+index):  {cold_build_s:8.3f}s",
        f"snapshot save:                      {save_s:8.3f}s",
        f"snapshot load (warm start):         {load_s:8.3f}s",
        f"warm-start speedup:                 {cold_build_s / load_s:7.1f}x",
        "",
        f"uncached queries:                   {uncached_qps:8.0f} q/s",
        f"cached queries:                     {cached_qps:8.0f} q/s",
        f"cache speedup:                      {cached_qps / uncached_qps:7.1f}x",
        f"hit rate:                           {stats.hit_rate:8.0%}",
        f"p50 / p95 latency:            "
        f"{stats.p50_latency * 1e6:9.1f}µs /{stats.p95_latency * 1e6:9.1f}µs",
    ]
    save_result("serving", "\n".join(lines))
    save_json(
        "serving",
        dataset,
        {
            "queries": len(queries),
            "indexed_resources": cold_finder.indexed_resources,
            "cold_build_s": cold_build_s,
            "snapshot_save_s": save_s,
            "snapshot_load_s": load_s,
            "warm_start_speedup": cold_build_s / load_s,
            "uncached_qps": uncached_qps,
            "cached_qps": cached_qps,
            "cache_speedup": cached_qps / uncached_qps,
            "hit_rate": stats.hit_rate,
            "p50_latency_s": stats.p50_latency,
            "p95_latency_s": stats.p95_latency,
        },
    )

    assert load_s * 5 <= cold_build_s, (
        f"snapshot load ({load_s:.3f}s) not ≥5x faster than "
        f"cold build ({cold_build_s:.3f}s)"
    )
    assert cached_qps >= 10 * uncached_qps, (
        f"cached QPS ({cached_qps:.0f}) not ≥10x uncached ({uncached_qps:.0f})"
    )
