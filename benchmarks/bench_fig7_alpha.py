"""Fig. 7 — α sensitivity sweep.

Regenerates the metric curves over α ∈ [0, 1] at distances 0, 1, 2
(window = 100) and checks the paper's shape: entity-only matching
(α = 0) collapses at distance 0, and the metrics are stable on the
α ∈ [0.3, 0.8] plateau the paper reads off before fixing α = 0.6.
"""

from repro.experiments import fig7_alpha


def bench_fig7_alpha(benchmark, ctx, save_result):
    result = benchmark.pedantic(fig7_alpha.run, args=(ctx,), rounds=1, iterations=1)
    save_result("fig7_alpha", result.render())

    # paper shape: α = 0 (entities only) greatly decreases effectiveness
    # at distance 0 — profiles yield few, poorly disambiguated entities
    d0 = result.sweeps[0]
    assert d0[0.0].map < max(s.map for s in d0.values()) * 0.75

    # paper shape: metrics are stable for α in [0.3, 0.8]
    for distance in (1, 2):
        assert result.plateau_spread("map", distance) < 0.10
        assert result.plateau_spread("ndcg", distance) < 0.10

    # distance 2 dominates distance 0 across the whole α range
    for alpha, summary in result.sweeps[2].items():
        assert summary.map >= result.sweeps[0][alpha].map
