"""Table 2 + Fig. 8 — Twitter friends experiment.

Regenerates the with/without-friends comparison on Twitter at distances
1 and 2 (window = 100, α = 0.6) and checks the paper's conclusion:
"the addition of Twitter friends would give no particular benefit" —
at most a marginal change at distance 1 and no improvement worth the
60k extra resources at distance 2.
"""

from repro.experiments import tab2_fig8_friends


def bench_tab2_fig8_friends(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        tab2_fig8_friends.run, args=(ctx,), rounds=1, iterations=1
    )
    save_result("tab2_fig8_friends", result.render())

    no1, yes1 = result.table[(1, False)], result.table[(1, True)]
    no2, yes2 = result.table[(2, False)], result.table[(2, True)]

    # paper shape: friends change distance-1 metrics only marginally
    # (the paper saw ~+1%)
    assert abs(yes1.map - no1.map) < 0.08
    assert abs(yes1.ndcg - no1.ndcg) < 0.08

    # paper shape: at distance 2 friends do NOT meaningfully improve MAP
    # (the paper saw a slight worsening)
    assert yes2.map <= no2.map + 0.03

    # both configurations beat random at distances 1 and 2
    for summary in (no1, yes1, no2, yes2):
        assert summary.map > result.baseline.map

    # DCG curves grow with the cut-off
    for curve in result.dcg_curves.values():
        assert list(curve) == sorted(curve)
