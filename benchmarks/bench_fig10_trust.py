"""Fig. 10 — trustworthiness of social information.

Regenerates the per-candidate F1 / resource-count scatter and its
regression, and checks the paper's reading: prediction quality
correlates positively with the amount of exposed social information,
several users are essentially unrecoverable (the flagship/private
accounts), and a solid group exceeds F1 = 0.7.
"""

from repro.experiments import fig10_trust


def bench_fig10_trust(benchmark, ctx, save_result):
    result = benchmark.pedantic(fig10_trust.run, args=(ctx,), rounds=1, iterations=1)
    save_result("fig10_trust", result.render())

    # paper shape: positive correlation between available resources and
    # assessment quality
    assert result.regression_slope > 0.0
    assert result.pearson_r > 0.1

    # paper shape: some candidates are deemed (nearly) completely
    # unreliable — the generator plants ~20% low-exposure users
    assert result.count_unreliable(0.1) >= 2

    # paper shape: several candidates are assessed well
    assert result.count_above(0.70) >= 3

    # about half the users sit above the mean F1 (median near average)
    above_avg = sum(1 for u in result.users if u.f1 > result.average_f1)
    assert 0.2 * len(result.users) <= above_avg <= 0.8 * len(result.users)
