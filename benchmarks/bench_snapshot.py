"""Snapshot format benchmark: v3 binary (mmap) vs v2 JSONL open cost.

Measures the claims snapshot format v3 makes:

* **O(1) open** — mapping the sealed columns must beat re-parsing the
  JSONL postings by at least 10×, because open cost no longer scales
  with the posting count;
* **identical rankings** — both formats must reproduce the built
  finder's rankings exactly (same candidates, scores, and support);
* **shared pages** — two forked readers of one v3 snapshot should hold
  roughly one private copy less than two v2 readers, since the heavy
  columns live in the shared page cache (reported when
  ``/proc/self/smaps_rollup`` exists; skipped silently elsewhere).

The rendered report goes to ``benchmarks/results/snapshot.txt`` and the
numbers to ``benchmarks/results/BENCH_snapshot.json`` in the shared
machine-readable schema (see ``conftest.save_json``).
"""

from __future__ import annotations

import os
import time

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder

#: open-time measurement repeats (best-of, to shed page-cache noise)
_OPEN_REPEATS = 5

#: v3 must open at least this many times faster than v2 JSONL
_OPEN_SPEEDUP_FLOOR = 10.0


def _best_open_time(directory, analyzer, repeats=_OPEN_REPEATS):
    best = float("inf")
    finder = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        finder = ExpertFinder.load(directory, analyzer)
        best = min(best, time.perf_counter() - t0)
    return best, finder


def _private_kb_after_load(directory, analyzer, need):
    """Fork a reader, load the snapshot, answer one query, and report
    its private resident memory (kB) from smaps_rollup; -1 if the
    platform lacks the interface."""
    if not os.path.exists("/proc/self/smaps_rollup"):
        return -1
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child: measure, write one line, hard-exit
        try:
            os.close(read_fd)
            finder = ExpertFinder.load(directory, analyzer)
            finder.find_experts(need)
            private_kb = 0
            with open("/proc/self/smaps_rollup", encoding="ascii") as fh:
                for line in fh:
                    if line.startswith(("Private_Clean:", "Private_Dirty:")):
                        private_kb += int(line.split()[1])
            os.write(write_fd, f"{private_kb}\n".encode("ascii"))
        finally:
            os._exit(0)
    os.close(write_fd)
    try:
        with os.fdopen(read_fd) as fh:
            line = fh.readline().strip()
    finally:
        os.waitpid(pid, 0)
    return int(line) if line else -1


def bench_snapshot(ctx, save_result, save_json, tmp_path):
    dataset = ctx.dataset
    queries = list(dataset.queries)
    finder = ExpertFinder.build(
        dataset.merged_graph,
        dataset.candidates_for(None),
        dataset.analyzer,
        FinderConfig(),
        corpus=dataset.corpus,
    )
    reference = {need.text: finder.find_experts(need) for need in queries}

    v3_dir = tmp_path / "snap-v3"
    v2_dir = tmp_path / "snap-v2"
    t0 = time.perf_counter()
    finder.save(v3_dir)
    v3_save_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    finder.save(v2_dir, snapshot_format="jsonl")
    v2_save_s = time.perf_counter() - t0

    v3_open_s, from_v3 = _best_open_time(v3_dir, dataset.analyzer)
    v2_open_s, from_v2 = _best_open_time(v2_dir, dataset.analyzer)

    # both formats must reproduce the built rankings exactly
    for need in queries:
        assert from_v3.find_experts(need) == reference[need.text]
        assert from_v2.find_experts(need) == reference[need.text]

    speedup = v2_open_s / v3_open_s
    assert speedup >= _OPEN_SPEEDUP_FLOOR, (
        f"v3 open is only {speedup:.1f}x faster than v2 "
        f"({v3_open_s * 1e3:.2f}ms vs {v2_open_s * 1e3:.2f}ms); "
        f"the format requires >= {_OPEN_SPEEDUP_FLOOR:.0f}x"
    )

    v3_bytes = sum(p.stat().st_size for p in v3_dir.rglob("*") if p.is_file())
    v2_bytes = sum(p.stat().st_size for p in v2_dir.rglob("*") if p.is_file())

    # resident-memory delta across two forked readers per format
    probe = queries[0]
    v3_private_kb = [
        _private_kb_after_load(v3_dir, dataset.analyzer, probe)
        for _ in range(2)
    ]
    v2_private_kb = [
        _private_kb_after_load(v2_dir, dataset.analyzer, probe)
        for _ in range(2)
    ]
    have_memory = all(kb >= 0 for kb in (*v3_private_kb, *v2_private_kb))

    lines = [
        "Snapshot format — v3 binary (mmap) vs v2 JSONL",
        f"dataset: scale={dataset.scale.value} seed={dataset.seed} "
        f"({finder.indexed_resources} indexed resources, "
        f"{len(queries)} queries)",
        "",
        f"v2 JSONL save:            {v2_save_s * 1e3:9.2f}ms"
        f"   ({v2_bytes / 1024:8.1f} KiB)",
        f"v3 binary save:           {v3_save_s * 1e3:9.2f}ms"
        f"   ({v3_bytes / 1024:8.1f} KiB)",
        f"v2 JSONL open (best of {_OPEN_REPEATS}): {v2_open_s * 1e3:8.2f}ms",
        f"v3 binary open (best of {_OPEN_REPEATS}):{v3_open_s * 1e3:9.2f}ms",
        f"open speedup:             {speedup:9.1f}x  (floor "
        f"{_OPEN_SPEEDUP_FLOOR:.0f}x)",
        "",
        "rankings: v3 == v2 == built (all queries, exact scores)",
    ]
    if have_memory:
        lines += [
            "",
            f"private RSS, 2 v2 readers: {sum(v2_private_kb):8d} kB",
            f"private RSS, 2 v3 readers: {sum(v3_private_kb):8d} kB",
        ]
    report = "\n".join(lines)
    save_result("snapshot", report)
    save_json(
        "snapshot",
        dataset,
        {
            "v2_save_s": v2_save_s,
            "v3_save_s": v3_save_s,
            "v2_open_s": v2_open_s,
            "v3_open_s": v3_open_s,
            "open_speedup": speedup,
            "v2_bytes": v2_bytes,
            "v3_bytes": v3_bytes,
            "v2_two_reader_private_kb": (
                sum(v2_private_kb) if have_memory else None
            ),
            "v3_two_reader_private_kb": (
                sum(v3_private_kb) if have_memory else None
            ),
            "rankings_identical": True,
        },
    )
