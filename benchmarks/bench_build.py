"""Cold-build benchmark: the parallel pipeline vs the serial path.

Measures the three-stage cold build (shared-frontier gathering, sharded
text/entity analysis, mergeable index shards) end to end:

* **equivalence** — the parallel build must produce rankings identical
  to the serial build for every query (always asserted, any core count);
* **speedup** — with ≥4 workers on a ≥4-core machine the parallel cold
  build must be at least 2× faster than the serial one (asserted only
  when the hardware can deliver it; the numbers are recorded either way).

Also times the sharded corpus analysis (``ParallelCorpusAnalyzer``) on
the merged graph — the dominant cost of ``build_dataset``.

Results go to ``benchmarks/results/build.txt`` (human-readable) and
``benchmarks/results/BENCH_build.json`` (machine-readable, uploaded as
a CI artifact so the perf trajectory accumulates across commits).
``REPRO_BUILD_WORKERS`` overrides the worker count (default: all cores,
at least 2 so the parallel path is always exercised, at most 8).
"""

from __future__ import annotations

import os
import time

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.extraction.crawler import ParallelCorpusAnalyzer
from repro.synthetic.dataset import default_analyzer


def _worker_count() -> int:
    override = os.environ.get("REPRO_BUILD_WORKERS", "").strip()
    if override:
        return max(1, int(override))
    return min(max(os.cpu_count() or 1, 2), 8)


def bench_build(ctx, save_result, save_json):
    dataset = ctx.dataset
    graph = dataset.merged_graph
    candidates = dataset.candidates_for(None)
    queries = list(dataset.queries)
    workers = _worker_count()
    cores = os.cpu_count() or 1

    # -- cold finder build: gather + analyze + index, no pre-built corpus --
    t0 = time.perf_counter()
    serial = ExpertFinder.build(graph, candidates, dataset.analyzer, FinderConfig())
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = ExpertFinder.build(
        graph,
        candidates,
        dataset.analyzer,
        FinderConfig(),
        workers=workers,
        analyzer_factory=default_analyzer,
    )
    parallel_s = time.perf_counter() - t0

    # determinism guarantee: identical rankings, every query, any workers
    for need in queries:
        assert parallel.find_experts(need) == serial.find_experts(need), need

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")

    # -- sharded corpus analysis over the merged graph --
    t0 = time.perf_counter()
    serial_corpus = ParallelCorpusAnalyzer(dataset.analyzer).analyze_graph(graph)
    corpus_serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel_corpus = ParallelCorpusAnalyzer(
        dataset.analyzer, workers=workers, analyzer_factory=default_analyzer
    ).analyze_graph(graph)
    corpus_parallel_s = time.perf_counter() - t0
    # same analyses *and* same node order (order fixes index determinism)
    assert list(parallel_corpus) == list(serial_corpus)
    assert parallel_corpus == serial_corpus
    corpus_speedup = (
        corpus_serial_s / corpus_parallel_s if corpus_parallel_s > 0 else float("inf")
    )

    ss, ps = serial.build_stats, parallel.build_stats
    lines = [
        "Cold build — parallel pipeline vs serial path",
        f"dataset: scale={dataset.scale.value} seed={dataset.seed} "
        f"({ss.nodes} nodes, {ss.indexed} indexed), "
        f"{cores} cores, {workers} workers",
        "",
        f"serial cold build:    {serial_s:8.3f}s  ({ss.render()})",
        f"parallel cold build:  {parallel_s:8.3f}s  ({ps.render()})",
        f"cold-build speedup:   {speedup:8.2f}x",
        "",
        f"serial corpus analysis:    {corpus_serial_s:8.3f}s "
        f"({len(serial_corpus)} nodes)",
        f"parallel corpus analysis:  {corpus_parallel_s:8.3f}s",
        f"corpus-analysis speedup:   {corpus_speedup:8.2f}x",
        "",
        f"rankings identical over {len(queries)} queries: yes",
    ]
    save_result("build", "\n".join(lines))
    save_json(
        "build",
        dataset,
        {
            "workers": workers,
            "serial": {**ss.as_dict(), "wall_s": serial_s},
            "parallel": {**ps.as_dict(), "wall_s": parallel_s},
            "cold_build_speedup": speedup,
            "corpus_analysis": {
                "nodes": len(serial_corpus),
                "serial_s": corpus_serial_s,
                "parallel_s": corpus_parallel_s,
                "speedup": corpus_speedup,
            },
            "rankings_identical": True,
        },
    )

    # the ≥2x target needs real parallelism: only enforce it when the
    # machine has ≥4 cores and the build actually used ≥4 workers
    if cores >= 4 and workers >= 4:
        assert speedup >= 2.0, (
            f"parallel cold build ({parallel_s:.3f}s, {workers} workers) "
            f"not ≥2x faster than serial ({serial_s:.3f}s) on {cores} cores"
        )
