"""Query-engine benchmark: object reference path vs columnar fast path
vs block-max pruned evaluation.

Measures the three claims the engines make:

* **equivalence** — all three engines return byte-identical rankings for
  the full query set, across absolute, fractional, and disabled windows
  (asserted unconditionally, at every scale), and pruned evaluation
  never silently falls back for an absolute window;
* **columnar throughput** — the columnar engine must answer uncached
  queries at ≥2× the object path's QPS;
* **pruned throughput** — with the Eq. 1 window at 10, block-max
  pruning must evaluate queries at ≥1.5× the exhaustive columnar rate
  while skipping a nonzero fraction of candidate blocks.

The QPS thresholds are asserted on machines with ≥4 cores, where timing
noise is low enough to hold them; the measured numbers are always
recorded. Service-level rates (analyzer + Eq. 3 included) and
engine-level rates (pre-analyzed queries, scoring only — where pruning's
savings actually live) both go to
``benchmarks/results/BENCH_query.json`` in the shared machine-readable
schema (see ``conftest.save_json``) plus a rendered text report.

The benchmark config pins ``window=10``: pruning can only skip blocks
whose upper bound cannot reach the top-``window`` floor, so a window
comparable to the matched-document count (e.g. the config default of 100
at the tiny scale) leaves almost nothing to skip — the interesting
serving regime is a window well below the match count.
"""

from __future__ import annotations

import os
import time

from repro.core.config import FinderConfig
from repro.core.service import ExpertSearchService

#: timed service-level passes over the query set (every pass uncached)
_ROUNDS = 15
#: interleaved engine-level rounds; best-of to shed scheduler noise
_ENGINE_ROUNDS = 9
#: the Eq. 1 window under test (see module docstring)
_WINDOW = 10


def bench_query(ctx, save_result, save_json):
    dataset = ctx.dataset
    queries = list(dataset.queries)
    # the runner caches finders per (platform, distance, ...) ignoring
    # window, so the window under test is passed per call, not baked in
    finder = ctx.runner.finder(None, FinderConfig())

    # equivalence first, and unconditionally: a fast path is only a fast
    # path if it returns the reference ranking bit for bit — across
    # window shapes, including the fractional/None shapes the pruned
    # mode must route to its exhaustive fallback
    windows = (_WINDOW, 5, 1000, 0.25, None)
    rankings: dict[str, list] = {}
    for engine in ("object", "columnar", "columnar-pruned"):
        finder.engine = engine
        rankings[engine] = [
            finder.find_experts(need, window=window)
            for need in queries
            for window in windows
        ]
    assert rankings["columnar"] == rankings["object"], (
        "columnar ranking diverged from object path"
    )
    assert rankings["columnar-pruned"] == rankings["object"], (
        "pruned ranking diverged from object path"
    )
    # loud failure on silent fallback: every absolute window must have
    # taken the block-max path, every fractional/None one the fallback
    pstats = finder.pruning_stats
    absolute = sum(1 for w in windows if type(w) is int) * len(queries)
    fractional = len(queries) * len(windows) - absolute
    assert pstats.pruned_queries == absolute, (
        f"{absolute - pstats.pruned_queries} absolute-window queries "
        f"silently fell back to exhaustive evaluation"
    )
    assert pstats.fallback_queries == fractional

    def measure(engine: str) -> dict:
        finder.engine = engine
        if engine != "object":
            finder.query_engine()  # compile outside the timed region
        service = ExpertSearchService(finder, cache_size=0)  # every query a miss
        service.find_experts_batch(queries, top_k=10, window=_WINDOW)  # warm
        t0 = time.perf_counter()
        for _ in range(_ROUNDS):
            service.find_experts_batch(queries, top_k=10, window=_WINDOW)
        elapsed = time.perf_counter() - t0
        stats = service.stats
        return {
            "uncached_qps": len(queries) * _ROUNDS / elapsed,
            "p50_latency_s": stats.p50_latency,
            "p95_latency_s": stats.p95_latency,
        }

    object_m = measure("object")
    columnar_m = measure("columnar")
    pruned_m = measure("columnar-pruned")
    speedup = columnar_m["uncached_qps"] / object_m["uncached_qps"]

    # engine-level timing: pre-analyzed queries, scoring only. The
    # service rate above buries pruning's savings under the per-query
    # analyzer cost; this is the rate at which the engines themselves
    # evaluate Eq. 1-3. Rounds interleave the two modes so drift hits
    # both alike, and best-of sheds scheduler noise.
    engine = finder.query_engine()
    analyzed = [
        finder._analyzer.analyze("__query__", need.text, language="en")
        for need in queries
    ]
    for query in analyzed:  # build pruned block records outside timing
        engine.find_experts(query, alpha=0.6, window=_WINDOW, pruned=True)

    def engine_pass(pruned: bool) -> float:
        t0 = time.perf_counter()
        for query in analyzed:
            engine.find_experts(
                query, alpha=0.6, window=_WINDOW, top_k=10, pruned=pruned
            )
        return time.perf_counter() - t0

    best_exhaustive = best_pruned = float("inf")
    for _ in range(_ENGINE_ROUNDS):
        best_exhaustive = min(best_exhaustive, engine_pass(False))
        best_pruned = min(best_pruned, engine_pass(True))
    engine_columnar_qps = len(analyzed) / best_exhaustive
    engine_pruned_qps = len(analyzed) / best_pruned
    pruned_speedup = engine_pruned_qps / engine_columnar_qps
    skip_rate = engine.pruning_stats.skip_rate

    lines = [
        "Query engines — object reference vs columnar vs block-max pruned",
        f"dataset: scale={dataset.scale.value} seed={dataset.seed} "
        f"({engine.document_count} docs, {engine.candidate_count} candidates, "
        f"{len(queries)} queries x {_ROUNDS} uncached rounds, "
        f"window={_WINDOW})",
        "",
        "service level (analyze + score + rank):",
        f"object   (reference): {object_m['uncached_qps']:8.0f} q/s   "
        f"p50 {object_m['p50_latency_s'] * 1e6:7.1f}µs   "
        f"p95 {object_m['p95_latency_s'] * 1e6:7.1f}µs",
        f"columnar (compiled):  {columnar_m['uncached_qps']:8.0f} q/s   "
        f"p50 {columnar_m['p50_latency_s'] * 1e6:7.1f}µs   "
        f"p95 {columnar_m['p95_latency_s'] * 1e6:7.1f}µs",
        f"columnar-pruned:      {pruned_m['uncached_qps']:8.0f} q/s   "
        f"p50 {pruned_m['p50_latency_s'] * 1e6:7.1f}µs   "
        f"p95 {pruned_m['p95_latency_s'] * 1e6:7.1f}µs",
        f"columnar vs object:   {speedup:7.2f}x",
        "",
        "engine level (pre-analyzed, scoring only):",
        f"columnar exhaustive:  {engine_columnar_qps:8.0f} q/s",
        f"columnar pruned:      {engine_pruned_qps:8.0f} q/s   "
        f"({skip_rate:.0%} of blocks skipped)",
        f"pruned vs exhaustive: {pruned_speedup:7.2f}x",
    ]
    save_result("query", "\n".join(lines))
    save_json(
        "query",
        dataset,
        {
            "queries": len(queries),
            "rounds": _ROUNDS,
            "window": _WINDOW,
            "documents": engine.document_count,
            "candidates": engine.candidate_count,
            "object_uncached_qps": object_m["uncached_qps"],
            "object_p50_latency_s": object_m["p50_latency_s"],
            "object_p95_latency_s": object_m["p95_latency_s"],
            "columnar_uncached_qps": columnar_m["uncached_qps"],
            "columnar_p50_latency_s": columnar_m["p50_latency_s"],
            "columnar_p95_latency_s": columnar_m["p95_latency_s"],
            "columnar_speedup": speedup,
            "pruned_uncached_qps": pruned_m["uncached_qps"],
            "pruned_p50_latency_s": pruned_m["p50_latency_s"],
            "pruned_p95_latency_s": pruned_m["p95_latency_s"],
            "engine_columnar_qps": engine_columnar_qps,
            "engine_pruned_qps": engine_pruned_qps,
            "pruned_speedup": pruned_speedup,
            "block_skip_rate": skip_rate,
            "block_span": engine.block_span,
        },
    )

    finder.engine = "columnar"  # the finder is shared across benchmarks

    assert skip_rate > 0.0, "pruned mode never skipped a block"
    cpu_count = os.cpu_count() or 1
    if cpu_count >= 4:
        assert speedup >= 2.0, (
            f"columnar ({columnar_m['uncached_qps']:.0f} q/s) not ≥2x object "
            f"({object_m['uncached_qps']:.0f} q/s)"
        )
        assert pruned_speedup >= 1.5, (
            f"pruned ({engine_pruned_qps:.0f} q/s) not ≥1.5x exhaustive "
            f"({engine_columnar_qps:.0f} q/s)"
        )
