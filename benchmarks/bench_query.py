"""Query-engine benchmark: columnar fast path vs object reference path.

Measures the two claims the columnar engine makes:

* **equivalence** — both engines return byte-identical rankings for the
  full query set (asserted unconditionally, at every scale);
* **throughput** — the columnar engine must answer uncached queries at
  ≥2× the object path's QPS (asserted on machines with ≥4 cores, where
  timing noise is low enough to hold a threshold; the measured numbers
  are always recorded).

Uncached QPS and p50/p95 latencies for both engines go to
``benchmarks/results/BENCH_query.json`` in the shared machine-readable
schema (see ``conftest.save_json``) plus a rendered text report.
"""

from __future__ import annotations

import os
import time

from repro.core.config import FinderConfig
from repro.core.service import ExpertSearchService

#: timed passes over the query set (every pass uncached: cache_size=0)
_ROUNDS = 15


def bench_query(ctx, save_result, save_json):
    dataset = ctx.dataset
    queries = list(dataset.queries)
    finder = ctx.runner.finder(None, FinderConfig())

    # equivalence first, and unconditionally: the fast path is only a
    # fast path if it returns the reference ranking bit for bit
    finder.engine = "object"
    reference = [finder.find_experts(need) for need in queries]
    finder.engine = "columnar"
    columnar = [finder.find_experts(need) for need in queries]
    assert columnar == reference, "columnar ranking diverged from object path"

    def measure(engine: str) -> dict:
        finder.engine = engine
        if engine == "columnar":
            finder.query_engine()  # compile outside the timed region
        service = ExpertSearchService(finder, cache_size=0)  # every query a miss
        service.find_experts_batch(queries, top_k=10)  # warm caches/JIT-free
        t0 = time.perf_counter()
        for _ in range(_ROUNDS):
            service.find_experts_batch(queries, top_k=10)
        elapsed = time.perf_counter() - t0
        stats = service.stats
        return {
            "uncached_qps": len(queries) * _ROUNDS / elapsed,
            "p50_latency_s": stats.p50_latency,
            "p95_latency_s": stats.p95_latency,
        }

    object_m = measure("object")
    columnar_m = measure("columnar")
    speedup = columnar_m["uncached_qps"] / object_m["uncached_qps"]

    engine = finder.query_engine()
    lines = [
        "Query engine — columnar fast path vs object reference path",
        f"dataset: scale={dataset.scale.value} seed={dataset.seed} "
        f"({engine.document_count} docs, {engine.candidate_count} candidates, "
        f"{len(queries)} queries x {_ROUNDS} uncached rounds)",
        "",
        f"object   (reference): {object_m['uncached_qps']:8.0f} q/s   "
        f"p50 {object_m['p50_latency_s'] * 1e6:7.1f}µs   "
        f"p95 {object_m['p95_latency_s'] * 1e6:7.1f}µs",
        f"columnar (compiled):  {columnar_m['uncached_qps']:8.0f} q/s   "
        f"p50 {columnar_m['p50_latency_s'] * 1e6:7.1f}µs   "
        f"p95 {columnar_m['p95_latency_s'] * 1e6:7.1f}µs",
        f"speedup:              {speedup:7.2f}x",
    ]
    save_result("query", "\n".join(lines))
    save_json(
        "query",
        dataset,
        {
            "queries": len(queries),
            "rounds": _ROUNDS,
            "documents": engine.document_count,
            "candidates": engine.candidate_count,
            "object_uncached_qps": object_m["uncached_qps"],
            "object_p50_latency_s": object_m["p50_latency_s"],
            "object_p95_latency_s": object_m["p95_latency_s"],
            "columnar_uncached_qps": columnar_m["uncached_qps"],
            "columnar_p50_latency_s": columnar_m["p50_latency_s"],
            "columnar_p95_latency_s": columnar_m["p95_latency_s"],
            "columnar_speedup": speedup,
        },
    )

    cpu_count = os.cpu_count() or 1
    if cpu_count >= 4:
        assert speedup >= 2.0, (
            f"columnar ({columnar_m['uncached_qps']:.0f} q/s) not ≥2x object "
            f"({object_m['uncached_qps']:.0f} q/s)"
        )
