"""Fig. 5 — dataset distribution report.

Regenerates the dataset statistics the paper reports in Fig. 5a/5b and
checks their shape: LinkedIn has the fewest resources, Twitter has the
most distance-1 resources, ~17 experts per domain with average
expertise near 3.5, and Location is the thinnest domain.
"""

from repro.experiments import fig5_dataset


def bench_fig5_dataset(benchmark, ctx, save_result):
    result = benchmark.pedantic(fig5_dataset.run, args=(ctx,), rounds=1, iterations=1)
    save_result("fig5_dataset", result.render())

    totals = {d.network: d.total_resources for d in result.distributions}
    dist1 = {d.network: d.resources_by_distance[1] for d in result.distributions}

    # paper shape: LinkedIn has by far the fewest resources
    assert totals["LI"] == min(totals.values())
    # paper shape: Twitter provides the most distance-1 resources
    assert dist1["TW"] == max(dist1.values())
    # paper numbers: "on average, each domain featured 17 experts, with
    # an average expertise level of 3.57" — we check the same region
    # (the tiny test scale has fewer people, so only check at 40)
    if result.distributions[0].candidates == 40:
        assert 12 <= result.avg_experts_per_domain <= 22
        assert 3.0 <= result.avg_expertise <= 4.2
    # paper shape: Location is the domain with the fewest experts
    counts = {s.domain: s.expert_count for s in result.domain_stats}
    assert counts["location"] == min(counts.values())
