"""Fig. 11 — differential number of retrieved experts.

Regenerates the per-query Δ(retrieved − expected experts) series for
distances 0, 1, 2 and checks the paper's reading: the amount of
considered resources (growing with distance) drives the system's
ability to retrieve experts — strongly negative Δ at distance 0,
rising with distance.
"""

from repro.experiments import fig11_delta


def bench_fig11_delta(benchmark, ctx, save_result):
    result = benchmark.pedantic(fig11_delta.run, args=(ctx,), rounds=1, iterations=1)
    save_result("fig11_delta", result.render())

    # paper shape: average Δ grows with the resource distance
    assert result.average_delta(0) < result.average_delta(1)
    assert result.average_delta(1) <= result.average_delta(2)

    # distance 0 under-retrieves badly: profiles barely match queries
    assert result.average_delta(0) < 0

    # at distance 2 a number of queries over-retrieve (the paper notes 5
    # clearly over-represented queries) while some still under-retrieve
    assert result.over_represented(2) >= 1
