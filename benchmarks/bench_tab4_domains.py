"""Table 4 — per-domain breakdown.

Regenerates the 7-domain × 4-network × 3-distance grid (MAP, MRR,
NDCG@10) and checks the paper's domain-level findings: Twitter leads
the technical domains at distance 2, LinkedIn is competitive at
distance 0 only for computer engineering, and entertainment domains
get strong Facebook figures.
"""

from repro.experiments import tab4_domains


def bench_tab4_domains(benchmark, ctx, save_result):
    result = benchmark.pedantic(tab4_domains.run, args=(ctx,), rounds=1, iterations=1)
    save_result("tab4_domains", result.render())

    # paper shape: Twitter achieves good figures at distance 2 in the
    # technical domains — at least computer engineering and one of
    # science/sport/technology must be TW-led
    tw_led = [
        domain
        for domain in ("computer_engineering", "science", "sport", "technology_games")
        if result.best_network(domain, 2) == "TW"
    ]
    assert len(tw_led) >= 2

    # paper shape: LinkedIn's distance-0 career profiles shine on
    # computer engineering — far above its own entertainment figures
    li_ce = result.summary("computer_engineering", "LI", 0).map
    li_movies = result.summary("movies_tv", "LI", 0).map
    assert li_ce > li_movies

    # and LinkedIn@0 computer engineering beats Facebook@0 there
    fb_ce = result.summary("computer_engineering", "FB", 0).map
    assert li_ce > fb_ce

    # entertainment domains: Facebook strong at distance 1
    # (the platform bias the paper attributes to its social usage)
    fb_entertainment = [
        result.summary(d, "FB", 1).map for d in ("movies_tv", "music", "location")
    ]
    li_entertainment = [
        result.summary(d, "LI", 1).map for d in ("movies_tv", "music", "location")
    ]
    assert sum(fb_entertainment) > sum(li_entertainment)
