"""Streaming benchmark: segmented index vs monolithic invalidate-recompile.

Measures the two claims the segmented index makes:

* **equivalence** — after every streamed observe, the segmented finder
  returns byte-identical rankings to a monolithic finder fed the same
  stream, over the full query set (asserted unconditionally, at every
  scale);
* **steady-state streaming** — an observe followed by an uncached query
  must be cheaper on the segmented finder, because the monolithic path
  throws away its compiled columnar engine on every indexed observe and
  recompiles the whole collection on the next query, while the segmented
  path only appends to its write buffer (asserted on machines with ≥4
  cores; the measured numbers are always recorded).

Observe latency, observe→query latency, and post-stream uncached QPS for
both finders go to ``benchmarks/results/BENCH_streaming.json`` in the
shared machine-readable schema plus a rendered text report.
"""

from __future__ import annotations

import os
import time

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.core.service import ExpertSearchService

#: streamed resources (every 5th is Italian → evidence-only)
_EVENTS = 40

#: segmented write buffer seals after this many streamed resources
_SEAL_THRESHOLD = 16

#: timed uncached passes over the query set after the stream
_ROUNDS = 5


def _percentile(values: list[float], percentile: float) -> float:
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * percentile // 100))  # ceil
    return ordered[int(rank) - 1]


def bench_streaming(ctx, save_result, save_json):
    dataset = ctx.dataset
    queries = list(dataset.queries)
    candidates = list(dataset.candidates_for(None))
    config = FinderConfig()

    # fresh finders — the session-cached ctx.runner.finder is shared with
    # other benchmarks and must not absorb this stream
    def build(**kwargs):
        return ExpertFinder.build(
            dataset.merged_graph,
            dataset.candidates_for(None),
            dataset.analyzer,
            config,
            corpus=dataset.corpus,
            **kwargs,
        )

    monolithic = build()
    segmented = build(index_mode="segmented", seal_threshold=_SEAL_THRESHOLD)
    monolithic.query_engine()  # start from a compiled steady state

    events = []
    for i in range(_EVENTS):
        italian = i % 5 == 4
        text = (
            "questa e una bella giornata per andare in piscina con gli amici"
            if italian
            else f"streamed update number {i} about {queries[i % len(queries)]}"
        )
        events.append(
            (
                f"stream:{i}",
                text,
                [(candidates[i % len(candidates)], 1 + i % 2)],
                "it" if italian else "en",
            )
        )

    seg_observe, mono_observe = [], []
    seg_oq, mono_oq = [], []
    for i, (rid, text, supporters, language) in enumerate(events):
        need = queries[i % len(queries)]

        t0 = time.perf_counter()
        segmented.observe(rid, text, supporters, language=language)
        t1 = time.perf_counter()
        segmented.find_experts(need)
        t2 = time.perf_counter()
        seg_observe.append(t1 - t0)
        seg_oq.append(t2 - t0)

        t0 = time.perf_counter()
        monolithic.observe(rid, text, supporters, language=language)
        t1 = time.perf_counter()
        monolithic.find_experts(need)  # pays the full recompile when indexed
        t2 = time.perf_counter()
        mono_observe.append(t1 - t0)
        mono_oq.append(t2 - t0)

        # equivalence, unconditionally and at every intermediate state:
        # the segmented index is only an optimization if its rankings
        # match the monolithic finder bit for bit after any interleaving
        for check in queries:
            assert segmented.find_experts(check) == monolithic.find_experts(
                check
            ), f"segmented ranking diverged after {rid} on {check!r}"

    def measure_qps(finder) -> float:
        service = ExpertSearchService(finder, cache_size=0)  # every query a miss
        service.find_experts_batch(queries, top_k=10)  # warm-up pass
        t0 = time.perf_counter()
        for _ in range(_ROUNDS):
            service.find_experts_batch(queries, top_k=10)
        return len(queries) * _ROUNDS / (time.perf_counter() - t0)

    seg_qps = measure_qps(segmented)
    mono_qps = measure_qps(monolithic)
    stats = segmented.index_stats
    seg_oq_p50 = _percentile(seg_oq, 50)
    mono_oq_p50 = _percentile(mono_oq, 50)
    speedup = mono_oq_p50 / seg_oq_p50

    lines = [
        "Streaming — segmented index vs monolithic invalidate-recompile",
        f"dataset: scale={dataset.scale.value} seed={dataset.seed} "
        f"({segmented.indexed_resources} docs, {len(candidates)} candidates, "
        f"{_EVENTS} observes, {len(queries)} queries)",
        f"segments after stream: {stats.segments} live, {stats.buffered} "
        f"buffered, {stats.seals} seals, {stats.compactions} compactions",
        "",
        f"observe p50:        segmented {_percentile(seg_observe, 50) * 1e6:8.1f}µs"
        f"   monolithic {_percentile(mono_observe, 50) * 1e6:8.1f}µs",
        f"observe+query p50:  segmented {seg_oq_p50 * 1e3:8.2f}ms"
        f"   monolithic {mono_oq_p50 * 1e3:8.2f}ms   ({speedup:.1f}x)",
        f"observe+query p95:  segmented {_percentile(seg_oq, 95) * 1e3:8.2f}ms"
        f"   monolithic {_percentile(mono_oq, 95) * 1e3:8.2f}ms",
        f"uncached q/s after: segmented {seg_qps:8.0f}   monolithic {mono_qps:8.0f}",
    ]
    save_result("streaming", "\n".join(lines))
    save_json(
        "streaming",
        dataset,
        {
            "events": _EVENTS,
            "queries": len(queries),
            "rounds": _ROUNDS,
            "seal_threshold": _SEAL_THRESHOLD,
            "segments": stats.segments,
            "seals": stats.seals,
            "compactions": stats.compactions,
            "segmented_observe_p50_s": _percentile(seg_observe, 50),
            "segmented_observe_p95_s": _percentile(seg_observe, 95),
            "monolithic_observe_p50_s": _percentile(mono_observe, 50),
            "monolithic_observe_p95_s": _percentile(mono_observe, 95),
            "segmented_observe_query_p50_s": seg_oq_p50,
            "segmented_observe_query_p95_s": _percentile(seg_oq, 95),
            "monolithic_observe_query_p50_s": mono_oq_p50,
            "monolithic_observe_query_p95_s": _percentile(mono_oq, 95),
            "segmented_uncached_qps": seg_qps,
            "monolithic_uncached_qps": mono_qps,
            "observe_query_speedup": speedup,
        },
    )

    cpu_count = os.cpu_count() or 1
    if cpu_count >= 4:
        assert seg_oq_p50 < mono_oq_p50, (
            f"segmented observe→query p50 ({seg_oq_p50 * 1e3:.2f}ms) not below "
            f"monolithic-invalidate ({mono_oq_p50 * 1e3:.2f}ms)"
        )
