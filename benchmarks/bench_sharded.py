"""Sharded scatter-gather benchmark: uncached QPS across shard counts.

Measures the claims candidate sharding makes:

* **equivalence** — at every shard count the sharded finder returns
  rankings byte-identical to the unsharded columnar path, serially and
  through the scatter pool, for absolute/fractional/disabled windows,
  and composed with block-max pruning (asserted unconditionally, at
  every scale);
* **scaling** — uncached batch QPS through the persistent worker pool
  must reach ≥1.7× at 4 shards vs 1 shard (asserted on hosts with ≥4
  cores, where the workers actually get their own cores; the measured
  numbers are always recorded — the 1-shard baseline runs through a
  1-worker pool, so the comparison isolates parallelism, not pipe
  overhead);
* **shared pages** — scatter workers open the mmap-able v3 snapshot
  read-only, so a reader plus its worker pool must not hold K private
  copies of the shard columns: on little-endian hosts the loaded shard
  columns are asserted to be zero-copy ``memoryview``s (a byteswap copy
  would silently privatize every page), and the private-RSS totals of
  one and two independent reader+pool groups are reported from
  ``smaps_rollup`` where available.

The workload is the ``xl`` scale's streaming generator
(:mod:`repro.synthetic.stream`) truncated per ``REPRO_SCALE``, so both
the sharded and unsharded builds consume byte-identical streams without
materializing a dataset. Results go to
``benchmarks/results/sharded.txt`` and ``BENCH_sharded.json``.
"""

from __future__ import annotations

import os
import sys
import time

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.core.service import ExpertSearchService
from repro.synthetic.stream import (
    stream_candidates,
    stream_queries,
    stream_resources,
)

#: shard counts under test (1 is the pooled baseline)
_SHARD_COUNTS = (1, 2, 4)
#: the Eq. 1 window for the QPS runs (well under the match count, so
#: block-max pruning has something to skip — see bench_query)
_WINDOW = 10
#: window shapes every shard count must reproduce exactly
_EQUIV_WINDOWS = (_WINDOW, 5, 0.5, None)
#: timed uncached passes per measurement window, best-of repeats
_ROUNDS = 3
_REPEATS = 3
#: stream size per scale: (candidates, resources, queries)
_STREAM_SIZES = {
    "tiny": (10, 600, 24),
    "small": (40, 8_000, 40),
    "paper": (80, 30_000, 40),
}
#: QPS floor for 4 shards vs 1 shard on >= _GATE_CORES cores
_SPEEDUP_FLOOR = 1.7
_GATE_CORES = 4


def _build(candidates, analyzer, resources, seed, shards=None):
    return ExpertFinder.from_stream(
        candidates,
        stream_resources(candidates, resources, seed=seed),
        analyzer,
        FinderConfig(window=None),
        shards=shards,
    )


def _measure_qps(finder, queries):
    """Best-of uncached batch QPS through the live scatter pool."""
    best = 0.0
    service = ExpertSearchService(finder, cache_size=0)
    service.find_experts_batch(queries, window=_WINDOW)  # warm
    for _ in range(_REPEATS):
        t0 = time.perf_counter()
        for _ in range(_ROUNDS):
            service.find_experts_batch(queries, window=_WINDOW)
        elapsed = time.perf_counter() - t0
        best = max(best, _ROUNDS * len(queries) / elapsed)
    return best, service.stats.batch_parallelism


def _columns_zero_copy(finder):
    """True when every loaded shard column is a zero-copy memoryview
    (only meaningful on little-endian hosts, where the mmap path must
    never fall back to a byteswapped array copy)."""
    for shard in finder.sharded_index.iter_shards():
        for segment in shard.iter_segments():
            for cols in (segment._term_cols, segment._entity_cols):
                for views in cols.values():
                    if not all(isinstance(v, memoryview) for v in views):
                        return False
    return True


def _private_kb_of(pid):
    private_kb = 0
    with open(f"/proc/{pid}/smaps_rollup", encoding="ascii") as fh:
        for line in fh:
            if line.startswith(("Private_Clean:", "Private_Dirty:")):
                private_kb += int(line.split()[1])
    return private_kb


def _group_private_kb(directory, analyzer, query):
    """Fork one reader: load the sharded snapshot, start its scatter
    pool, answer one query, and report the private RSS (kB) of the
    reader plus every pool worker; -1 without smaps_rollup."""
    if not os.path.exists("/proc/self/smaps_rollup"):
        return -1
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # child: measure, write one line, hard-exit
        try:
            os.close(read_fd)
            finder = ExpertFinder.load(directory, analyzer)
            finder.engine = "columnar"
            executor = finder.start_scatter_pool()
            finder.find_experts(query, window=_WINDOW)
            total = _private_kb_of("self")
            for worker_pid in executor.pids:
                total += _private_kb_of(worker_pid)
            finder.close_scatter_pool()
            os.write(write_fd, f"{total}\n".encode("ascii"))
        finally:
            os._exit(0)
    os.close(write_fd)
    try:
        with os.fdopen(read_fd) as fh:
            line = fh.readline().strip()
    finally:
        os.waitpid(pid, 0)
    return int(line) if line else -1


def bench_sharded(ctx, save_result, save_json, tmp_path):
    dataset = ctx.dataset
    n_cands, n_resources, n_queries = _STREAM_SIZES[dataset.scale.value]
    analyzer = dataset.analyzer
    seed = dataset.seed
    candidates = stream_candidates(n_cands)
    queries = stream_queries(n_queries, seed=seed)

    reference = _build(candidates, analyzer, n_resources, seed)
    reference.engine = "columnar"
    expected = {
        window: [reference.find_experts(q, window=window) for q in queries]
        for window in _EQUIV_WINDOWS
    }

    qps: dict[int, float] = {}
    parallelism: dict[int, float] = {}
    pruned_qps: dict[int, float] = {}
    skip_rate: dict[int, float] = {}
    for shards in _SHARD_COUNTS:
        finder = _build(candidates, analyzer, n_resources, seed, shards=shards)

        # equivalence first, and unconditionally: serial coordinator,
        # then the scatter pool, then pruning through the pool — all
        # byte-identical to the unsharded columnar rankings
        for engine in ("columnar", "columnar-pruned"):
            finder.engine = engine
            for window, want in expected.items():
                got = [finder.find_experts(q, window=window) for q in queries]
                assert got == want, (
                    f"shards={shards} engine={engine} window={window!r} "
                    f"diverged from the unsharded columnar ranking"
                )
        finder.engine = "columnar"
        finder.start_scatter_pool()
        try:
            for window, want in expected.items():
                got = [finder.find_experts(q, window=window) for q in queries]
                assert got == want, (
                    f"shards={shards} scatter pool window={window!r} "
                    f"diverged from the unsharded columnar ranking"
                )
            qps[shards], parallelism[shards] = _measure_qps(finder, queries)

            # composed with block-max pruning: per-shard walks against
            # the shared global threshold, still byte-identical
            finder.engine = "columnar-pruned"
            before = finder.pruning_stats
            scanned0, skipped0 = before.blocks_scanned, before.blocks_skipped
            got = [finder.find_experts(q, window=_WINDOW) for q in queries]
            assert got == expected[_WINDOW]
            pruned_qps[shards], _ = _measure_qps(finder, queries)
            after = finder.pruning_stats
            scanned = after.blocks_scanned - scanned0
            skipped = after.blocks_skipped - skipped0
            total = scanned + skipped
            skip_rate[shards] = skipped / total if total else 0.0
        finally:
            finder.close_scatter_pool()

    speedup = qps[4] / qps[1]
    if (os.cpu_count() or 1) >= _GATE_CORES:
        assert speedup >= _SPEEDUP_FLOOR, (
            f"4-shard scatter reached only {speedup:.2f}x the 1-shard "
            f"pooled QPS ({qps[4]:.0f} vs {qps[1]:.0f} q/s); the floor "
            f"is {_SPEEDUP_FLOOR}x"
        )

    # shared pages: snapshot the 4-shard finder, check the mapped
    # columns stay zero-copy, and report reader+pool private RSS
    snap_dir = tmp_path / "sharded-snap"
    sharded4 = _build(candidates, analyzer, n_resources, seed, shards=4)
    sharded4.save(snap_dir)
    loaded = ExpertFinder.load(snap_dir, analyzer)
    zero_copy = _columns_zero_copy(loaded)
    if sys.byteorder == "little":
        assert zero_copy, (
            "loaded shard columns are not zero-copy memoryviews on a "
            "little-endian host — something is privately copying the "
            "mmap-ed snapshot pages"
        )
    loaded.engine = "columnar"
    for i, q in enumerate(queries):
        assert loaded.find_experts(q, window=_WINDOW) == expected[_WINDOW][i]
    shard_bytes = sum(
        p.stat().st_size for p in snap_dir.rglob("shard-*.bin")
    )
    one_group_kb = _group_private_kb(snap_dir, analyzer, queries[0])
    two_group_kb = [
        _group_private_kb(snap_dir, analyzer, queries[0]) for _ in range(2)
    ]
    have_memory = one_group_kb >= 0 and all(kb >= 0 for kb in two_group_kb)

    lines = [
        "Sharded scatter-gather — uncached QPS across shard counts",
        f"stream: {n_cands} candidates, {n_resources} resources, "
        f"{n_queries} queries (scale={dataset.scale.value} seed={seed}), "
        f"window={_WINDOW}",
        "",
    ]
    for shards in _SHARD_COUNTS:
        lines.append(
            f"shards={shards}:  {qps[shards]:8.0f} q/s uncached "
            f"(pruned {pruned_qps[shards]:8.0f} q/s, "
            f"{skip_rate[shards]:4.0%} blocks skipped, "
            f"pipeline depth {parallelism[shards]:.1f})"
        )
    gate = (
        "asserted" if (os.cpu_count() or 1) >= _GATE_CORES
        else f"recorded only ({os.cpu_count()} cores < {_GATE_CORES})"
    )
    lines += [
        "",
        f"speedup 4 vs 1 shards:  {speedup:.2f}x  "
        f"(floor {_SPEEDUP_FLOOR}x, {gate})",
        "rankings: sharded == unsharded columnar (all shard counts, "
        "all windows, serial + pool + pruned)",
        f"mapped shard columns zero-copy: {zero_copy} "
        f"({shard_bytes / 1024:.1f} KiB in shard bins)",
    ]
    if have_memory:
        lines += [
            f"private RSS, 1 reader+pool:  {one_group_kb:8d} kB",
            f"private RSS, 2 readers+pools:{sum(two_group_kb):8d} kB",
        ]
    report = "\n".join(lines)
    save_result("sharded", report)
    save_json(
        "sharded",
        dataset,
        {
            "candidates": n_cands,
            "resources": n_resources,
            "queries": n_queries,
            "window": _WINDOW,
            **{f"qps_shards_{k}": qps[k] for k in _SHARD_COUNTS},
            **{f"pruned_qps_shards_{k}": pruned_qps[k] for k in _SHARD_COUNTS},
            **{f"block_skip_rate_shards_{k}": skip_rate[k] for k in _SHARD_COUNTS},
            **{f"batch_parallelism_shards_{k}": parallelism[k] for k in _SHARD_COUNTS},
            "speedup_4_vs_1": speedup,
            "speedup_floor": _SPEEDUP_FLOOR,
            "speedup_gated": (os.cpu_count() or 1) >= _GATE_CORES,
            "shard_bytes": shard_bytes,
            "columns_zero_copy": zero_copy,
            "one_group_private_kb": one_group_kb if have_memory else None,
            "two_group_private_kb": sum(two_group_kb) if have_memory else None,
            "rankings_identical": True,
        },
    )
