"""Fig. 6 — window-size sweep.

Regenerates the four metric curves over window sizes of 1%–10% of the
matching resources (α = 0.5, distances 1 and 2) plus the fixed
100-resource setting, and checks the paper's shape: MAP and NDCG grow
with the window, while MRR and NDCG@10 stay comparatively flat.
"""

from repro.experiments import fig6_window
from repro.experiments.fig6_window import WINDOW_FRACTIONS


def bench_fig6_window(benchmark, ctx, save_result):
    result = benchmark.pedantic(fig6_window.run, args=(ctx,), rounds=1, iterations=1)
    save_result("fig6_window", result.render())

    for distance in (1, 2):
        map_series = result.series("map", distance)
        ndcg_series = result.series("ndcg", distance)
        mrr_series = result.series("mrr", distance)

        # paper shape: MAP and NDCG increase with the window size
        assert map_series[-1] > map_series[0]
        assert ndcg_series[-1] > ndcg_series[0]

        # paper shape: MRR is not significantly affected — its total
        # swing stays well below the MAP growth
        mrr_swing = max(mrr_series) - min(mrr_series)
        map_growth = map_series[-1] - map_series[0]
        assert mrr_swing < map_growth + 0.25

    # sanity: the sweep covered the documented fractions
    assert len(result.series("map", 1)) == len(WINDOW_FRACTIONS)
    # the adopted fixed window (100 resources) performs at least near the
    # best swept fraction on MAP at distance 2
    best_map = max(result.series("map", 2))
    assert result.fixed_100[2].map >= 0.5 * best_map
