"""Extension bench: the paper's system vs. the literature baselines.

Compares, on the same dataset and query set:

* the paper's system (Eq. 1–3, final parameters);
* Balog Model 1 and Model 2 (the TREC enterprise expert-finding
  standard, the paper's reference [3]) using the same Table-1 evidence;
* the classic profile-only TF-IDF matcher the introduction argues
  against;
* the random 20-user baseline.

Expected shape: every behaviour-based method beats random and the
profile-only matcher — the paper's central claim — while the paper's
distance-weighted aggregation is competitive with the generative
models.
"""

from repro.baselines.balog import BalogConfig, CandidateModelFinder, DocumentModelFinder
from repro.baselines.profile_tfidf import ProfileTfidfFinder
from repro.core.config import FinderConfig
from repro.evaluation.reports import metrics_table
from repro.evaluation.runner import evaluate_finder


def bench_baseline_comparison(benchmark, ctx, save_result):
    dataset = ctx.dataset

    def run_all():
        graph = dataset.merged_graph
        candidates = dataset.candidates_for(None)
        rows = {"Random": ctx.baseline}
        system = ctx.runner.finder(None, FinderConfig())
        rows["Paper (Eq. 1-3)"] = evaluate_finder(dataset, system).summary()
        for label, model in (
            ("Balog Model 1", CandidateModelFinder),
            ("Balog Model 2", DocumentModelFinder),
        ):
            finder = model.build(
                graph, candidates, dataset.analyzer, BalogConfig(),
                corpus=dataset.corpus,
            )
            rows[label] = evaluate_finder(dataset, finder).summary()
        profile = ProfileTfidfFinder.build(
            graph, candidates, dataset.analyzer, corpus=dataset.corpus
        )
        rows["Profile TF-IDF"] = evaluate_finder(dataset, profile).summary()
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_result(
        "baseline_comparison",
        metrics_table(rows, title="Extension — system vs literature baselines"),
    )

    random_map = rows["Random"].map
    # behaviour-based methods beat random
    assert rows["Paper (Eq. 1-3)"].map > random_map
    assert rows["Balog Model 1"].map > random_map
    assert rows["Balog Model 2"].map > random_map
    # the paper's central claim: behavioural trace beats static profiles
    assert rows["Paper (Eq. 1-3)"].map > rows["Profile TF-IDF"].map
    assert rows["Balog Model 1"].map > rows["Profile TF-IDF"].map
