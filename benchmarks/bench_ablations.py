"""Ablation benches for the design choices listed in DESIGN.md Sec. 5.

These quantify decisions the paper fixes without ablating: the squared
idf of Eq. 1, the absence of score normalization in Eq. 3, the linear
[0.5, 1] distance decay of wr, and the α-blend itself.
"""

from repro.experiments import ablations


def bench_ablations(benchmark, ctx, save_result):
    result = benchmark.pedantic(ablations.run, args=(ctx,), rounds=1, iterations=1)
    save_result("ablations", result.render())

    paper = result.table["paper"]

    # every variant is a valid configuration producing bounded metrics
    for summary in result.table.values():
        for value in summary.as_row():
            assert 0.0 <= value <= 1.0

    # normalizing Eq. 3 by resource count destroys the volume signal the
    # paper relies on ("direct correlation between the number of
    # resources … and the potential expertise")
    assert result.table["normalized scores"].map < paper.map

    # removing the window entirely should not beat the paper's windowed
    # setting by a large margin (the window mostly trims noise)
    assert result.table["no window"].map < paper.map + 0.1

    # the blended α=0.6 is at least as good as the entity-only extreme
    assert paper.map >= result.table["entities only (α=0)"].map - 0.02
