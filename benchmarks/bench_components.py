"""Micro-benchmarks of the system's hot components.

Unlike the per-figure benches (one expensive round each), these run the
classic pytest-benchmark loop to measure steady-state throughput of the
text pipeline, the entity annotator, resource retrieval, and expert
ranking — the costs that dominate a production deployment of the
system.
"""

import pytest

from repro.core.config import FinderConfig
from repro.entity.annotator import EntityAnnotator
from repro.synthetic.seeds import build_knowledge_base
from repro.textproc.pipeline import TextPipeline

SAMPLE_POSTS = [
    "just finished 30min freestyle training at the swimming pool with the team",
    "michael phelps is the best great freestyle gold medal at the olympics",
    "looking for a graphic card to play diablo 3 on my new gaming rig",
    "can anyone explain why copper is such a good conductor of electricity",
    "great concert last night the band played every song from the album",
]


@pytest.fixture(scope="module")
def pipeline():
    return TextPipeline()


@pytest.fixture(scope="module")
def annotator():
    return EntityAnnotator(build_knowledge_base())


def bench_text_pipeline(benchmark, pipeline):
    def analyze_batch():
        return [pipeline.analyze(t) for t in SAMPLE_POSTS]

    results = benchmark(analyze_batch)
    assert all(r.language == "en" for r in results)


def bench_entity_annotation(benchmark, annotator):
    def annotate_batch():
        return [annotator.annotate(t) for t in SAMPLE_POSTS]

    results = benchmark(annotate_batch)
    assert any(results)  # at least one post carries entities


def bench_query_matching(benchmark, ctx):
    finder = ctx.runner.finder(None, FinderConfig())
    need = ctx.dataset.queries[0]

    matches = benchmark(lambda: finder.match_resources(need))
    assert matches


def bench_expert_ranking(benchmark, ctx):
    finder = ctx.runner.finder(None, FinderConfig())
    need = ctx.dataset.queries[0]
    matches = finder.match_resources(need)

    ranked = benchmark(lambda: finder.rank_matches(matches))
    assert ranked


def bench_full_query(benchmark, ctx):
    finder = ctx.runner.finder(None, FinderConfig())
    need = ctx.dataset.queries[21]  # "best freestyle swimmer" domain query

    ranked = benchmark(lambda: finder.find_experts(need))
    assert ranked
