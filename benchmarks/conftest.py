"""Benchmark fixtures.

The dataset (SMALL by default — 40 people, ~15k resources; override
with ``REPRO_SCALE=tiny|small|paper``) is built once per session and
shared by every benchmark. Rendered paper-style tables are written to
``benchmarks/results/`` as each experiment completes.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.context import ExperimentContext, scale_from_env

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext.create(scale_from_env())


@pytest.fixture(scope="session")
def save_result():
    """Write an experiment's rendered text to benchmarks/results/."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
