"""Benchmark fixtures.

The dataset (SMALL by default — 40 people, ~15k resources; override
with ``REPRO_SCALE=tiny|small|paper``) is built once per session and
shared by every benchmark. Rendered paper-style tables are written to
``benchmarks/results/`` as each experiment completes; performance
benchmarks additionally emit machine-readable ``BENCH_<name>.json``
files so CI can accumulate a perf trajectory across commits.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform

import pytest

from repro.experiments.context import ExperimentContext, scale_from_env

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: schema version of the BENCH_*.json files (bump on breaking changes)
BENCH_SCHEMA_VERSION = 1


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext.create(scale_from_env())


@pytest.fixture(scope="session")
def save_result():
    """Write an experiment's rendered text to benchmarks/results/."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save


@pytest.fixture(scope="session")
def save_json():
    """Write a benchmark's machine-readable result to
    ``benchmarks/results/BENCH_<name>.json``.

    Every file shares one schema: ``benchmark`` (name), ``schema_version``,
    ``dataset`` (scale + seed), ``environment`` (cpu count + python), and a
    flat, benchmark-specific ``metrics`` mapping.
    """

    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, dataset, metrics: dict) -> None:
        payload = {
            "benchmark": name,
            "schema_version": BENCH_SCHEMA_VERSION,
            "dataset": {"scale": dataset.scale.value, "seed": dataset.seed},
            "environment": {
                "cpu_count": os.cpu_count(),
                "python": platform.python_version(),
            },
            "metrics": metrics,
        }
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {path}\n")

    return _save
