"""HTTP gateway benchmark: socket-to-socket QPS and hot-reload safety.

Drives a real :class:`~repro.serve.harness.GatewayHarness` (asyncio
HTTP/1.1 server on an ephemeral port) with concurrent keep-alive
clients and measures what the wire adds on top of the in-process
service:

* **single queries** — ``POST /v1/query`` QPS and p50/p95 wall-clock
  latency as seen by the client, cache-warm;
* **batches** — ``POST /v1/query/batch`` throughput in needs/second;
* **hot reload under load** — ``POST /admin/reload`` fired repeatedly
  while clients hammer queries; the run asserts **zero** failed or torn
  responses (every answer matches the single-generation baseline).

Rendered report → ``benchmarks/results/serve_http.txt``; machine
numbers → ``benchmarks/results/BENCH_serve_http.json``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.config import FinderConfig
from repro.core.expert_finder import ExpertFinder
from repro.core.service import percentile
from repro.serve import GatewayConfig, GatewayHarness
from repro.serve.reload import build_service

#: concurrent keep-alive client threads
_CLIENTS = 8
#: passes over the query set per client in the single-query phase
_QUERY_ROUNDS = 6
#: batch requests per client in the batch phase
_BATCH_ROUNDS = 4
#: reloads fired during the reload-under-load phase
_RELOADS = 3


def bench_serve_http(ctx, save_result, save_json):
    dataset = ctx.dataset
    queries = [need.text for need in dataset.queries]

    def source():
        finder = ExpertFinder.build(
            dataset.merged_graph,
            dataset.candidates_for(None),
            dataset.analyzer,
            FinderConfig(),
            corpus=dataset.corpus,
        )
        return build_service(finder, cache_size=len(queries) * 2)

    harness = GatewayHarness(source, config=GatewayConfig(rate_limit=None))
    with harness:
        # -- warm the cache and capture the per-query baselines ----------------
        baselines = {}
        for query in queries:
            status, _, body = harness.request(
                "POST", "/v1/query", {"need": query, "top_k": 10}
            )
            assert status == 200
            baselines[query] = body["experts"]

        # -- phase 1: concurrent single queries --------------------------------
        def query_client(_worker: int) -> list[float]:
            latencies = []
            conn = harness.connection()
            try:
                for _ in range(_QUERY_ROUNDS):
                    for query in queries:
                        t0 = time.perf_counter()
                        status, _, body = harness.request(
                            "POST",
                            "/v1/query",
                            {"need": query, "top_k": 10},
                            conn=conn,
                        )
                        latencies.append(time.perf_counter() - t0)
                        assert status == 200
                        assert body["experts"] == baselines[query]
            finally:
                conn.close()
            return latencies

        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=_CLIENTS) as pool:
            # repro: lint-ok[fork-safety] thread pool, no fork seam —
            # the closure never crosses a process boundary
            per_client = list(pool.map(query_client, range(_CLIENTS)))
        single_elapsed = time.perf_counter() - t0
        latencies = sorted(sample for batch in per_client for sample in batch)
        single_requests = len(latencies)
        single_qps = single_requests / single_elapsed
        p50_ms = percentile(latencies, 50) * 1e3
        p95_ms = percentile(latencies, 95) * 1e3

        # -- phase 2: concurrent batches ---------------------------------------
        def batch_client(_worker: int) -> int:
            served = 0
            conn = harness.connection()
            try:
                for _ in range(_BATCH_ROUNDS):
                    status, _, body = harness.request(
                        "POST",
                        "/v1/query/batch",
                        {"needs": queries, "top_k": 10},
                        conn=conn,
                    )
                    assert status == 200
                    assert len(body["results"]) == len(queries)
                    served += len(queries)
            finally:
                conn.close()
            return served

        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=_CLIENTS) as pool:
            # repro: lint-ok[fork-safety] thread pool, no fork seam
            served = sum(pool.map(batch_client, range(_CLIENTS)))
        batch_elapsed = time.perf_counter() - t0
        batch_needs_per_s = served / batch_elapsed

        # -- phase 3: hot reload under load ------------------------------------
        failures: list[tuple[int, object]] = []
        stop = threading.Event()
        reload_query = queries[0]

        def reload_hammer() -> int:
            count = 0
            conn = harness.connection()
            try:
                while not stop.is_set():
                    status, _, body = harness.request(
                        "POST",
                        "/v1/query",
                        {"need": reload_query, "top_k": 10},
                        conn=conn,
                    )
                    count += 1
                    if (
                        status != 200
                        or body["experts"] != baselines[reload_query]
                    ):
                        failures.append((status, body))
            finally:
                conn.close()
            return count

        hammer_pool = ThreadPoolExecutor(max_workers=4)
        # repro: lint-ok[fork-safety] thread pool, no fork seam
        hammered = [hammer_pool.submit(reload_hammer) for _ in range(4)]
        reload_s = []
        try:
            for _ in range(_RELOADS):
                t0 = time.perf_counter()
                status, _, body = harness.request("POST", "/admin/reload")
                reload_s.append(time.perf_counter() - t0)
                assert status == 200
        finally:
            stop.set()
            hammer_pool.shutdown(wait=True)
        requests_during_reloads = sum(f.result() for f in hammered)
        assert failures == [], f"failed/torn responses: {failures[:3]}"

        status, _, metrics_body = harness.request("GET", "/v1/metrics")
        assert status == 200
        assert metrics_body["gateway"]["reloads"] == _RELOADS
        assert metrics_body["generation"] == 1 + _RELOADS

    lines = [
        "HTTP gateway — socket-to-socket serving performance",
        f"dataset: scale={dataset.scale.value} seed={dataset.seed} "
        f"({len(queries)} queries, {_CLIENTS} keep-alive clients)",
        "",
        f"single queries:       {single_qps:8.0f} q/s "
        f"(p50 {p50_ms:.2f}ms, p95 {p95_ms:.2f}ms over "
        f"{single_requests} requests)",
        f"batched queries:      {batch_needs_per_s:8.0f} needs/s",
        "",
        f"hot reloads:          {_RELOADS} "
        f"(avg {sum(reload_s) / len(reload_s):.3f}s each) under "
        f"{requests_during_reloads} concurrent requests — 0 failures",
    ]
    save_result("serve_http", "\n".join(lines))
    save_json(
        "serve_http",
        dataset,
        {
            "clients": _CLIENTS,
            "single_requests": single_requests,
            "single_qps": single_qps,
            "single_p50_ms": p50_ms,
            "single_p95_ms": p95_ms,
            "batch_needs_per_s": batch_needs_per_s,
            "reloads": _RELOADS,
            "reload_avg_s": sum(reload_s) / len(reload_s),
            "requests_during_reloads": requests_during_reloads,
            "reload_failed_responses": len(failures),
        },
    )
