"""Unit tests for the platform network generator."""

import pytest

from repro.socialgraph.metamodel import Platform
from repro.synthetic.network_builder import TINY, BuiltNetworks, NetworkBuilder
from repro.synthetic.population import generate_population


@pytest.fixture(scope="module")
def networks() -> BuiltNetworks:
    people = generate_population(seed=7, size=12)
    return NetworkBuilder(people, TINY, seed=8).build()


class TestStructure:
    def test_three_stores(self, networks):
        assert set(networks.stores) == set(Platform)

    def test_every_person_on_every_platform(self, networks):
        for person_id, profiles in networks.profile_ids.items():
            assert set(profiles) == set(Platform)
            for platform, pid in profiles.items():
                assert pid in networks.stores[platform].accounts

    def test_twitter_has_no_containers(self, networks):
        assert networks.stores[Platform.TWITTER].containers == {}

    def test_facebook_and_linkedin_have_groups(self, networks):
        assert networks.stores[Platform.FACEBOOK].containers
        assert networks.stores[Platform.LINKEDIN].containers

    def test_linkedin_groups_only_work_domains(self, networks):
        for cid in networks.stores[Platform.LINKEDIN].containers:
            domain = cid.split(":")[2]
            assert domain in ("computer_engineering", "technology_games", "science")

    def test_resource_ids_globally_unique(self, networks):
        all_ids = [
            rid for store in networks.stores.values() for rid in store.resources
        ]
        assert len(all_ids) == len(set(all_ids))


class TestPlatformBiases:
    def test_linkedin_fewest_resources(self, networks):
        counts = {p: len(s.resources) for p, s in networks.stores.items()}
        assert counts[Platform.LINKEDIN] == min(counts.values())

    def test_linkedin_mostly_group_posts(self, networks):
        store = networks.stores[Platform.LINKEDIN]
        in_groups = sum(len(c.resource_ids) for c in store.containers.values())
        assert in_groups / len(store.resources) > 0.7

    def test_twitter_celebrities_exist(self, networks):
        store = networks.stores[Platform.TWITTER]
        celebrities = [a for a in store.accounts if "celebrity" in a]
        assert celebrities

    def test_celebrities_have_tweets(self, networks):
        store = networks.stores[Platform.TWITTER]
        for account_id, record in store.accounts.items():
            if "celebrity" in account_id:
                assert len(record.created) == TINY.tw_celebrity_tweets

    def test_facebook_external_friends_mostly_closed(self, networks):
        store = networks.stores[Platform.FACEBOOK]
        externals = [a for pid, a in store.accounts.items() if ":ext:" in pid]
        assert externals
        closed = [a for a in externals if not a.privacy.resources_visible]
        assert len(closed) / len(externals) > 0.9

    def test_friendships_symmetric(self, networks):
        for store in networks.stores.values():
            for pid, record in store.accounts.items():
                for friend in record.friends:
                    assert pid in store.accounts[friend].friends

    def test_container_resources_most_recent_first(self, networks):
        for store in networks.stores.values():
            for record in store.containers.values():
                stamps = [store.resources[r].timestamp for r in record.resource_ids]
                assert stamps == sorted(stamps, reverse=True)

    def test_some_resources_have_urls(self, networks):
        store = networks.stores[Platform.FACEBOOK]
        with_url = sum(1 for r in store.resources.values() if r.urls)
        # scale profile sets 70%
        assert 0.5 < with_url / len(store.resources) < 0.9

    def test_urls_resolve_in_synthetic_web(self, networks):
        for store in networks.stores.values():
            for resource in store.resources.values():
                for url in resource.urls:
                    assert url in networks.web


class TestDeterminism:
    def test_same_seed_same_networks(self):
        people = generate_population(seed=7, size=8)
        a = NetworkBuilder(people, TINY, seed=3).build()
        b = NetworkBuilder(people, TINY, seed=3).build()
        assert set(a.stores[Platform.TWITTER].resources) == set(
            b.stores[Platform.TWITTER].resources
        )
        ra = a.stores[Platform.TWITTER].resources
        rb = b.stores[Platform.TWITTER].resources
        assert all(ra[k] == rb[k] for k in ra)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            NetworkBuilder([], TINY, seed=1)
