"""Unit tests for the expertise-conditioned text generator."""

import random

import pytest

from repro.synthetic.population import generate_population
from repro.synthetic.text_gen import TextGenerator
from repro.synthetic.vocab import DOMAIN_WORDS, DOMAINS


@pytest.fixture
def gen():
    return TextGenerator(random.Random(42))


@pytest.fixture(scope="module")
def people():
    return generate_population(seed=7, size=40)


class TestTopicalText:
    def test_topical_sentence_contains_domain_words(self, gen):
        sport_words = set(DOMAIN_WORDS["sport"])
        text = gen.topical_sentence("sport", length=20)
        hits = sum(1 for w in text.split() if w in sport_words)
        assert hits >= 3

    def test_chitchat_avoids_domain_words(self, gen):
        domain_vocab = {w for ws in DOMAIN_WORDS.values() for w in ws}
        text = gen.chitchat_sentence(length=20)
        assert not any(w in domain_vocab for w in text.split())

    def test_resource_text_topical(self, gen):
        text = gen.resource_text("music")
        music = set(DOMAIN_WORDS["music"])
        assert any(w in music for w in text.split())

    def test_resource_text_none_is_chitchat(self, gen):
        domain_vocab = {w for ws in DOMAIN_WORDS.values() for w in ws}
        text = gen.resource_text(None)
        assert not any(w in domain_vocab for w in text.split())

    def test_entity_mention_from_domain(self, gen):
        mention = gen.entity_mention("sport")
        assert mention  # a known surface form
        from repro.synthetic.vocab import ENTITY_SEEDS

        surfaces = {a for s in ENTITY_SEEDS if s.domain == "sport" for a, _ in s.anchors}
        assert mention in surfaces

    def test_non_english_text(self, gen):
        lang, text = gen.non_english_text()
        assert lang in ("it", "es")
        assert len(text.split()) > 3


class TestProfiles:
    def test_facebook_profiles_often_sparse(self, people):
        gen = TextGenerator(random.Random(1))
        texts = [gen.facebook_profile_text(p) for p in people]
        empty = sum(1 for t in texts if not t)
        assert empty > len(texts) * 0.25

    def test_linkedin_profile_rich_for_engineer(self, people):
        gen = TextGenerator(random.Random(1))
        engineers = [
            p
            for p in people
            if p.expertise["computer_engineering"] >= 6
            and p.exposure["computer_engineering"] > 0.5
        ]
        assert engineers, "seeded population should include engineers"
        text = gen.linkedin_profile_text(engineers[0])
        ce_words = set(DOMAIN_WORDS["computer_engineering"])
        assert any(w in ce_words for w in text.split())

    def test_linkedin_profile_longer_than_twitter(self, people):
        gen = TextGenerator(random.Random(1))
        li = [len(gen.linkedin_profile_text(p)) for p in people]
        tw = [len(gen.twitter_profile_text(p)) for p in people]
        assert sum(li) / len(li) > 2 * sum(tw) / len(tw)


class TestPickDomain:
    def test_high_interest_posts_topically(self, people):
        gen = TextGenerator(random.Random(3))
        person = max(people, key=lambda p: max(p.visible_interest(d) for d in DOMAINS))
        best = max(DOMAINS, key=person.visible_interest)
        picks = [gen.pick_domain(person, platform_bias={}) for _ in range(400)]
        assert picks.count(best) > picks.count(None) * 0.1
        assert best in picks

    def test_low_exposure_mostly_chitchat(self, people):
        gen = TextGenerator(random.Random(3))
        hidden = min(people, key=lambda p: max(p.exposure.values()))
        picks = [gen.pick_domain(hidden, platform_bias={}) for _ in range(200)]
        assert picks.count(None) > 120

    def test_bias_shifts_distribution(self, people):
        person = people[0]
        bias_sport = {d: (5.0 if d == "sport" else 0.01) for d in DOMAINS}
        gen = TextGenerator(random.Random(5))
        picks = [gen.pick_domain(person, platform_bias=bias_sport) for _ in range(300)]
        topical = [p for p in picks if p is not None]
        assert topical.count("sport") >= len(topical) * 0.6


class TestWebPages:
    def test_web_page_topical(self, gen):
        page = gen.web_page("http://x/1", "science")
        science = set(DOMAIN_WORDS["science"])
        assert any(w in science for w in page.main_text.split())
        assert page.url == "http://x/1"
        assert page.boilerplate

    def test_container_description_mentions_name(self, gen):
        text = gen.container_description("sport", "swimmers united")
        assert text.startswith("swimmers united")
