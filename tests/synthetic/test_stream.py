"""Tests for the streaming ``xl`` scale generator."""

import itertools

import pytest

from repro.storage.cache import load_or_build
from repro.synthetic.dataset import DatasetScale, build_dataset
from repro.synthetic.stream import (
    XL_CANDIDATES,
    XL_RESOURCES,
    stream_candidates,
    stream_queries,
    stream_resources,
)


class TestStreamResources:
    def test_deterministic(self):
        cands = stream_candidates(6)
        first = list(stream_resources(cands, 200, seed=11))
        second = list(stream_resources(cands, 200, seed=11))
        assert first == second

    def test_seed_changes_stream(self):
        cands = stream_candidates(6)
        assert list(stream_resources(cands, 50, seed=1)) != list(
            stream_resources(cands, 50, seed=2)
        )

    def test_every_event_has_supporters(self):
        cands = stream_candidates(4)
        for event in stream_resources(cands, 300, seed=3):
            node_id, text, supporters, *rest = event
            assert supporters, f"{node_id} has no supporters"
            assert text
            for cid, distance in supporters:
                assert cid in cands
                assert 1 <= distance <= 2

    def test_non_english_share(self):
        events = list(stream_resources(stream_candidates(4), 2000, seed=5))
        tagged = [e for e in events if len(e) == 4]
        # ~4% carry an explicit non-English language tag
        assert 0.01 < len(tagged) / len(events) < 0.10
        assert {e[3] for e in tagged} <= {"it", "es", "fr", "de"}

    def test_unique_node_ids(self):
        events = list(stream_resources(stream_candidates(3), 500, seed=7))
        ids = [e[0] for e in events]
        assert len(set(ids)) == len(ids)

    def test_lazy(self):
        # an iterator, not a list: taking 5 of the full xl stream is cheap
        stream = stream_resources(stream_candidates(), seed=7)
        assert len(list(itertools.islice(stream, 5))) == 5

    def test_validation(self):
        with pytest.raises(ValueError, match="candidates"):
            list(stream_resources([], 10))
        with pytest.raises(ValueError, match="resources"):
            list(stream_resources(["a"], -1))
        with pytest.raises(ValueError, match="max_distance"):
            list(stream_resources(["a"], 1, max_distance=0))
        with pytest.raises(ValueError, match="count"):
            stream_candidates(0)

    def test_xl_defaults(self):
        assert XL_CANDIDATES == 10_000
        assert XL_RESOURCES == 1_000_000
        assert len(stream_candidates()) == XL_CANDIDATES


class TestStreamQueries:
    def test_deterministic_and_distinct_from_resources(self):
        assert stream_queries(10, seed=7) == stream_queries(10, seed=7)
        assert stream_queries(5, seed=1) != stream_queries(5, seed=2)
        assert stream_queries(0) == []
        with pytest.raises(ValueError, match="count"):
            stream_queries(-1)


class TestXlScaleGuards:
    """xl is streaming-only: every materializing entry point rejects it
    with a pointer at the stream module."""

    def test_build_dataset_rejects_xl(self):
        with pytest.raises(ValueError, match="stream"):
            build_dataset(DatasetScale.XL)

    def test_cache_rejects_xl(self, tmp_path):
        with pytest.raises(ValueError, match="stream"):
            load_or_build(tmp_path, DatasetScale.XL)

    def test_profile_rejects_xl(self):
        with pytest.raises(ValueError, match="stream"):
            DatasetScale.XL.profile

    def test_population_rejects_xl(self):
        with pytest.raises(ValueError, match="stream"):
            DatasetScale.XL.population_size

    def test_other_scales_unaffected(self):
        assert DatasetScale.TINY.population_size == 12
        assert DatasetScale("xl") is DatasetScale.XL


class TestStreamBuildsFinder:
    def test_from_stream_equivalence(self, analyzer):
        """A truncated xl stream builds sharded and unsharded finders
        that rank identically (the bench's core assertion, in miniature)."""
        from repro.core.config import FinderConfig
        from repro.core.expert_finder import ExpertFinder

        cands = stream_candidates(5)
        plain = ExpertFinder.from_stream(
            cands, stream_resources(cands, 60, seed=9), analyzer,
            FinderConfig(window=None),
        )
        sharded = ExpertFinder.from_stream(
            cands, stream_resources(cands, 60, seed=9), analyzer,
            FinderConfig(window=None), shards=2,
        )
        assert plain.indexed_resources == sharded.indexed_resources
        for text in stream_queries(4, seed=9):
            assert sharded.find_experts(text) == plain.find_experts(text)
