"""Unit tests for the vocabulary and entity seed data."""

from repro.synthetic.vocab import (
    DOMAIN_LABELS,
    DOMAIN_WORDS,
    DOMAINS,
    ENTITY_SEEDS,
    FUNCTION_WORDS,
    GENERAL_WORDS,
    NON_ENGLISH_SENTENCES,
    PERSON_NAMES,
    entities_in_domain,
)


class TestDomains:
    def test_seven_domains(self):
        assert len(DOMAINS) == 7

    def test_paper_domains_present(self):
        assert "computer_engineering" in DOMAINS
        assert "sport" in DOMAINS
        assert "technology_games" in DOMAINS

    def test_labels_cover_all(self):
        assert set(DOMAIN_LABELS) == set(DOMAINS)

    def test_words_cover_all(self):
        assert set(DOMAIN_WORDS) == set(DOMAINS)

    def test_vocabularies_substantial(self):
        for words in DOMAIN_WORDS.values():
            assert len(words) >= 30

    def test_vocabularies_lowercase(self):
        for words in DOMAIN_WORDS.values():
            assert all(w == w.lower() for w in words)


class TestEntitySeeds:
    def test_every_domain_has_entities(self):
        for domain in DOMAINS:
            assert len(entities_in_domain(domain)) >= 5

    def test_unique_uris(self):
        uris = [s.uri for s in ENTITY_SEEDS]
        assert len(uris) == len(set(uris))

    def test_anchor_counts_positive(self):
        for seed in ENTITY_SEEDS:
            assert seed.anchors
            assert all(count > 0 for _, count in seed.anchors)

    def test_links_resolve(self):
        uris = {s.uri for s in ENTITY_SEEDS}
        for seed in ENTITY_SEEDS:
            for target in seed.links:
                assert target in uris, f"{seed.uri} links to unknown {target}"

    def test_ambiguous_anchors_exist(self):
        surfaces: dict[str, set[str]] = {}
        for seed in ENTITY_SEEDS:
            for surface, _ in seed.anchors:
                surfaces.setdefault(surface, set()).add(seed.uri)
        ambiguous = {s for s, us in surfaces.items() if len(us) > 1}
        assert {"python", "milan", "java", "apple", "mercury"} <= ambiguous

    def test_unknown_domain_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            entities_in_domain("cooking")


class TestWordPools:
    def test_function_words_are_english_stopwords(self):
        from repro.textproc.stopwords import stopwords_for

        en = stopwords_for("en")
        overlap = sum(1 for w in FUNCTION_WORDS if w in en)
        assert overlap / len(FUNCTION_WORDS) > 0.8

    def test_general_words_not_domain_specific(self):
        domain_vocab = {w for ws in DOMAIN_WORDS.values() for w in ws}
        assert not set(GENERAL_WORDS) & domain_vocab

    def test_non_english_languages(self):
        assert set(NON_ENGLISH_SENTENCES) == {"it", "es"}

    def test_enough_person_names(self):
        assert len(PERSON_NAMES) >= 40
        assert len(set(PERSON_NAMES)) == len(PERSON_NAMES)
