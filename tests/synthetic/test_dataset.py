"""Unit tests for the assembled evaluation dataset."""

import pytest

from repro.socialgraph.metamodel import Platform
from repro.synthetic.dataset import DatasetScale


class TestEvaluationDataset:
    def test_population_size(self, tiny_dataset):
        assert len(tiny_dataset.people) == DatasetScale.TINY.population_size

    def test_graphs_per_platform(self, tiny_dataset):
        assert set(tiny_dataset.graphs) == set(Platform)

    def test_merged_graph_is_union(self, tiny_dataset):
        merged_total = len(tiny_dataset.merged_graph)
        # followed celebrities etc. are deduplicated per platform, ids are
        # platform-prefixed, so the merged graph is the exact union
        assert merged_total == sum(len(g) for g in tiny_dataset.graphs.values())

    def test_corpus_covers_merged_graph(self, tiny_dataset):
        graph = tiny_dataset.merged_graph
        node_count = len(graph)
        assert len(tiny_dataset.corpus) == node_count

    def test_candidates_for_platform(self, tiny_dataset):
        candidates = tiny_dataset.candidates_for(Platform.TWITTER)
        assert len(candidates) == len(tiny_dataset.people)
        for profiles in candidates.values():
            assert len(profiles) == 1
            assert profiles[0].startswith("tw:")

    def test_candidates_for_all(self, tiny_dataset):
        candidates = tiny_dataset.candidates_for(None)
        for profiles in candidates.values():
            assert len(profiles) == 3

    def test_graph_for(self, tiny_dataset):
        assert tiny_dataset.graph_for(None) is tiny_dataset.merged_graph
        assert tiny_dataset.graph_for(Platform.FACEBOOK) is tiny_dataset.graphs[
            Platform.FACEBOOK
        ]

    def test_thirty_queries(self, tiny_dataset):
        assert len(tiny_dataset.queries) == 30

    def test_scale_properties(self):
        assert DatasetScale.TINY.population_size == 12
        assert DatasetScale.SMALL.population_size == 40
        assert DatasetScale.PAPER.population_size == 40
        assert DatasetScale.SMALL.profile.name == "small"

    def test_non_english_resources_present(self, tiny_dataset):
        languages = {a.language for a in tiny_dataset.corpus.values()}
        assert "en" in languages
        assert languages & {"it", "es"}

    def test_url_enrichment_reached_corpus(self, tiny_dataset):
        # resources linking topical pages must carry the page's words;
        # find a resource with a sport URL and check for enrichment
        graph = tiny_dataset.merged_graph
        enriched = 0
        for resource in graph.resources():
            if resource.urls and "/sport/" in resource.urls[0]:
                analysis = tiny_dataset.corpus[resource.resource_id]
                if analysis.language == "en" and len(analysis.term_counts) > 8:
                    enriched += 1
        assert enriched > 0
