"""Unit tests for the 30 expertise needs."""

from repro.synthetic.queries import paper_queries
from repro.synthetic.vocab import DOMAINS


class TestPaperQueries:
    def test_thirty_queries(self):
        assert len(paper_queries()) == 30

    def test_ids_sequential(self):
        needs = paper_queries()
        assert [n.need_id for n in needs] == [f"q{i:02d}" for i in range(1, 31)]

    def test_every_domain_covered(self):
        domains = {n.domain for n in paper_queries()}
        assert domains == set(DOMAINS)

    def test_at_least_four_per_domain(self):
        needs = paper_queries()
        for domain in DOMAINS:
            assert sum(1 for n in needs if n.domain == domain) >= 4

    def test_paper_examples_verbatim(self):
        texts = {n.text for n in paper_queries()}
        assert "Can you list some restaurants in Milan?" in texts
        assert "Why is copper a good conductor?" in texts
        assert "Can you list some famous songs of Michael Jackson?" in texts
        assert "Can you list some famous European football teams?" in texts

    def test_queries_nonempty_text(self):
        assert all(len(n.text) > 10 for n in paper_queries())

    def test_fresh_list_each_call(self):
        a, b = paper_queries(), paper_queries()
        assert a == b and a is not b
