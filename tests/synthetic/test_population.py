"""Unit tests for the population generator."""

import pytest

from repro.synthetic.population import Person, generate_population
from repro.synthetic.vocab import DOMAINS


@pytest.fixture(scope="module")
def people():
    return generate_population(seed=7, size=40)


class TestGeneratePopulation:
    def test_size(self, people):
        assert len(people) == 40

    def test_unique_ids(self, people):
        assert len({p.person_id for p in people}) == 40

    def test_likert_range(self, people):
        for person in people:
            for domain in DOMAINS:
                assert 1 <= person.likert(domain) <= 7

    def test_interest_and_exposure_ranges(self, people):
        for person in people:
            for domain in DOMAINS:
                assert 0.0 <= person.interest[domain] <= 1.0
                assert 0.0 <= person.exposure[domain] <= 1.0

    def test_activity_positive_and_heavy_tailed(self, people):
        activities = sorted(p.activity for p in people)
        assert all(a > 0 for a in activities)
        assert activities[-1] / activities[0] > 3  # real spread

    def test_low_exposure_fraction(self, people):
        low = [p for p in people
               if max(p.exposure.values()) < 0.3]
        assert len(low) == 8  # 20% of 40

    def test_deterministic(self):
        a = generate_population(seed=7, size=10)
        b = generate_population(seed=7, size=10)
        assert a == b

    def test_seed_changes_output(self):
        a = generate_population(seed=7, size=10)
        b = generate_population(seed=8, size=10)
        assert a != b

    def test_everyone_has_a_strong_domain(self, people):
        # focus domains get a high Likert draw
        assert all(max(p.expertise.values()) >= 4 for p in people)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_population(seed=1, size=0)
        with pytest.raises(ValueError):
            generate_population(seed=1, size=10, low_exposure_fraction=2.0)


class TestPerson:
    def test_visible_interest_uses_interest_and_exposure(self, people):
        person = people[0]
        domain = DOMAINS[0]
        expected = person.interest[domain] * person.exposure[domain]
        assert person.visible_interest(domain) == pytest.approx(expected)

    def test_expertise_signal_uses_likert(self, people):
        person = people[0]
        domain = DOMAINS[0]
        expected = person.expertise[domain] / 7.0 * person.exposure[domain]
        assert person.expertise_signal(domain) == pytest.approx(expected)

    def test_missing_domain_rejected(self):
        with pytest.raises(ValueError):
            Person(
                person_id="p", name="P",
                expertise={"sport": 5},
                interest={d: 0.5 for d in DOMAINS},
                exposure={d: 0.5 for d in DOMAINS},
            )

    def test_bad_likert_rejected(self):
        with pytest.raises(ValueError):
            Person(
                person_id="p", name="P",
                expertise={d: 9 for d in DOMAINS},
                interest={d: 0.5 for d in DOMAINS},
                exposure={d: 0.5 for d in DOMAINS},
            )
