"""Unit tests for the questionnaire ground truth."""

import pytest

from repro.synthetic.ground_truth import GroundTruth
from repro.synthetic.population import generate_population
from repro.synthetic.vocab import DOMAINS


@pytest.fixture(scope="module")
def people():
    return generate_population(seed=7, size=40)


@pytest.fixture(scope="module")
def truth(people):
    return GroundTruth(people)


class TestGroundTruth:
    def test_experts_above_average(self, people, truth):
        for domain in DOMAINS:
            avg = truth.average_expertise(domain)
            for person in people:
                is_expert = person.expertise[domain] > avg
                assert truth.is_expert(person.person_id, domain) == is_expert

    def test_every_domain_has_experts(self, truth):
        for domain in DOMAINS:
            assert len(truth.experts(domain)) >= 3

    def test_experts_not_everyone(self, truth, people):
        for domain in DOMAINS:
            assert len(truth.experts(domain)) < len(people)

    def test_likert_passthrough(self, people, truth):
        person = people[0]
        for domain in DOMAINS:
            assert truth.likert(person.person_id, domain) == person.expertise[domain]

    def test_domain_stats(self, truth):
        stats = truth.domain_stats("sport")
        assert stats.expert_count == len(truth.experts("sport"))
        assert stats.average_domain_expertise >= stats.average_expertise

    def test_overall_stats_near_paper(self, truth):
        # paper: ~17 experts per domain, average expertise 3.57 — the
        # generator should land in the same region
        overall = truth.overall_stats()
        assert 10 <= overall["avg_experts_per_domain"] <= 22
        assert 3.0 <= overall["avg_expertise"] <= 4.2

    def test_location_has_fewest_experts(self, truth):
        # the paper observed few self-declared location experts
        counts = {d: len(truth.experts(d)) for d in DOMAINS}
        assert counts["location"] == min(counts.values())

    def test_unknown_domain_rejected(self, truth):
        with pytest.raises(ValueError):
            truth.experts("cooking")

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            GroundTruth([])

    def test_person_ids(self, truth, people):
        assert set(truth.person_ids) == {p.person_id for p in people}
