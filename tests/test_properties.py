"""Property-based tests (hypothesis) on the core data structures and
invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoring import distance_weight, window_size
from repro.evaluation.metrics import (
    average_precision,
    dcg,
    eleven_point_precision,
    f1_score,
    ideal_dcg,
    ndcg,
    precision_at_k,
    reciprocal_rank,
)
from repro.index.entity_index import EntityIndex
from repro.index.inverted import InvertedIndex
from repro.index.statistics import CollectionStatistics
from repro.textproc.sanitizer import sanitize
from repro.textproc.stemmer import PorterStemmer
from repro.textproc.tokenizer import tokenize

_STEM = PorterStemmer().stem

ids = st.text(alphabet="abcdefghij", min_size=1, max_size=4)
rankings = st.lists(ids, unique=True, max_size=12)
relevant_sets = st.frozensets(ids, max_size=12)


# -- text processing ----------------------------------------------------------


@given(st.text(max_size=300))
def test_sanitize_never_raises_and_is_idempotent(text):
    once = sanitize(text)
    assert sanitize(once) == once


@given(st.text(max_size=300))
def test_tokens_are_lowercase_and_bounded(text):
    for token in tokenize(text):
        assert token == token.lower()
        assert 1 <= len(token) <= 64


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=30))
def test_stem_never_longer_than_word(word):
    assert len(_STEM(word)) <= len(word)


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=30))
def test_stem_deterministic(word):
    assert _STEM(word) == _STEM(word)


@given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=3, max_size=30))
def test_stem_nonempty_for_real_words(word):
    assert _STEM(word)


# -- ranking metrics ------------------------------------------------------------


@given(rankings, relevant_sets)
def test_average_precision_in_unit_interval(ranking, relevant):
    assert 0.0 <= average_precision(ranking, relevant) <= 1.0


@given(rankings, relevant_sets)
def test_reciprocal_rank_in_unit_interval(ranking, relevant):
    assert 0.0 <= reciprocal_rank(ranking, relevant) <= 1.0


@given(rankings, relevant_sets, st.integers(min_value=1, max_value=20))
def test_precision_bounded(ranking, relevant, k):
    assert 0.0 <= precision_at_k(ranking, relevant, k) <= 1.0


@given(rankings, relevant_sets)
def test_perfect_ranking_maximizes_ap(ranking, relevant):
    """Putting all relevant items first yields AP ≥ any other order of
    the same retrieved set (here: the given one), provided everything
    relevant is retrieved."""
    retrieved_relevant = [r for r in ranking if r in relevant]
    others = [r for r in ranking if r not in relevant]
    ideal = retrieved_relevant + others
    if set(retrieved_relevant) == set(relevant):
        assert average_precision(ideal, relevant) >= average_precision(ranking, relevant)


@given(
    rankings,
    st.dictionaries(ids, st.floats(min_value=0.0, max_value=7.0), max_size=12),
)
def test_ndcg_bounded(ranking, gains):
    assert 0.0 <= ndcg(ranking, gains) <= 1.0 + 1e-9


@given(
    rankings,
    st.dictionaries(ids, st.floats(min_value=0.0, max_value=7.0), max_size=12),
    st.integers(min_value=1, max_value=25),
)
def test_dcg_below_ideal(ranking, gains, k):
    assert dcg(ranking, gains, k) <= ideal_dcg(gains, k) + 1e-9


@given(rankings, relevant_sets)
def test_eleven_point_curve_nonincreasing(ranking, relevant):
    curve = eleven_point_precision(ranking, relevant)
    assert len(curve) == 11
    assert all(curve[i] >= curve[i + 1] - 1e-12 for i in range(10))


@given(st.floats(0, 1), st.floats(0, 1))
def test_f1_between_min_and_max(p, r):
    f1 = f1_score(p, r)
    assert 0.0 <= f1 <= 1.0
    assert f1 <= max(p, r) + 1e-12
    if p > 0 and r > 0:
        assert f1 >= min(p, r) * 2 * max(p, r) / (min(p, r) + max(p, r)) - 1e-9


# -- scoring --------------------------------------------------------------------


@given(st.integers(0, 2), st.integers(0, 2))
def test_distance_weight_monotone_decreasing(d1, d2):
    if d1 <= d2 <= 2:
        assert distance_weight(d1, 2) >= distance_weight(d2, 2)


@given(
    st.integers(0, 2),
    st.tuples(
        st.floats(0.0, 1.0, allow_nan=False), st.floats(0.0, 1.0, allow_nan=False)
    ).map(lambda t: (min(t), max(t))),
)
def test_distance_weight_within_interval(distance, interval):
    low, high = interval
    weight = distance_weight(distance, 2, (low, high))
    assert low - 1e-12 <= weight <= high + 1e-12


@given(
    st.one_of(st.none(), st.integers(1, 1000), st.floats(0.01, 1.0)),
    st.integers(0, 10000),
)
def test_window_size_bounded(window, total):
    size = window_size(window, total)
    assert 0 <= size <= total or (size == 1 and total == 0)
    if isinstance(window, int):
        assert size <= window


# -- index statistics ----------------------------------------------------------------


@settings(max_examples=40)
@given(
    st.lists(
        st.dictionaries(
            st.text(alphabet="abcde", min_size=1, max_size=3),
            st.integers(min_value=1, max_value=5),
            max_size=6,
        ),
        min_size=1,
        max_size=12,
    )
)
def test_irf_monotone_in_rarity(documents):
    """Terms in fewer documents never get a lower irf."""
    terms = InvertedIndex()
    entities = EntityIndex()
    for i, counts in enumerate(documents):
        terms.add_document(f"d{i}", counts)
        entities.add_document(f"d{i}", {})
    stats = CollectionStatistics(terms, entities)
    vocabulary = terms.terms()
    for a in vocabulary:
        for b in vocabulary:
            if terms.document_frequency(a) <= terms.document_frequency(b):
                assert stats.irf(a) >= stats.irf(b) - 1e-12


@settings(max_examples=40)
@given(
    st.lists(
        st.dictionaries(
            st.text(alphabet="abcde", min_size=1, max_size=3),
            st.integers(min_value=1, max_value=5),
            max_size=6,
        ),
        min_size=1,
        max_size=12,
    )
)
def test_irf_positive_for_indexed_terms(documents):
    terms = InvertedIndex()
    entities = EntityIndex()
    for i, counts in enumerate(documents):
        terms.add_document(f"d{i}", counts)
        entities.add_document(f"d{i}", {})
    stats = CollectionStatistics(terms, entities)
    for term in terms.terms():
        value = stats.irf(term)
        assert value > 0.0
        assert math.isfinite(value)
