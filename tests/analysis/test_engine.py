"""Engine behavior: discovery, suppression plumbing, module
resolution, parse errors, and the per-file verdict cache."""

import json
import pathlib

import pytest

from repro.analysis import (
    ALL_CHECKERS,
    RULESET_VERSION,
    iter_python_files,
    lint_paths,
    lint_source,
    resolve_module,
)

VIOLATION = (
    "# repro: lint-module[repro.index.fake]\n"
    "def f(a: dict, b: dict) -> list:\n"
    "    return list(a.keys() | b.keys())\n"
)


class TestDiscovery:
    def test_iterates_sorted_py_files(self, tmp_path):
        for name in ("b.py", "a.py", "c.txt"):
            (tmp_path / name).write_text("x = 1\n")
        found = [p.name for p in iter_python_files([tmp_path])]
        assert found == ["a.py", "b.py"]

    def test_exclude_substring(self, tmp_path):
        nested = tmp_path / "fixtures"
        nested.mkdir()
        (nested / "bad.py").write_text("x = 1\n")
        (tmp_path / "good.py").write_text("x = 1\n")
        found = [p.name for p in iter_python_files([tmp_path], ("fixtures",))]
        assert found == ["good.py"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files(["no/such/dir"]))

    def test_single_file_path(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        assert list(iter_python_files([target])) == [target]


class TestModuleResolution:
    def test_resolves_from_last_repro_component(self):
        path = pathlib.Path("src/repro/index/vsm.py")
        assert resolve_module(path) == "repro.index.vsm"

    def test_package_init_resolves_to_package(self):
        path = pathlib.Path("src/repro/analysis/__init__.py")
        assert resolve_module(path) == "repro.analysis"

    def test_outside_tree_resolves_to_none(self):
        assert resolve_module(pathlib.Path("tests/index/test_vsm.py")) is None

    def test_module_pragma_opts_in(self, tmp_path):
        target = tmp_path / "scratch.py"
        target.write_text(VIOLATION)
        report = lint_paths([target])
        assert [f.rule for f in report.findings] == ["determinism"]

    def test_without_pragma_scoped_rules_skip(self, tmp_path):
        target = tmp_path / "scratch.py"
        target.write_text(
            "def f(a: dict, b: dict) -> list:\n"
            "    return list(a.keys() | b.keys())\n"
        )
        assert lint_paths([target]).findings == []


class TestSuppression:
    def test_same_line_pragma(self, tmp_path):
        target = tmp_path / "s.py"
        target.write_text(
            "# repro: lint-module[repro.index.fake]\n"
            "def f(a: dict, b: dict) -> list:\n"
            "    return list(a.keys() | b.keys())"
            "  # repro: lint-ok[determinism] reason\n"
        )
        report = lint_paths([target])
        assert report.findings == []
        assert report.suppressed == 1

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        target = tmp_path / "s.py"
        target.write_text(
            "# repro: lint-module[repro.index.fake]\n"
            "def f(a: dict, b: dict) -> list:\n"
            "    return list(a.keys() | b.keys())"
            "  # repro: lint-ok[fork-safety] wrong rule\n"
        )
        report = lint_paths([target])
        assert [f.rule for f in report.findings] == ["determinism"]


def test_parse_error_becomes_finding(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n")
    report = lint_paths([target])
    assert [f.rule for f in report.findings] == ["parse"]


def test_findings_are_sorted_and_stable(tmp_path):
    target = tmp_path / "v.py"
    target.write_text(VIOLATION)
    result = lint_source(target, target.read_text(), ALL_CHECKERS)
    assert result.findings == sorted(result.findings)


class TestCache:
    def test_second_run_replays_from_cache(self, tmp_path):
        target = tmp_path / "v.py"
        target.write_text(VIOLATION)
        cache = tmp_path / "cache.json"
        first = lint_paths([target], cache_path=cache)
        assert first.files_cached == 0
        second = lint_paths([target], cache_path=cache)
        assert second.files_cached == 1
        assert second.findings == first.findings
        assert second.suppressed == first.suppressed

    def test_content_change_invalidates(self, tmp_path):
        target = tmp_path / "v.py"
        target.write_text(VIOLATION)
        cache = tmp_path / "cache.json"
        lint_paths([target], cache_path=cache)
        target.write_text("x = 1\n")
        report = lint_paths([target], cache_path=cache)
        assert report.files_cached == 0
        assert report.findings == []

    def test_ruleset_bump_invalidates(self, tmp_path):
        target = tmp_path / "v.py"
        target.write_text(VIOLATION)
        cache = tmp_path / "cache.json"
        lint_paths([target], cache_path=cache)
        payload = json.loads(cache.read_text())
        payload["ruleset"] = RULESET_VERSION - 1
        cache.write_text(json.dumps(payload))
        report = lint_paths([target], cache_path=cache)
        assert report.files_cached == 0
        assert [f.rule for f in report.findings] == ["determinism"]

    def test_corrupt_cache_is_ignored(self, tmp_path):
        target = tmp_path / "v.py"
        target.write_text(VIOLATION)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        report = lint_paths([target], cache_path=cache)
        assert [f.rule for f in report.findings] == ["determinism"]
        # and the run rewrote a valid cache
        assert json.loads(cache.read_text())["ruleset"] == RULESET_VERSION
