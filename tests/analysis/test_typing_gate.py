"""The strict typing gate, exercised when the tools are installed.

mypy and ruff ship in the ``dev`` extra and run unconditionally in the
CI lint job; locally these tests simply skip when the tools are
absent so the tier-1 suite stays dependency-free.
"""

import pathlib
import shutil
import subprocess

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_is_clean():
    proc = subprocess.run(
        ["mypy"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_is_clean():
    paths = [p for p in ("src", "tests", "benchmarks") if (REPO_ROOT / p).exists()]
    proc = subprocess.run(
        ["ruff", "check", *paths],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
