"""Meta-tests: the repo is clean under its own lint rules, and seeded
violations into a scratch copy of ``repro.index.sharded`` are caught."""

import pathlib
import shutil

from repro.analysis import lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SHARDED = REPO_ROOT / "src" / "repro" / "index" / "sharded.py"


def test_src_is_clean():
    report = lint_paths([REPO_ROOT / "src"])
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings
    )


def test_tests_and_benchmarks_are_clean():
    paths = [REPO_ROOT / "tests"]
    benchmarks = REPO_ROOT / "benchmarks"
    if benchmarks.exists():
        paths.append(benchmarks)
    report = lint_paths(paths)
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings
    )


def test_src_suppressions_stay_reviewed():
    # the two reasoned determinism suppressions (vsm/segments emit into
    # consumers that re-sort with a total key); grow this list only with
    # a reason next to the pragma
    report = lint_paths([REPO_ROOT / "src"])
    assert report.suppressed == 2


class TestSeededViolations:
    """Copy ``repro.index.sharded`` into a scratch tree (so it still
    resolves as a ``repro.index`` module) and seed one violation of each
    of rules 1-3; ``repro lint`` must catch every one of them."""

    def _scratch_copy(self, tmp_path) -> pathlib.Path:
        scratch = tmp_path / "repro" / "index"
        scratch.mkdir(parents=True)
        target = scratch / "sharded.py"
        shutil.copy(SHARDED, target)
        return target

    def test_unmodified_copy_is_clean(self, tmp_path):
        target = self._scratch_copy(tmp_path)
        report = lint_paths([target])
        # the pristine copy carries no suppressions and no findings
        assert report.findings == []

    def test_seeded_violations_are_caught(self, tmp_path):
        target = self._scratch_copy(tmp_path)
        source = target.read_text(encoding="utf-8")

        # rule 1 (determinism): drop the sorted() around the frozenset walk
        determinism_seed = "for doc_id in sorted(indexed_ids):"
        assert determinism_seed in source
        source = source.replace(
            determinism_seed, "for doc_id in indexed_ids:"
        )

        # rule 2 (fork-safety): hand the worker loop to the pool as a lambda
        fork_seed = "target=_worker_main,"
        assert fork_seed in source
        source = source.replace(
            fork_seed, "target=lambda: _worker_main(child_conn, source, None),"
        )

        # rule 3 (mmap-discipline): poke a mapped section in place
        source += (
            "\n\ndef _tamper(mapped):\n"
            "    view = mapped.array(STAT_N)\n"
            "    view[0] = 0\n"
        )

        target.write_text(source, encoding="utf-8")
        report = lint_paths([target])
        rules = {f.rule for f in report.findings}
        assert {"determinism", "fork-safety", "mmap-discipline"} <= rules
