"""Per-rule fixture tests: each custom rule is demonstrated by a
positive fixture (the test fails if the checker is removed), a
suppressed variant, and a clean variant."""

import pathlib

import pytest

from repro.analysis import ALL_CHECKERS, lint_source

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

RULES = [
    "determinism",
    "fork-safety",
    "mmap-discipline",
    "float-equality",
    "section-registry",
]

_FIXTURE_STEM = {
    "determinism": "determinism",
    "fork-safety": "forksafety",
    "mmap-discipline": "mmap",
    "float-equality": "floateq",
    "section-registry": "sections",
}


def _lint_fixture(name: str):
    path = FIXTURES / name
    return lint_source(path, path.read_text(encoding="utf-8"), ALL_CHECKERS)


def test_rule_names_registered():
    assert sorted(c.rule for c in ALL_CHECKERS) == sorted(RULES)


@pytest.mark.parametrize("rule", RULES)
def test_violation_fixture_is_caught(rule):
    result = _lint_fixture(f"{_FIXTURE_STEM[rule]}_violation.py")
    hits = [f for f in result.findings if f.rule == rule]
    assert hits, f"{rule}: violation fixture produced no findings"
    for finding in hits:
        assert finding.line > 0
        assert finding.message


@pytest.mark.parametrize("rule", RULES)
def test_suppressed_fixture_is_silent(rule):
    result = _lint_fixture(f"{_FIXTURE_STEM[rule]}_suppressed.py")
    assert [f for f in result.findings if f.rule == rule] == []
    assert result.suppressed > 0


@pytest.mark.parametrize("rule", RULES)
def test_clean_fixture_is_clean(rule):
    result = _lint_fixture(f"{_FIXTURE_STEM[rule]}_clean.py")
    assert result.findings == []
    assert result.suppressed == 0


def test_determinism_catches_every_seeded_class():
    result = _lint_fixture("determinism_violation.py")
    messages = " ".join(f.message for f in result.findings)
    assert "unordered set expression" in messages
    assert "materializes" in messages
    assert "import of 'random'" in messages
    assert "entropy" in messages


def test_forksafety_describes_each_violation_kind():
    result = _lint_fixture("forksafety_violation.py")
    messages = " ".join(f.message for f in result.findings)
    assert "lambda" in messages
    assert "bound method" in messages
    assert "inside another function" in messages


def test_mmap_rule_separates_view_and_column_subrules():
    result = _lint_fixture("mmap_violation.py")
    messages = [f.message for f in result.findings]
    assert any("memoryview" in m or "mapped" in m for m in messages)
    assert any("column attribute" in m for m in messages)


def test_floateq_exempts_zero_sentinel():
    # the clean fixture contains `score == 0.0` and `tf == 0`
    result = _lint_fixture("floateq_clean.py")
    assert result.findings == []


def test_sections_rule_names_the_registry():
    result = _lint_fixture("sections_violation.py")
    assert all(
        "repro.storage.sections" in f.message
        for f in result.findings
        if f.rule == "section-registry"
    )
