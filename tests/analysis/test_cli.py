"""``repro lint`` CLI: exit codes, report formats, cache flags."""

import json

from repro.cli import main

VIOLATION = (
    "# repro: lint-module[repro.index.fake]\n"
    "def f(a: dict, b: dict) -> list:\n"
    "    return list(a.keys() | b.keys())\n"
)


def _write(tmp_path, text=VIOLATION):
    target = tmp_path / "scratch.py"
    target.write_text(text)
    return target


def test_exit_zero_on_clean(tmp_path, capsys):
    target = _write(tmp_path, "x = 1\n")
    assert main(["lint", str(target), "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_exit_one_on_findings(tmp_path, capsys):
    target = _write(tmp_path)
    assert main(["lint", str(target), "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "[determinism]" in out
    assert "scratch.py:3" in out


def test_exit_two_on_missing_path(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "nope"), "--no-cache"]) == 2
    assert "lint:" in capsys.readouterr().err


def test_json_format(tmp_path, capsys):
    target = _write(tmp_path)
    assert main(["lint", str(target), "--no-cache", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert payload["findings"][0]["rule"] == "determinism"
    assert payload["findings"][0]["line"] == 3


def test_cache_flag_roundtrip(tmp_path, capsys):
    target = _write(tmp_path)
    cache = tmp_path / "cache.json"
    assert main(["lint", str(target), "--cache", str(cache)]) == 1
    assert cache.exists()
    assert main(["lint", str(target), "--cache", str(cache)]) == 1
    out = capsys.readouterr().out
    assert "(1 cached)" in out


def test_exclude_flag(tmp_path, capsys):
    _write(tmp_path)
    code = main(["lint", str(tmp_path), "--no-cache", "--exclude", "scratch"])
    assert code == 0
