# repro: lint-module[repro.index.fixture_determinism]
"""Lint fixture: deliberate determinism violations (positive cases)."""

import random  # entropy import in a scoring module


def merge(term_scores: dict, entity_scores: dict) -> list:
    out = []
    for doc_id in term_scores.keys() | entity_scores.keys():  # set-order loop
        out.append(doc_id)
    ids = {1, 2, 3}
    out.extend(list(ids))  # hash-order materialization
    return out


def jitter() -> float:
    return random.random()  # entropy call site
