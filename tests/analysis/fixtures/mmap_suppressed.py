# repro: lint-module[repro.index.fixture_mmap]
"""Lint fixture: view/column mutations suppressed with reasons."""


def tamper(sections) -> None:
    view = sections.array("col")
    view[0] = 1  # repro: lint-ok[mmap-discipline] fixture: scratch copy


class Segment:
    def grow(self, term: str) -> None:
        # repro: lint-ok[mmap-discipline] fixture: migration shim
        self._term_cols[term] = (1, 2)
