"""Lint fixture: unpicklable callables crossing the fork seam."""

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Process


class Driver:
    def start(self) -> None:
        Process(target=self.handle).start()  # bound method

    def handle(self) -> None:
        pass


def run(items: list) -> list:
    square = lambda x: x * x  # noqa: E731
    with ProcessPoolExecutor() as pool:
        pool.submit(lambda: 1)  # lambda
        out = list(pool.map(square, items))  # name bound to a lambda

    def helper(x: int) -> int:
        return x + 1

    with ProcessPoolExecutor(initializer=lambda: None) as pool:  # lambda init
        pool.submit(helper, 1)  # closure (nested def)
    return out
