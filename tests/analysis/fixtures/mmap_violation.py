# repro: lint-module[repro.index.fixture_mmap]
"""Lint fixture: writes through mapped views and unsanctioned column
mutation."""


def tamper(sections) -> None:
    view = sections.array("col")
    view[0] = 1  # item write through a mapped view
    view.byteswap()  # mutating method on a mapped view
    raw = memoryview(b"abc")
    raw[1] = 0  # item write through a memoryview
    sliced = view[2:4]
    sliced[0] = 9  # a slice shares the same pages


class Segment:
    def __init__(self) -> None:
        self._term_cols: dict = {}

    def grow(self, term: str) -> None:
        self._term_cols[term] = (1, 2)  # column write outside sanctioned paths

    def replace(self) -> None:
        self._entity_cols = {}  # column rebind outside sanctioned paths
