"""Lint fixture: fork-seam violations suppressed with reasons."""

from concurrent.futures import ProcessPoolExecutor


def run(items: list) -> list:
    with ProcessPoolExecutor() as pool:
        # fixture: pretend this pool is thread-backed in context
        future = pool.submit(lambda: 1)  # repro: lint-ok[fork-safety] fixture
    return [future]
