# repro: lint-module[repro.index.fixture_floateq]
"""Lint fixture: the sanctioned float-comparison shapes."""


def ub_slack(bound: float) -> float:
    return bound * (1.0 + 1e-12)


def prune(score: float, bound: float, tw: float, tf: float) -> bool:
    if tf * tw <= ub_slack(score - bound):  # ordered compare through slack
        return True
    if score == 0.0:  # the exact-0.0 sentinel stays allowed
        return False
    return tf == 0  # int compares stay allowed
