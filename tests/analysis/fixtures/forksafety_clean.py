"""Lint fixture: module-level callables only — the sanctioned shape."""

import math
from concurrent.futures import ProcessPoolExecutor
from functools import partial
from multiprocessing import Process


def _square(x: int) -> int:
    return x * x


def _init_worker(seed: int) -> None:
    pass


def run(items: list) -> list:
    with ProcessPoolExecutor(initializer=partial(_init_worker, 7)) as pool:
        out = list(pool.map(_square, items))
        pool.submit(_square, 2)
        pool.submit(math.sqrt, 2.0)  # module-alias attribute stays allowed
    Process(target=_square, args=(3,)).start()
    return out
