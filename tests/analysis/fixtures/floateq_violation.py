# repro: lint-module[repro.index.fixture_floateq]
"""Lint fixture: exact float-score comparisons."""


def prune(score: float, bound: float, tw: float, tf: float) -> bool:
    if tf * tw == score - bound:  # computed floats compared exactly
        return True
    if score != 0.5:  # nonzero float literal
        return False
    return float(score) == float(bound)  # float producers compared exactly
