# repro: lint-module[repro.index.fixture_sections]
"""Lint fixture: ad-hoc layout-name literals bypassing the registry."""


def save(mapped, name: str) -> tuple:
    offsets = mapped.array("term#off")  # section-name literal
    stats = "stats.bin"  # registered layout file name
    shard = "shard-0000.bin"  # container file shape
    derived = f"{name}#off"  # f-string smuggling the suffix
    return offsets, stats, shard, derived
