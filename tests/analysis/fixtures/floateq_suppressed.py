# repro: lint-module[repro.index.fixture_floateq]
"""Lint fixture: exact float comparison suppressed with a reason."""


def prune(score: float, bound: float, tw: float, tf: float) -> bool:
    # repro: lint-ok[float-equality] fixture: both sides same fold order
    return tf * tw == score - bound
