# repro: lint-module[repro.index.fixture_sections]
"""Lint fixture: layout names drawn from the registry module."""

from repro.storage import sections as layout


def save(mapped, name: str) -> tuple:
    offsets = mapped.array(layout.TERM_OFF)
    stats = layout.STATS_BIN
    shard = layout.shard_bin(0)
    derived = layout.offsets_name(name)
    return offsets, stats, shard, derived
