# repro: lint-module[repro.index.fixture_sections]
"""Lint fixture: layout literals suppressed with reasons."""


def save(mapped) -> object:
    # repro: lint-ok[section-registry] fixture: format-guard test literal
    return mapped.array("term#off")
