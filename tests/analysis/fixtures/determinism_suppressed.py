# repro: lint-module[repro.index.fixture_determinism]
"""Lint fixture: the same violations, suppressed with reasons."""


def merge(term_scores: dict, entity_scores: dict) -> list:
    out = []
    # repro: lint-ok[determinism] fixture: consumers re-sort downstream
    for doc_id in term_scores.keys() | entity_scores.keys():
        out.append(doc_id)
    ids = {1, 2, 3}
    out.extend(list(ids))  # repro: lint-ok[determinism] fixture reason
    return out
