# repro: lint-module[repro.index.fixture_mmap]
"""Lint fixture: the sanctioned read/copy-on-write shapes."""

from array import array


def read(sections) -> int:
    view = sections.array("col")
    total = 0
    for value in view:  # reads through a view are fine
        total += value
    copy = array("q", view)  # copy first ...
    copy[0] = total  # ... then mutate the copy freely
    return copy[0]


class Segment:
    def __init__(self) -> None:
        self._term_cols: dict = {}  # construction is sanctioned

    def _pruned_term(self, term: str) -> None:
        self._term_cols[term] = (1, 2)  # lazy block build is sanctioned
