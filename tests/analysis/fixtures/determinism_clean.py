# repro: lint-module[repro.index.fixture_determinism]
"""Lint fixture: the deterministic spellings of the violation file."""


def merge(term_scores: dict, entity_scores: dict) -> list:
    out = []
    for doc_id in sorted(term_scores.keys() | entity_scores.keys()):
        out.append(doc_id)
    ids = {1, 2, 3}
    out.extend(sorted(ids))
    total = sum(ids)  # order-free reductions over sets stay allowed
    out.append(total)
    return out
