"""Unit tests for the knowledge base."""

import pytest

from repro.entity.knowledge_base import Entity, KnowledgeBase


@pytest.fixture
def kb():
    kb = KnowledgeBase()
    kb.add_entity(Entity("wiki/A", "A thing", "Thing", "sport"))
    kb.add_entity(Entity("wiki/B", "B thing", "Thing", "sport"))
    kb.add_entity(Entity("wiki/C", "C thing", "Thing", "music"))
    kb.add_entity(Entity("wiki/Hub", "Hub", "Portal", "sport"))
    return kb


class TestEntities:
    def test_add_and_lookup(self, kb):
        assert kb.entity("wiki/A").name == "A thing"
        assert kb.has_entity("wiki/A")
        assert not kb.has_entity("wiki/Z")

    def test_duplicate_rejected(self, kb):
        with pytest.raises(ValueError):
            kb.add_entity(Entity("wiki/A", "again", "Thing", "sport"))

    def test_unknown_lookup_raises(self, kb):
        with pytest.raises(KeyError):
            kb.entity("wiki/Z")

    def test_len(self, kb):
        assert len(kb) == 4

    def test_empty_uri_rejected(self):
        with pytest.raises(ValueError):
            Entity("", "x", "Thing", "sport")


class TestAnchors:
    def test_commonness_distribution(self, kb):
        kb.add_anchor("thing", "wiki/A", 3)
        kb.add_anchor("thing", "wiki/B", 1)
        candidates = kb.anchor_candidates(("thing",))
        assert candidates[0] == ("wiki/A", 0.75)
        assert candidates[1] == ("wiki/B", 0.25)

    def test_commonness_sums_to_one(self, kb):
        kb.add_anchor("x", "wiki/A", 5)
        kb.add_anchor("x", "wiki/B", 2)
        kb.add_anchor("x", "wiki/C", 3)
        total = sum(c for _, c in kb.anchor_candidates(("x",)))
        assert total == pytest.approx(1.0)

    def test_repeated_anchor_accumulates(self, kb):
        kb.add_anchor("y", "wiki/A", 1)
        kb.add_anchor("y", "wiki/A", 1)
        assert kb.anchor_candidates(("y",)) == [("wiki/A", 1.0)]

    def test_multiword_anchor(self, kb):
        kb.add_anchor("big thing", "wiki/A", 1)
        assert kb.is_anchor(("big", "thing"))
        assert kb.max_anchor_length == 2

    def test_not_an_anchor(self, kb):
        assert kb.anchor_candidates(("nope",)) == []
        assert not kb.is_anchor(("nope",))

    def test_unknown_entity_rejected(self, kb):
        with pytest.raises(KeyError):
            kb.add_anchor("z", "wiki/Z", 1)

    def test_invalid_count_rejected(self, kb):
        with pytest.raises(ValueError):
            kb.add_anchor("z", "wiki/A", 0)

    def test_empty_surface_rejected(self, kb):
        with pytest.raises(ValueError):
            kb.add_anchor("   ", "wiki/A", 1)


class TestRelatedness:
    def test_identity_is_one(self, kb):
        assert kb.relatedness("wiki/A", "wiki/A") == 1.0

    def test_no_shared_inlinks_is_zero(self, kb):
        assert kb.relatedness("wiki/A", "wiki/C") == 0.0

    def test_shared_hub_gives_positive(self, kb):
        kb.add_link("wiki/Hub", "wiki/A")
        kb.add_link("wiki/Hub", "wiki/B")
        assert kb.relatedness("wiki/A", "wiki/B") > 0.0

    def test_symmetry(self, kb):
        kb.add_link("wiki/Hub", "wiki/A")
        kb.add_link("wiki/Hub", "wiki/B")
        kb.add_link("wiki/C", "wiki/A")
        assert kb.relatedness("wiki/A", "wiki/B") == pytest.approx(
            kb.relatedness("wiki/B", "wiki/A")
        )

    def test_self_link_ignored(self, kb):
        kb.add_link("wiki/A", "wiki/A")
        assert kb.relatedness("wiki/A", "wiki/A") == 1.0

    def test_bounded(self, kb):
        kb.add_link("wiki/Hub", "wiki/A")
        kb.add_link("wiki/Hub", "wiki/B")
        kb.add_link("wiki/C", "wiki/A")
        kb.add_link("wiki/C", "wiki/B")
        value = kb.relatedness("wiki/A", "wiki/B")
        assert 0.0 <= value <= 1.0


class TestSeededKnowledgeBase:
    def test_build(self, kb):
        from repro.synthetic.seeds import build_knowledge_base

        seeded = build_knowledge_base()
        assert len(seeded) > 50

    def test_ambiguous_python(self):
        from repro.synthetic.seeds import build_knowledge_base

        seeded = build_knowledge_base()
        candidates = seeded.anchor_candidates(("python",))
        assert len(candidates) == 2
        assert candidates[0][0] == "wiki/Python_(programming_language)"

    def test_same_domain_entities_related(self):
        from repro.synthetic.seeds import build_knowledge_base

        seeded = build_knowledge_base()
        same = seeded.relatedness("wiki/Michael_Phelps", "wiki/Freestyle_swimming")
        cross = seeded.relatedness("wiki/Michael_Phelps", "wiki/PHP")
        assert same > cross
