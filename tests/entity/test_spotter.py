"""Unit tests for the anchor spotter."""

import pytest

from repro.entity.knowledge_base import Entity, KnowledgeBase
from repro.entity.spotter import Spot, Spotter


@pytest.fixture
def kb():
    kb = KnowledgeBase()
    kb.add_entity(Entity("wiki/NY", "New York City", "City", "location"))
    kb.add_entity(Entity("wiki/York", "York", "City", "location"))
    kb.add_entity(Entity("wiki/Phelps", "Michael Phelps", "Athlete", "sport"))
    kb.add_anchor("new york", "wiki/NY", 5)
    kb.add_anchor("new york city", "wiki/NY", 3)
    kb.add_anchor("york", "wiki/York", 2)
    kb.add_anchor("michael phelps", "wiki/Phelps", 4)
    kb.add_anchor("phelps", "wiki/Phelps", 2)
    return kb


@pytest.fixture
def spotter(kb):
    return Spotter(kb)


class TestSpotter:
    def test_single_anchor(self, spotter):
        spots = spotter.spot(["i", "met", "phelps", "yesterday"])
        assert len(spots) == 1
        assert spots[0].surface == ("phelps",)
        assert spots[0].start == 2 and spots[0].end == 3

    def test_longest_match_wins(self, spotter):
        spots = spotter.spot(["new", "york", "city", "rocks"])
        assert len(spots) == 1
        assert spots[0].surface == ("new", "york", "city")

    def test_shorter_match_when_longer_absent(self, spotter):
        spots = spotter.spot(["visit", "york", "today"])
        assert spots[0].surface == ("york",)

    def test_non_overlapping_left_to_right(self, spotter):
        spots = spotter.spot(["michael", "phelps", "in", "new", "york"])
        assert [s.surface for s in spots] == [("michael", "phelps"), ("new", "york")]

    def test_no_anchors(self, spotter):
        assert spotter.spot(["nothing", "matches", "here"]) == []

    def test_empty_tokens(self, spotter):
        assert spotter.spot([]) == []

    def test_candidates_sorted_by_commonness(self, spotter):
        spots = spotter.spot(["phelps"])
        assert spots[0].candidates[0][0] == "wiki/Phelps"

    def test_consumed_tokens_not_reused(self, spotter):
        # "new york" consumes "york", so "york" alone is not re-spotted
        spots = spotter.spot(["new", "york"])
        assert len(spots) == 1


class TestSpotValidation:
    def test_empty_span_rejected(self):
        with pytest.raises(ValueError):
            Spot(start=1, end=1, surface=("x",), candidates=(("wiki/X", 1.0),))

    def test_no_candidates_rejected(self):
        with pytest.raises(ValueError):
            Spot(start=0, end=1, surface=("x",), candidates=())
