"""Unit tests for the end-to-end entity annotator."""

import pytest

from repro.entity.annotator import Annotation, EntityAnnotator
from repro.synthetic.seeds import build_knowledge_base


@pytest.fixture(scope="module")
def annotator():
    return EntityAnnotator(build_knowledge_base())


class TestAnnotate:
    def test_finds_phelps(self, annotator):
        anns = annotator.annotate("Michael Phelps is the best freestyle swimmer")
        uris = {a.entity_uri for a in anns}
        assert "wiki/Michael_Phelps" in uris
        assert "wiki/Freestyle_swimming" in uris

    def test_annotation_has_confidence(self, annotator):
        anns = annotator.annotate("Michael Phelps won a gold medal")
        assert all(0.0 < a.d_score <= 1.0 for a in anns)

    def test_sanitizes_input(self, annotator):
        anns = annotator.annotate("RT @fan: #MichaelPhelps or michael phelps? http://x.y")
        assert any(a.entity_uri == "wiki/Michael_Phelps" for a in anns)

    def test_python_disambiguated_to_language_in_code_context(self, annotator):
        anns = annotator.annotate("I love python and django for the backend")
        python = [a for a in anns if a.surface == "python"]
        assert python[0].entity_uri == "wiki/Python_(programming_language)"

    def test_no_entities_in_plain_chitchat(self, annotator):
        anns = annotator.annotate("what a lovely sunny morning for a walk")
        assert anns == []

    def test_empty_text(self, annotator):
        assert annotator.annotate("") == []

    def test_pruning_threshold(self):
        strict = EntityAnnotator(build_knowledge_base(), epsilon=0.99)
        loose = EntityAnnotator(build_knowledge_base(), epsilon=0.0)
        text = "milan juventus and the champions league tonight"
        assert len(strict.annotate(text)) <= len(loose.annotate(text))

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            EntityAnnotator(build_knowledge_base(), epsilon=2.0)

    def test_spans_point_into_tokens(self, annotator):
        anns = annotator.annotate("we watched michael phelps swim freestyle")
        for a in anns:
            assert a.end > a.start >= 0

    def test_annotation_validation(self):
        with pytest.raises(ValueError):
            Annotation(entity_uri="wiki/X", surface="x", d_score=-0.1, start=0, end=1)
