"""Unit tests for the collective disambiguator."""

import pytest

from repro.entity.disambiguator import Disambiguated, Disambiguator
from repro.entity.knowledge_base import Entity, KnowledgeBase
from repro.entity.spotter import Spot, Spotter


@pytest.fixture
def kb():
    """Ambiguous anchor 'milan': the city (commonness 0.6) vs AC Milan
    (0.4). A sport context ('champions league') must flip the choice to
    the football club."""
    kb = KnowledgeBase()
    kb.add_entity(Entity("wiki/Milan", "Milan", "City", "location"))
    kb.add_entity(Entity("wiki/AC_Milan", "AC Milan", "SportsTeam", "sport"))
    kb.add_entity(Entity("wiki/CL", "Champions League", "Event", "sport"))
    kb.add_entity(Entity("wiki/Italy", "Italy", "Country", "location"))
    kb.add_anchor("milan", "wiki/Milan", 6)
    kb.add_anchor("milan", "wiki/AC_Milan", 4)
    kb.add_anchor("champions league", "wiki/CL", 5)
    kb.add_anchor("italy", "wiki/Italy", 5)
    # link graph: sport entities share an inlink; location ones too
    kb.add_entity(Entity("wiki/SportHub", "Sport hub", "Portal", "sport"))
    kb.add_entity(Entity("wiki/GeoHub", "Geo hub", "Portal", "location"))
    kb.add_link("wiki/SportHub", "wiki/AC_Milan")
    kb.add_link("wiki/SportHub", "wiki/CL")
    kb.add_link("wiki/GeoHub", "wiki/Milan")
    kb.add_link("wiki/GeoHub", "wiki/Italy")
    return kb


class TestDisambiguator:
    def test_prior_wins_without_context(self, kb):
        spots = Spotter(kb).spot(["milan"])
        chosen = Disambiguator(kb).disambiguate(spots)
        assert chosen[0].entity_uri == "wiki/Milan"

    def test_sport_context_flips_to_club(self, kb):
        spots = Spotter(kb).spot(["milan", "won", "the", "champions", "league"])
        chosen = Disambiguator(kb, prior_weight=0.3).disambiguate(spots)
        by_surface = {d.spot.surface: d for d in chosen}
        assert by_surface[("milan",)].entity_uri == "wiki/AC_Milan"

    def test_location_context_keeps_city(self, kb):
        spots = Spotter(kb).spot(["milan", "is", "in", "italy"])
        chosen = Disambiguator(kb, prior_weight=0.3).disambiguate(spots)
        by_surface = {d.spot.surface: d for d in chosen}
        assert by_surface[("milan",)].entity_uri == "wiki/Milan"

    def test_scores_in_unit_interval(self, kb):
        spots = Spotter(kb).spot(["milan", "champions", "league", "italy"])
        for d in Disambiguator(kb).disambiguate(spots):
            assert 0.0 <= d.d_score <= 1.0

    def test_unambiguous_single_spot_full_confidence(self, kb):
        spots = Spotter(kb).spot(["italy"])
        chosen = Disambiguator(kb).disambiguate(spots)
        assert chosen[0].d_score == pytest.approx(1.0)

    def test_empty_spots(self, kb):
        assert Disambiguator(kb).disambiguate([]) == []

    def test_invalid_prior_weight(self, kb):
        with pytest.raises(ValueError):
            Disambiguator(kb, prior_weight=1.5)

    def test_disambiguated_validation(self, kb):
        spot = Spot(start=0, end=1, surface=("x",), candidates=(("wiki/Milan", 1.0),))
        with pytest.raises(ValueError):
            Disambiguated(spot=spot, entity_uri="wiki/Milan", d_score=1.5)
