"""Unit tests for index shard merging (the parallel cold build's
combiner) and its interaction with collection statistics."""

import pytest

from repro.index.entity_index import EntityIndex, EntityPosting
from repro.index.inverted import InvertedIndex, Posting
from repro.index.statistics import CollectionStatistics


def _term_index(docs):
    index = InvertedIndex()
    for doc_id, counts in docs:
        index.add_document(doc_id, counts)
    return index


def _entity_index(docs):
    index = EntityIndex()
    for doc_id, counts in docs:
        index.add_document(doc_id, counts)
    return index


class TestInvertedIndexMerge:
    def test_shard_merge_equals_serial_build(self):
        docs = [
            ("d1", {"swim": 2, "pool": 1}),
            ("d2", {"swim": 1}),
            ("d3", {"bike": 4, "pool": 2}),
            ("d4", {"run": 1, "swim": 3}),
        ]
        serial = _term_index(docs)
        merged = _term_index(docs[:2])
        merged.merge(_term_index(docs[2:]))
        assert merged.document_count == serial.document_count
        assert merged.doc_ids() == serial.doc_ids()
        # same terms, same postings, same order — byte-identical retrieval
        assert list(merged.items()) == list(serial.items())

    def test_merge_preserves_postings_order_for_shared_terms(self):
        left = _term_index([("a", {"swim": 1})])
        right = _term_index([("b", {"swim": 2})])
        left.merge(right)
        assert left.postings("swim") == (Posting("a", 1), Posting("b", 2))

    def test_new_terms_keep_shard_order(self):
        left = _term_index([("a", {"swim": 1})])
        right = _term_index([("b", {"bike": 1, "run": 2})])
        left.merge(right)
        assert left.terms() == ("swim", "bike", "run")

    def test_merge_empty_shard_is_noop(self):
        index = _term_index([("a", {"swim": 1})])
        index.merge(InvertedIndex())
        assert index.document_count == 1
        assert index.postings("swim") == (Posting("a", 1),)

    def test_merge_into_empty_adopts_shard(self):
        index = InvertedIndex()
        index.merge(_term_index([("a", {"swim": 1})]))
        assert index.document_count == 1
        assert "swim" in index

    def test_doc_collision_rejected(self):
        left = _term_index([("a", {"swim": 1}), ("b", {"run": 1})])
        right = _term_index([("b", {"bike": 1})])
        with pytest.raises(ValueError, match="'b'"):
            left.merge(right)

    def test_collision_rejected_even_for_termless_docs(self):
        left = _term_index([("a", {})])
        right = _term_index([("a", {})])
        with pytest.raises(ValueError, match="indexed by both"):
            left.merge(right)


class TestEntityIndexMerge:
    def test_shard_merge_equals_serial_build(self):
        docs = [
            ("d1", {"ent:phelps": (2, 0.9)}),
            ("d2", {"ent:phelps": (1, 0.4), "ent:pool": (1, 0.6)}),
            ("d3", {"ent:pool": (3, 0.8)}),
        ]
        serial = _entity_index(docs)
        merged = _entity_index(docs[:1])
        merged.merge(_entity_index(docs[1:]))
        assert list(merged.items()) == list(serial.items())
        assert merged.doc_ids() == serial.doc_ids()

    def test_merge_preserves_postings_order(self):
        left = _entity_index([("a", {"ent:x": (1, 0.5)})])
        right = _entity_index([("b", {"ent:x": (2, 0.7)})])
        left.merge(right)
        assert left.postings("ent:x") == (
            EntityPosting("a", 1, 0.5),
            EntityPosting("b", 2, 0.7),
        )

    def test_doc_collision_rejected(self):
        left = _entity_index([("a", {"ent:x": (1, 0.5)})])
        right = _entity_index([("a", {"ent:y": (1, 0.5)})])
        with pytest.raises(ValueError, match="'a'"):
            left.merge(right)


class TestMergeStatisticsInvalidation:
    def test_stats_refresh_automatically_after_merge(self):
        terms = _term_index([("a", {"swim": 1})])
        entities = _entity_index([("a", {"ent:x": (1, 0.5)})])
        stats = CollectionStatistics(terms, entities)
        stale_irf = stats.irf("swim")
        stale_eirf = stats.eirf("ent:x")

        terms.merge(_term_index([("b", {"swim": 1}), ("c", {"run": 1})]))
        entities.merge(
            _entity_index([("b", {"ent:x": (1, 0.5)}), ("c", {})])
        )
        # merging bumps the index versions, so every ratio reflects the
        # merged collection on the very next read — no caller-side
        # invalidate() is needed (stale irf must be impossible)
        assert stats.resource_count == 3
        assert stats.irf("swim") != stale_irf
        assert stats.eirf("ent:x") != stale_eirf
        assert stats.irf("run") > 0.0
